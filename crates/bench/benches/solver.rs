//! Criterion benchmarks for the Step-4 solve stage.
//!
//! Four groups:
//!
//! * `lm_iteration` — one damped normal-equations iteration (accumulate
//!   `JᵀJ`/`Jᵀr` from sparse rows, numeric LDLᵀ factor, triangular solves)
//!   on real Table 2 systems, for the sparse production path and — on
//!   cohendiv — the dense pre-rewrite oracle (dense `m×n` Jacobian, dense
//!   `JᵀJ`, `O(n³)` solve). The dense bench is what the ≥5× acceptance
//!   comparison reads against; expect two orders of magnitude. Both
//!   iteration shapes come from `polyinv_bench::probe`, shared with the
//!   `solver_comparison` example so every consumer measures the same
//!   algorithm.
//! * `lm_iteration_large` — the same single iteration on the *presolved*
//!   systems of the formerly size-capped rows (euclidex1, merge-sort), at
//!   1/2/4/8 evaluation worker threads. This is where the chunked parallel
//!   evaluation pays off; the serial/8-thread ratio is the scaling
//!   acceptance number (expect ≥3× on an 8-core box; on fewer cores the
//!   curve flattens accordingly — the outputs stay byte-identical either
//!   way).
//! * `symbolic_setup` — the once-per-problem cost the sparse path amortizes
//!   (pattern construction + minimum-degree ordering + symbolic LDLᵀ).
//! * `weak_synthesis_e2e` — an end-to-end weak synthesis (Steps 1–4)
//!   through the Engine on a small program.
//!
//! CI smoke-compiles everything and short-runs the sparse iteration
//! benches (`cargo bench -p polyinv-bench --bench solver -- sparse`); the
//! full runs — including the slow dense oracle and the large-system
//! scaling group — are for local perf work.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use polyinv_bench::probe::{dense_iteration, presolved_table_problem, table_problem, SparseProbe};

fn lm_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("lm_iteration");
    group.sample_size(10);
    for name in ["freire1", "cohendiv", "mannadiv"] {
        let mut probe = SparseProbe::new(table_problem(name));
        let x = vec![0.05; probe.problem().num_vars];
        group.bench_function(format!("sparse/{name}"), |b| {
            b.iter(|| probe.iteration(&x, 1e-3))
        });
    }
    // The dense oracle on the cohendiv-scale system: the pre-rewrite cost
    // each LM iteration paid (dense J / Jᵀ / JᵀJ plus an O(n³) solve). One
    // iteration takes ~19 s, so the sample budget stays minimal; the point
    // of the bench is the ratio against `sparse/cohendiv`.
    let problem = table_problem("cohendiv");
    let x = vec![0.05; problem.num_vars];
    group.measurement_time(Duration::from_secs(60));
    group.bench_function("dense/cohendiv", |b| {
        b.iter(|| dense_iteration(&problem, &x, 1e-3))
    });
    group.finish();
}

fn lm_iteration_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("lm_iteration_large");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(30));
    // The presolved systems of two formerly size-capped rows: what Step 4
    // actually receives once the orchestrator's presolve has run. Checksums
    // are asserted equal across thread counts so a run that loses bitwise
    // determinism fails loudly instead of publishing misleading numbers.
    for name in ["euclidex1", "merge-sort"] {
        let problem = presolved_table_problem(name);
        let x = vec![0.05; problem.num_vars];
        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let mut probe = SparseProbe::with_threads(problem.clone(), threads);
            let checksum = probe.iteration(&x, 1e-3);
            match reference {
                None => reference = Some(checksum),
                Some(expected) => assert_eq!(
                    expected.to_bits(),
                    checksum.to_bits(),
                    "{name}: iteration diverged at {threads} threads"
                ),
            }
            group.bench_function(format!("{name}/threads{threads}"), |b| {
                b.iter(|| probe.iteration(&x, 1e-3))
            });
        }
    }
    group.finish();
}

fn symbolic_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_setup");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for name in ["cohendiv", "mannadiv"] {
        let problem = table_problem(name);
        group.bench_function(name, |b| {
            b.iter(|| SparseProbe::new(problem.clone()).nnz_factor())
        });
    }
    group.finish();
}

fn weak_synthesis_e2e(c: &mut Criterion) {
    use polyinv_api::{ReportStatus, SynthesisRequest};
    let mut group = c.benchmark_group("weak_synthesis_e2e");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs/inc.poly"),
    )
    .expect("inc.poly exists");
    let engine = polyinv_bench::engine_for_tables();
    let request = SynthesisRequest::weak(source)
        .with_degree(1)
        .with_target("x + 1 > 0");
    group.bench_function("inc", |b| {
        b.iter(|| {
            let report = engine.run(&request).unwrap();
            assert_eq!(report.status, ReportStatus::Synthesized);
            report.solver.as_ref().map(|s| s.iterations)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    lm_iteration,
    lm_iteration_large,
    symbolic_setup,
    weak_synthesis_e2e
);
criterion_main!(benches);
