//! Criterion benchmarks for the affine presolve engine.
//!
//! Two groups: `presolve_pass` times the presolve fixpoint itself on the
//! pinned ϒ = 0 systems of representative Table 2 rows (the exact input the
//! pipeline's presolve stage sees), and `presolve_end_to_end` compares a
//! full weak synthesis with and without presolve on a small program, so a
//! regression in either the pass itself or its downstream payoff shows up
//! in the same report.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use polyinv::weak::{fix_targets, TargetAssertion};
use polyinv_api::{Engine, ReportStatus, SynthesisRequest};
use polyinv_bench::options_for;
use polyinv_constraints::{presolve, PresolveOptions};

fn presolve_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("presolve_pass");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(8));
    for name in ["cohendiv", "mannadiv", "sqrt", "freire1", "hard"] {
        let benchmark = polyinv_benchmarks::by_name(name).unwrap();
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let mut options = options_for(&benchmark);
        let targets = match benchmark.target_polynomial(&program).unwrap() {
            Some(target) => {
                options.degree = options.degree.max(target.degree());
                vec![TargetAssertion::new(program.main().exit_label(), target)]
            }
            None => Vec::new(),
        };
        // Setup (generation + target pinning) stays outside the timed loop:
        // the group measures the presolve fixpoint only.
        let generated =
            polyinv_constraints::generate(&program, &pre, &options.with_upsilon(0)).unwrap();
        let pins = fix_targets(&generated, &targets);
        group.bench_function(name, |b| {
            b.iter(|| {
                presolve(&generated.system, &pins, &PresolveOptions::default())
                    .stats
                    .size_after
            })
        });
    }
    group.finish();
}

fn presolve_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("presolve_end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    let source = r#"
        inc(x) {
            @pre(x >= 0);
            while x <= 10 do
                x := x + 1
            od;
            return x
        }
    "#;
    let engine = Engine::new();
    let base = SynthesisRequest::weak(source)
        .with_degree(1)
        .with_target("x + 1 > 0");
    for (label, presolve_on) in [("with_presolve", true), ("without_presolve", false)] {
        let mut request = base.clone();
        request.options.presolve = presolve_on;
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = engine.run(&request).expect("valid request");
                assert_eq!(report.status, ReportStatus::Synthesized);
                assert_eq!(report.presolve.is_some(), presolve_on);
                report.system_size
            })
        });
    }
    group.finish();
}

criterion_group!(benches, presolve_pass, presolve_end_to_end);
criterion_main!(benches);
