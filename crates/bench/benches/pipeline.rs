//! Criterion benchmarks for the stages of the invariant-generation pipeline.
//!
//! Each group corresponds to an experiment listed in DESIGN.md §5:
//! the individual pipeline stages (Steps 1–3) on the running example,
//! generation for representative Table 2 / Table 3 rows, the ϒ and encoding
//! ablations, the Farkas baseline, certificate checking and end-to-end weak
//! synthesis on a small program.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use polyinv::pipeline::{run_stage, PairStage, ReductionStage, TemplateStage};
use polyinv::prelude::*;
use polyinv_api::{Engine, ReportStatus, SynthesisRequest};
use polyinv_bench::options_for;
use polyinv_farkas::FarkasBaseline;
use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

fn pipeline_stage_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_stages");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    let pipeline = Pipeline::default();
    group.bench_function("templates", |b| {
        b.iter(|| {
            let mut ctx = pipeline.context(&program, &pre);
            run_stage(&mut ctx, &TemplateStage, ()).num_unknowns()
        })
    });
    group.bench_function("pairs", |b| {
        // Per-iteration setup (fresh context + templates) stays untimed.
        b.iter_batched(
            || {
                let mut ctx = pipeline.context(&program, &pre);
                let templates = run_stage(&mut ctx, &TemplateStage, ());
                (ctx, templates)
            },
            |(mut ctx, templates)| run_stage(&mut ctx, &PairStage, &templates).unwrap().len(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("reduction", |b| {
        b.iter_batched(
            || {
                let mut ctx = pipeline.context(&program, &pre);
                let templates = run_stage(&mut ctx, &TemplateStage, ());
                let pairs = run_stage(&mut ctx, &PairStage, &templates).unwrap();
                (ctx, templates, pairs)
            },
            |(mut ctx, templates, pairs)| {
                run_stage(&mut ctx, &ReductionStage, (templates, pairs)).size()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("full_generation", |b| {
        b.iter(|| {
            let mut ctx = pipeline.context(&program, &pre);
            pipeline.generate(&mut ctx).unwrap().size()
        })
    });
    group.finish();
}

fn table2_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_system_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for name in [
        "sqrt",
        "freire1",
        "petter",
        "cohendiv",
        "mannadiv",
        "cohencu",
        "hard",
        "euclidex1",
    ] {
        let benchmark = polyinv_benchmarks::by_name(name).unwrap();
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let options = options_for(&benchmark);
        group.bench_function(name, |b| {
            b.iter(|| {
                polyinv_constraints::generate(&program, &pre, &options)
                    .unwrap()
                    .size()
            })
        });
    }
    group.finish();
}

fn table3_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_system_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for name in ["recursive-sum", "recursive-square-sum", "pw2"] {
        let benchmark = polyinv_benchmarks::by_name(name).unwrap();
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let options = options_for(&benchmark);
        group.bench_function(name, |b| {
            b.iter(|| {
                polyinv_constraints::generate(&program, &pre, &options)
                    .unwrap()
                    .size()
            })
        });
    }
    group.finish();
}

fn ablation_upsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_upsilon");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    for upsilon in [0u32, 2, 4] {
        let options = SynthesisOptions {
            upsilon,
            ..SynthesisOptions::default()
        };
        group.bench_function(format!("upsilon_{upsilon}"), |b| {
            b.iter(|| {
                polyinv_constraints::generate(&program, &pre, &options)
                    .unwrap()
                    .size()
            })
        });
    }
    group.finish();
}

fn ablation_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_encoding");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    for (name, encoding) in [
        ("cholesky", SosEncoding::Cholesky),
        ("gram", SosEncoding::Gram),
    ] {
        let options = SynthesisOptions {
            encoding,
            ..SynthesisOptions::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                polyinv_constraints::generate(&program, &pre, &options)
                    .unwrap()
                    .size()
            })
        });
    }
    group.finish();
}

fn baseline_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    group.bench_function("farkas_linear", |b| {
        b.iter(|| {
            FarkasBaseline::default()
                .generate(&program, &pre)
                .unwrap()
                .size()
        })
    });
    group.bench_function("putinar_quadratic", |b| {
        b.iter(|| {
            polyinv_constraints::generate(&program, &pre, &SynthesisOptions::default())
                .unwrap()
                .size()
        })
    });
    group.finish();
}

fn certificate_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("certificate_check");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    // The margin-aware linear strengthening used in the test suite.
    let labels = program.main().labels().to_vec();
    let parse = |text: &str| parse_assertion(&program, "sum", text).unwrap().0;
    let mut invariant = InvariantMap::new();
    invariant.add(labels[0], parse("n > 0"));
    for (index, (i_term, combined)) in [
        ("8*i - 7", "4*i + 4*s - 3"),
        ("4*i - 3", "4*i + 4*s + 1"),
        ("4*i - 2", "4*i + 4*s + 2"),
        ("4*i - 1", "4*i + 4*s + 3"),
        ("4*i - 1", "4*i + 4*s + 3"),
        ("4*i - 0", "4*i + 4*s + 4"),
        ("4*i - 2", "4*i + 4*s + 2"),
        ("4*i - 1", "4*i + 4*s + 3"),
    ]
    .iter()
    .enumerate()
    {
        invariant.add(labels[index + 1], parse(&format!("{i_term} > 0")));
        invariant.add(labels[index + 1], parse(&format!("{combined} > 0")));
    }
    group.bench_function("running_example_strengthening", |b| {
        b.iter(|| {
            let report = check_inductive(
                &program,
                &pre,
                &invariant,
                &Postcondition::new(),
                &CheckOptions::default(),
            )
            .unwrap();
            assert!(report.all_certified());
        })
    });
    group.finish();
}

fn weak_synthesis_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak_synthesis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(20));
    let source = r#"
        inc(x) {
            @pre(x >= 0);
            while x <= 10 do
                x := x + 1
            od;
            return x
        }
    "#;
    // End-to-end through the stable Engine surface: parse (cached), pin
    // the target, ladder, solve, report.
    let engine = Engine::new();
    let request = SynthesisRequest::weak(source)
        .with_degree(1)
        .with_target("x + 1 > 0");
    group.bench_function("bounded_counter_degree1", |b| {
        b.iter(|| {
            let report = engine.run(&request).expect("valid request");
            assert_eq!(report.status, ReportStatus::Synthesized);
            report.system_size
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    pipeline_stage_breakdown,
    table2_generation,
    table3_generation,
    ablation_upsilon,
    ablation_encoding,
    baseline_comparison,
    certificate_checking,
    weak_synthesis_end_to_end
);
criterion_main!(benches);
