//! Shared harness code for regenerating the paper's evaluation tables.
//!
//! The `reproduce` binary prints the rows of Tables 2 and 3 (and the
//! ablations); the Criterion benches in `benches/` measure the individual
//! pipeline stages. Both are thin wrappers around [`run_row`], which itself
//! sits on the stable [`Engine`] API of `polyinv-api`: each table row is two
//! [`SynthesisRequest`]s (a generation-only run for `|S|` and the per-stage
//! breakdown, plus — with `--solve` — a weak-synthesis run for the solve
//! columns), and the per-stage wall-clock timings of the reports flow
//! directly into the printed tables.

pub mod probe;

use std::time::Duration;

use polyinv::pipeline::stage_names;
use polyinv::SolvePlan;
use polyinv_api::{
    ApiError, Engine, Json, OrchestratorRecord, PresolveRecord, ReportStatus, SolverRecord,
    SynthesisRequest, ValidationRecord,
};
use polyinv_benchmarks::Benchmark;
use polyinv_constraints::{SosEncoding, SynthesisOptions};
use polyinv_lang::{InvariantMap, Postcondition, Precondition};
use polyinv_validate::{falsify_traces, TraceCheckConfig, ValidationConfig};

/// The measurements taken for one benchmark row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Benchmark name (paper row name).
    pub name: String,
    /// Template size `n` (from the paper's configuration).
    pub n: usize,
    /// Template degree `d` (from the paper's configuration).
    pub d: u32,
    /// Paper-reported number of program variables.
    pub paper_vars: usize,
    /// Our number of program variables (`|V^f|` of the main function,
    /// including shadow parameters and the return variable).
    pub our_vars: usize,
    /// Paper-reported system size `|S|`.
    pub paper_size: usize,
    /// Our system size `|S|`.
    pub our_size: usize,
    /// The number of unknowns of our generated quadratic system.
    pub unknowns: usize,
    /// Paper-reported runtime in seconds.
    pub paper_runtime: f64,
    /// Per-stage wall-clock breakdown in seconds, in execution order (the
    /// generation stages; plus the solve stage when a solve was attempted).
    pub timings: Vec<(String, f64)>,
    /// Outcome of the solve attempt, if one was made.
    pub solve: Option<SolveRow>,
    /// Affine presolve statistics of the solve attempt's accepted rung
    /// (`None` for generation-only rows or when presolve was disabled).
    pub presolve: Option<PresolveRecord>,
    /// Soundness validation of the row (`reproduce --validate`).
    pub validate: Option<RowValidation>,
}

/// The trace check of one row's paper target assertion.
#[derive(Debug, Clone)]
pub struct TargetCheck {
    /// Valid traces the target was checked on.
    pub runs: usize,
    /// Reachable states violating the target.
    pub violations: usize,
    /// Whether the check passed (no violations *and* the requested trace
    /// coverage was reached — a vacuous zero-trace pass fails).
    pub passed: bool,
}

/// The validation outcome of one benchmark row.
#[derive(Debug, Clone)]
pub struct RowValidation {
    /// The target-assertion trace check (`None` when the row has no target
    /// assertion — distinct from a passing check).
    pub target: Option<TargetCheck>,
    /// Validation record of the synthesized invariant (rows with a solve):
    /// trace falsification plus the exact-rational re-check.
    pub invariant: Option<ValidationRecord>,
}

impl RowValidation {
    /// `true` when the target (if any) held with full coverage and the
    /// synthesized invariant (if any) survived both checks.
    pub fn passed(&self) -> bool {
        self.target.as_ref().map(|t| t.passed).unwrap_or(true)
            && self.invariant.as_ref().map(|r| r.passed).unwrap_or(true)
    }

    /// The table cell: target outcome plus invariant outcome.
    pub fn cell(&self) -> String {
        let target = match &self.target {
            None => "no-target".to_string(),
            Some(t) if t.passed => format!("target-ok({})", t.runs),
            Some(t) if t.violations > 0 => format!("TARGET-VIOLATION({})", t.violations),
            Some(t) => format!("TARGET-COVERAGE({} runs)", t.runs),
        };
        let invariant = match &self.invariant {
            None => "-".to_string(),
            Some(record) if record.passed => format!(
                "inv-ok({}tr{})",
                record.trace_runs,
                record
                    .exact
                    .as_ref()
                    .map(|e| format!(", {:.0e}", e.worst_violation_f64))
                    .unwrap_or_default()
            ),
            Some(record) => format!("INV-VIOLATION({})", record.trace_violations),
        };
        format!("{target} {invariant}")
    }
}

impl RowResult {
    /// Seconds spent in one named stage (0 when it never ran).
    pub fn stage_seconds(&self, stage: &str) -> f64 {
        self.timings
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, secs)| *secs)
            .unwrap_or(0.0)
    }

    /// Combined time of the generation stages (Steps 1–3).
    pub fn generation_time(&self) -> Duration {
        Duration::from_secs_f64(
            self.stage_seconds(stage_names::TEMPLATES)
                + self.stage_seconds(stage_names::PAIRS)
                + self.stage_seconds(stage_names::REDUCTION),
        )
    }
}

/// The outcome class of a row's solve block. Every `--solve` row carries
/// one of these explicitly — absent data can no longer masquerade as "not
/// attempted".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// The orchestrator produced a candidate that passed the exact-rational
    /// inductiveness certificate.
    Synthesized,
    /// A solve was attempted (or errored) but no certified candidate came
    /// out; `reason` says why in machine-readable form.
    Failed,
    /// The solve was deliberately not attempted; `reason` says why.
    Skipped,
}

impl SolveStatus {
    /// Stable snapshot label (`"synthesized"` / `"failed"` / `"skipped"`).
    pub fn label(self) -> &'static str {
        match self {
            SolveStatus::Synthesized => "synthesized",
            SolveStatus::Failed => "failed",
            SolveStatus::Skipped => "skipped",
        }
    }
}

/// What to do about Step 4 for one row.
#[derive(Debug, Clone)]
pub enum SolvePolicy {
    /// Generation-only run: the row carries no solve block (`solve: null`).
    None,
    /// Run the weak-synthesis solve through the orchestrator under a
    /// wall-clock budget (`0.0` = unbudgeted: run the full ladder).
    Attempt {
        /// Per-row solve budget in seconds. The first ladder rung always
        /// runs, so even a tight budget yields a real verdict.
        budget_seconds: f64,
    },
    /// Emit an explicit skipped solve block. Only produced when the caller
    /// asked for an explicit size cap — the default policy attempts every
    /// row under the wall-clock budget instead.
    Skip {
        /// The paper system-size cap the row exceeded.
        cap: usize,
    },
}

/// Default per-row wall-clock solve budget of `reproduce --solve`, in
/// seconds. Replaces the old hard paper-size cap (6000): every row is now
/// attempted, and rows the budget cannot certify come back as `failed`
/// with real solver statistics instead of `skipped`. Override per run with
/// `--solve-cap SECONDS`.
pub const DEFAULT_SOLVE_BUDGET_SECONDS: f64 = 120.0;

/// The solve policy `reproduce` applies to one row: attempt every row
/// under the default wall-clock budget
/// ([`DEFAULT_SOLVE_BUDGET_SECONDS`]).
pub fn solve_policy_for(benchmark: &Benchmark, solve: bool) -> SolvePolicy {
    solve_policy_with_budget(benchmark, solve, DEFAULT_SOLVE_BUDGET_SECONDS, None)
}

/// [`solve_policy_for`] with an explicit wall-clock budget and an optional
/// paper system-size cap. The cap is opt-in (there is no default size cap
/// any more): rows above it skip with a machine-readable reason naming
/// both the paper and generated sizes.
pub fn solve_policy_with_budget(
    benchmark: &Benchmark,
    solve: bool,
    budget_seconds: f64,
    size_cap: Option<usize>,
) -> SolvePolicy {
    if !solve {
        SolvePolicy::None
    } else if let Some(cap) = size_cap.filter(|cap| benchmark.paper.system_size > *cap) {
        SolvePolicy::Skip { cap }
    } else {
        SolvePolicy::Attempt { budget_seconds }
    }
}

/// The machine-readable reason of a size-capped skip. Names the paper's
/// reported system size (what the cap compares against) *and* the size of
/// our generated system explicitly — the row's `size` field prints the
/// generated size, so a reason naming only one of them reads as a
/// mismatch.
pub fn size_cap_reason(paper_size: usize, generated_size: usize, cap: usize) -> String {
    format!("size-cap:paper={paper_size},generated={generated_size},cap={cap}")
}

/// The solve part of a row.
#[derive(Debug, Clone)]
pub struct SolveRow {
    /// What happened to the solve attempt.
    pub status: SolveStatus,
    /// Time spent solving.
    pub solve_time: Duration,
    /// Final constraint violation of the best assignment.
    pub violation: f64,
    /// The back-end that produced the attempt (empty for skipped rows).
    pub backend: String,
    /// Machine-readable reason for skipped and failed rows (`None` on
    /// success).
    pub reason: Option<String>,
    /// Solver statistics of the attempt (iterations/restarts, nnz(J),
    /// nnz(L), factor/solve split), when the report carried them.
    pub stats: Option<SolverRecord>,
    /// Orchestrator ladder statistics of the attempt: rungs tried, the
    /// winning back-end, the certificate outcome and the full attempt
    /// history.
    pub orchestrator: Option<OrchestratorRecord>,
}

impl SolveRow {
    /// `true` when the row's solve produced a certified invariant.
    pub fn synthesized(&self) -> bool {
        self.status == SolveStatus::Synthesized
    }

    /// An explicit skipped block (no attempt made).
    pub fn skipped(reason: String) -> SolveRow {
        SolveRow {
            status: SolveStatus::Skipped,
            solve_time: Duration::ZERO,
            violation: f64::NAN,
            backend: String::new(),
            reason: Some(reason),
            stats: None,
            orchestrator: None,
        }
    }
}

/// The reduction options matching a benchmark's paper configuration.
pub fn options_for(benchmark: &Benchmark) -> SynthesisOptions {
    SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n)
        .with_upsilon(2)
        .with_encoding(SosEncoding::Cholesky)
}

/// An Engine configured like the paper's evaluation runs (shared across
/// rows so that programs parse once). Solve attempts run the default
/// orchestrator portfolio — the LM and penalty lanes race on every ϒ rung.
pub fn engine_for_tables() -> Engine {
    Engine::new()
}

/// The generation-only request of a row.
pub fn generation_request(benchmark: &Benchmark) -> SynthesisRequest {
    SynthesisRequest::generate_only(benchmark.source)
        .with_id(format!("{}/generate", benchmark.name))
        .with_options(options_for(benchmark))
}

/// The weak-synthesis request of a row (target pinned when the paper row
/// has one).
pub fn solve_request(benchmark: &Benchmark) -> SynthesisRequest {
    let mut request = SynthesisRequest::weak(benchmark.source)
        .with_id(format!("{}/solve", benchmark.name))
        .with_options(options_for(benchmark));
    if let Some(target) = benchmark.target {
        request = request.with_target(target);
    }
    request
}

/// The validation settings of `reproduce --validate`: ≥ 1000 valid traces
/// per program (more attempts than default, so tightly pre-conditioned
/// programs like the RL controllers still reach 1000 valid runs).
pub fn validation_for_tables() -> ValidationConfig {
    ValidationConfig {
        trace: TraceCheckConfig {
            runs: 1000,
            seed: 2020,
            max_attempts: 200_000,
            ..TraceCheckConfig::default()
        },
        ..ValidationConfig::default()
    }
}

/// Runs Steps 1–3 (and optionally Step 4) for one benchmark row on a shared
/// Engine.
///
/// # Panics
///
/// Panics if the embedded benchmark program fails to parse (guarded by the
/// benchmark crate's tests).
pub fn run_row_on(engine: &Engine, benchmark: &Benchmark, solve: bool) -> RowResult {
    let policy = solve_policy_for(benchmark, solve);
    run_row_full(engine, benchmark, policy, false)
}

/// Like [`run_row_on`], optionally validating the row: the paper's target
/// assertion is checked against ≥ 1000 seeded traces, and — when a solve is
/// attempted — the synthesized invariant goes through trace falsification
/// plus the exact-rational inductiveness re-check.
///
/// # Panics
///
/// Panics if the embedded benchmark program fails to parse.
pub fn run_row_full(
    engine: &Engine,
    benchmark: &Benchmark,
    solve: SolvePolicy,
    validate: bool,
) -> RowResult {
    let program = engine
        .parse_program(benchmark.source)
        .expect("benchmark parses");

    // Steps 1–3 through the Engine; the row's |S| and per-stage generation
    // breakdown come from this run (with the configured ϒ, not the
    // ladder's cheapest rung).
    let generated = engine
        .run(&generation_request(benchmark))
        .expect("generation requests are valid");
    let mut timings = generated.timings.clone();

    let config = validation_for_tables();
    let mut row_validation = if validate {
        let pre = Precondition::from_program(&program);
        let target_check = benchmark
            .target_polynomial(&program)
            .expect("benchmark targets resolve")
            .map(|target| {
                let mut invariant = InvariantMap::new();
                invariant.add(program.main().exit_label(), target);
                let report = falsify_traces(
                    &program,
                    &pre,
                    &invariant,
                    &Postcondition::new(),
                    &config.trace,
                );
                TargetCheck {
                    runs: report.valid_runs,
                    violations: report.violations.len(),
                    passed: report.passed(),
                }
            });
        Some(RowValidation {
            target: target_check,
            invariant: None,
        })
    } else {
        None
    };

    // Row-level size/unknowns: generation-only rows report the paper-config
    // run above; solved rows are overridden below with the system the
    // orchestrator's accepted rung actually generated (post-ladder,
    // pre-presolve), so the row and its presolve block describe the same
    // system.
    let mut our_size = generated.system_size;
    let mut unknowns = generated.num_unknowns;

    let mut presolve = None;
    let solve_row = match solve {
        SolvePolicy::None => None,
        SolvePolicy::Skip { cap } => Some(SolveRow::skipped(size_cap_reason(
            benchmark.paper.system_size,
            our_size,
            cap,
        ))),
        SolvePolicy::Attempt { budget_seconds } => {
            // The weak request runs the full orchestrator ladder with its own
            // per-rung systems: the ϒ-ladder deliberately attempts the much
            // smaller ϒ = 0 reduction before the full one above, so the
            // staged system cannot simply be reused here. With `--validate`
            // the same plan is served by the validation driver so the
            // solution's assignment goes through trace falsification on top
            // of the orchestrator's certificate.
            let request = solve_request(benchmark).with_solve_budget(budget_seconds);
            let outcome = if validate {
                polyinv_validate::run_validated_with_plan(&request, &config, |options| {
                    SolvePlan::new(options).with_solve_budget(budget_seconds)
                })
            } else {
                engine.run(&request)
            };
            match outcome {
                Ok(report) => {
                    let solve_secs = report.stage_seconds(stage_names::SOLVE);
                    timings.push((stage_names::SOLVE.to_string(), solve_secs));
                    if let (Some(validation), Some(record)) =
                        (&mut row_validation, &report.validate)
                    {
                        validation.invariant = Some(record.clone());
                    }
                    presolve = report.presolve.clone();
                    our_size = report.system_size;
                    unknowns = report.num_unknowns;
                    let synthesized = report.status == ReportStatus::Synthesized;
                    Some(SolveRow {
                        status: if synthesized {
                            SolveStatus::Synthesized
                        } else {
                            SolveStatus::Failed
                        },
                        solve_time: Duration::from_secs_f64(solve_secs),
                        violation: report.violation,
                        backend: report.backend,
                        reason: (!synthesized)
                            .then(|| format!("uncertified:violation={:.3e}", report.violation)),
                        stats: report.solver,
                        orchestrator: report.orchestrator,
                    })
                }
                Err(error) => Some(SolveRow {
                    status: SolveStatus::Failed,
                    solve_time: Duration::ZERO,
                    violation: f64::INFINITY,
                    backend: String::new(),
                    reason: Some(format!("error:{}", error.kind())),
                    stats: None,
                    orchestrator: None,
                }),
            }
        }
    };

    RowResult {
        name: benchmark.name.to_string(),
        n: benchmark.paper.n,
        d: benchmark.paper.d,
        paper_vars: benchmark.paper.vars,
        our_vars: program.main().vars().len(),
        paper_size: benchmark.paper.system_size,
        our_size,
        unknowns,
        paper_runtime: benchmark.paper.runtime_secs,
        timings,
        solve: solve_row,
        presolve,
        validate: row_validation,
    }
}

/// Formats the validation section printed under a table by
/// `reproduce --validate`.
pub fn format_validation(title: &str, rows: &[RowResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## Validation — {title}\n"));
    out.push_str(&format!(
        "{:<26} {:>10} {:<40}\n",
        "benchmark", "synthesized", "validation"
    ));
    for row in rows {
        let Some(validation) = &row.validate else {
            continue;
        };
        let synthesized = match &row.solve {
            None => "-".to_string(),
            Some(s) => match s.status {
                SolveStatus::Synthesized => "yes".to_string(),
                SolveStatus::Failed => "no".to_string(),
                SolveStatus::Skipped => "skip".to_string(),
            },
        };
        out.push_str(&format!(
            "{:<26} {:>10} {:<40}\n",
            row.name,
            synthesized,
            validation.cell()
        ));
    }
    out
}

/// Like [`run_row_on`], with a throwaway Engine (the benches and tests use
/// this; the `reproduce` binary shares one Engine across all rows).
pub fn run_row(benchmark: &Benchmark, solve: bool) -> RowResult {
    run_row_on(&engine_for_tables(), benchmark, solve)
}

/// Converts a baseline outcome into the short status cell printed by the
/// comparison table ([`ApiError`] is the unified error story end-to-end).
pub fn baseline_status(outcome: Result<usize, ApiError>) -> String {
    match outcome {
        Ok(size) => format!("applicable (|S| = {size})"),
        Err(error) => format!("{error}"),
    }
}

/// Serializes benchmark rows into the machine-readable `BENCH_<n>.json`
/// snapshot format: a schema marker plus one entry per row with the
/// benchmark's configuration, `|S|`, unknown count, the per-stage
/// generation timings (`templates`, `pairs`, `reduction`; plus `solve` in
/// `timings` when a solve was attempted) and — always — a `solve` block:
/// `null` for generation-only rows, otherwise the solve outcome with its
/// wall-clock and solver statistics (iterations, restarts, nnz(J), nnz(L),
/// factor/solve split). The solve-time trajectory across PRs lives in this
/// block.
pub fn rows_to_json(tables: &[(&str, &[RowResult])]) -> Json {
    let rows: Vec<Json> = tables
        .iter()
        .flat_map(|(table, rows)| {
            rows.iter().map(move |row| {
                let timings = Json::Object(
                    row.timings
                        .iter()
                        .map(|(stage, secs)| (stage.clone(), Json::Number(*secs)))
                        .collect(),
                );
                Json::object(vec![
                    ("name", Json::string(row.name.clone())),
                    ("table", Json::string(*table)),
                    ("n", Json::Number(row.n as f64)),
                    ("d", Json::Number(f64::from(row.d))),
                    ("vars", Json::Number(row.our_vars as f64)),
                    ("paper_size", Json::Number(row.paper_size as f64)),
                    ("size", Json::Number(row.our_size as f64)),
                    ("unknowns", Json::Number(row.unknowns as f64)),
                    (
                        "generation_seconds",
                        Json::Number(row.generation_time().as_secs_f64()),
                    ),
                    ("timings", timings),
                    ("solve", solve_row_json(row.solve.as_ref())),
                    ("presolve", presolve_row_json(row.presolve.as_ref())),
                ])
            })
        })
        .collect();
    Json::object(vec![
        ("schema", Json::string("polyinv-bench/v1")),
        ("rows", Json::Array(rows)),
    ])
}

/// The `solve` block of one snapshot row (`null` only for generation-only
/// rows; every `--solve` row serializes an explicit block with its
/// `status` and, for skipped/failed rows, a machine-readable `reason`).
fn solve_row_json(solve: Option<&SolveRow>) -> Json {
    let Some(solve) = solve else {
        return Json::Null;
    };
    let mut fields = vec![
        ("status", Json::string(solve.status.label())),
        ("synthesized", Json::Bool(solve.synthesized())),
        (
            "reason",
            match &solve.reason {
                Some(reason) => Json::string(reason.clone()),
                None => Json::Null,
            },
        ),
    ];
    if solve.status == SolveStatus::Skipped {
        // Skipped rows have no attempt to describe: the status/reason pair
        // is the whole story, and the solver fields stay explicit nulls.
        fields.push(("backend", Json::Null));
        fields.push(("orchestrator", Json::Null));
        return Json::object(fields);
    }
    fields.extend([
        ("backend", Json::string(solve.backend.clone())),
        (
            "solve_seconds",
            Json::Number(solve.solve_time.as_secs_f64()),
        ),
        ("violation", Json::Number(solve.violation)),
    ]);
    if let Some(stats) = &solve.stats {
        fields.extend([
            ("iterations", Json::Number(stats.iterations as f64)),
            ("restarts", Json::Number(stats.restarts as f64)),
            ("final_residual", Json::Number(stats.final_residual)),
            ("nnz_jacobian", Json::Number(stats.nnz_jacobian as f64)),
            ("nnz_factor", Json::Number(stats.nnz_factor as f64)),
            ("factorizations", Json::Number(stats.factorizations as f64)),
            ("factor_seconds", Json::Number(stats.factor_seconds)),
            (
                "solve_triangular_seconds",
                Json::Number(stats.solve_seconds),
            ),
            ("eval_seconds", Json::Number(stats.eval_seconds)),
            ("threads", Json::Number(stats.threads as f64)),
        ]);
    }
    fields.push((
        "orchestrator",
        match &solve.orchestrator {
            Some(record) => record.to_json(),
            None => Json::Null,
        },
    ));
    Json::object(fields)
}

/// The `presolve` block of one snapshot row (`null` for generation-only
/// rows or when presolve was disabled). Reuses the API record's JSON shape
/// so the snapshot and report blocks stay byte-compatible.
fn presolve_row_json(presolve: Option<&PresolveRecord>) -> Json {
    match presolve {
        Some(record) => record.to_json(),
        None => Json::Null,
    }
}

/// Writes the benchmark snapshot to `path` (pretty-printed, trailing
/// newline), returning an [`ApiError::Io`] on failure.
///
/// When `path` already holds a snapshot with a top-level `"throughput"`
/// block (written by `polyinv-loadgen --bench-out`), that block is carried
/// over: regenerating the tables must not erase the serving measurements.
pub fn write_bench_json(
    path: &std::path::Path,
    tables: &[(&str, &[RowResult])],
) -> Result<(), ApiError> {
    let mut doc = rows_to_json(tables);
    if let Some(throughput) = read_existing_throughput(path) {
        if let Json::Object(fields) = &mut doc {
            fields.push(("throughput".to_string(), throughput));
        }
    }
    let mut text = doc.pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|error| ApiError::Io {
        path: path.display().to_string(),
        message: error.to_string(),
    })
}

/// The `"throughput"` block of an existing snapshot file, if any. Unreadable
/// or unparseable files yield `None` — the rewrite then proceeds as a fresh
/// snapshot.
fn read_existing_throughput(path: &std::path::Path) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    doc.get("throughput").cloned()
}

/// Formats a collection of rows as the table printed by the `reproduce`
/// binary, with one column per pipeline stage.
pub fn format_table(title: &str, rows: &[RowResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<26} {:>2} {:>2} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>11} {:>12}\n",
        "benchmark",
        "n",
        "d",
        "|V|paper",
        "|V|ours",
        "|S|paper",
        "|S|ours",
        "tmpl",
        "pairs",
        "reduce",
        "gen-time",
        "paper-time",
        "solve"
    ));
    for row in rows {
        let solve = match &row.solve {
            None => "-".to_string(),
            Some(s) => match s.status {
                SolveStatus::Synthesized => {
                    format!("{}({:.1}s)", s.backend, s.solve_time.as_secs_f64())
                }
                SolveStatus::Failed => format!("fail({:.0e})", s.violation),
                SolveStatus::Skipped => "skip".to_string(),
            },
        };
        let stage = |name: &str| format!("{:.3}s", row.stage_seconds(name));
        out.push_str(&format!(
            "{:<26} {:>2} {:>2} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9.2}s {:>10.1}s {:>12}\n",
            row.name,
            row.n,
            row.d,
            row.paper_vars,
            row.our_vars,
            row.paper_size,
            row.our_size,
            stage(stage_names::TEMPLATES),
            stage(stage_names::PAIRS),
            stage(stage_names::REDUCTION),
            row.generation_time().as_secs_f64(),
            row.paper_runtime,
            solve
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewriting_a_snapshot_preserves_the_throughput_block() {
        let path = std::env::temp_dir().join(format!(
            "polyinv-bench-throughput-{}.json",
            std::process::id()
        ));
        // Seed the file with a snapshot carrying a loadgen throughput block.
        let seeded = Json::object(vec![
            ("schema", Json::string("polyinv-bench/v1")),
            ("rows", Json::Array(vec![])),
            (
                "throughput",
                Json::object(vec![("programs", Json::Number(200.0))]),
            ),
        ]);
        std::fs::write(&path, seeded.pretty()).unwrap();

        // A regeneration with fresh tables must carry the block over…
        write_bench_json(&path, &[("table3", &[])]).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("polyinv-bench/v1")
        );
        assert_eq!(
            doc.get("throughput")
                .and_then(|block| block.get("programs"))
                .and_then(Json::as_usize),
            Some(200)
        );

        // …and a snapshot without one stays without one.
        std::fs::remove_file(&path).unwrap();
        write_bench_json(&path, &[("table3", &[])]).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(doc.get("throughput").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_row_reports_generation_metrics_for_a_small_benchmark() {
        let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
        let row = run_row(&benchmark, false);
        assert_eq!(row.paper_size, 1700);
        assert!(row.our_size > 100);
        assert!(row.solve.is_none());
        // The Engine recorded every generation stage.
        for stage in [
            stage_names::TEMPLATES,
            stage_names::PAIRS,
            stage_names::REDUCTION,
        ] {
            assert!(
                row.stage_seconds(stage) > 0.0,
                "missing stage timing: {stage}"
            );
        }
        let table = format_table("Table 3 (excerpt)", &[row]);
        assert!(table.contains("recursive-sum"));
        assert!(table.contains("|S|ours"));
        assert!(table.contains("reduce"));
    }

    #[test]
    fn bench_snapshot_json_covers_rows_with_stage_timings() {
        let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
        let row = run_row(&benchmark, false);
        let json = rows_to_json(&[("table3", std::slice::from_ref(&row))]);
        assert_eq!(
            json.get("schema").unwrap().as_str(),
            Some("polyinv-bench/v1")
        );
        let rows = json.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        let entry = &rows[0];
        assert_eq!(entry.get("name").unwrap().as_str(), Some("recursive-sum"));
        assert_eq!(entry.get("table").unwrap().as_str(), Some("table3"));
        assert!(entry.get("size").unwrap().as_usize().unwrap() > 100);
        assert!(entry.get("unknowns").unwrap().as_usize().unwrap() > 100);
        let timings = entry.get("timings").unwrap();
        for stage in [
            stage_names::TEMPLATES,
            stage_names::PAIRS,
            stage_names::REDUCTION,
        ] {
            assert!(
                timings.get(stage).unwrap().as_f64().unwrap() > 0.0,
                "missing {stage} timing in the snapshot"
            );
        }
        // Generation-only rows carry explicit null solve/presolve blocks.
        assert_eq!(entry.get("solve"), Some(&Json::Null));
        assert_eq!(entry.get("presolve"), Some(&Json::Null));
        // The document parses back (the CI coverage check relies on this).
        let reparsed = Json::parse(&json.pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn solve_blocks_serialize_their_statistics() {
        let row = RowResult {
            name: "tiny".to_string(),
            n: 1,
            d: 1,
            paper_vars: 2,
            our_vars: 2,
            paper_size: 10,
            our_size: 12,
            unknowns: 9,
            paper_runtime: 0.1,
            timings: vec![("solve".to_string(), 0.25)],
            solve: Some(SolveRow {
                status: SolveStatus::Synthesized,
                solve_time: Duration::from_millis(250),
                violation: 1e-9,
                backend: "lm".to_string(),
                reason: None,
                orchestrator: None,
                stats: Some(SolverRecord {
                    iterations: 40,
                    restarts: 2,
                    final_residual: 1e-17,
                    nnz_jacobian: 60,
                    nnz_factor: 33,
                    factorizations: 44,
                    factor_seconds: 0.2,
                    solve_seconds: 0.01,
                    eval_seconds: 0.05,
                    threads: 4,
                }),
            }),
            presolve: Some(PresolveRecord {
                size_before: 12,
                size_after: 7,
                unknowns_before: 9,
                unknowns_after: 6,
                rounds: 2,
                pinned: 1,
                fixed: 2,
                affine: 1,
                solved: 0,
                freed: 0,
                rectified: 0,
                dropped: 5,
                duplicates: 0,
                seconds: 0.001,
            }),
            validate: None,
        };
        let json = rows_to_json(&[("table2", std::slice::from_ref(&row))]);
        let entry = &json.get("rows").unwrap().as_array().unwrap()[0];
        let presolve = entry.get("presolve").unwrap();
        assert_eq!(presolve.get("size_before").unwrap().as_usize(), Some(12));
        assert_eq!(presolve.get("size_after").unwrap().as_usize(), Some(7));
        assert_eq!(presolve.get("rounds").unwrap().as_usize(), Some(2));
        let solve = entry.get("solve").unwrap();
        assert_eq!(solve.get("status").unwrap().as_str(), Some("synthesized"));
        assert_eq!(solve.get("synthesized"), Some(&Json::Bool(true)));
        assert_eq!(solve.get("reason"), Some(&Json::Null));
        assert_eq!(solve.get("backend").unwrap().as_str(), Some("lm"));
        assert_eq!(solve.get("iterations").unwrap().as_usize(), Some(40));
        assert_eq!(solve.get("restarts").unwrap().as_usize(), Some(2));
        assert_eq!(solve.get("nnz_jacobian").unwrap().as_usize(), Some(60));
        assert_eq!(solve.get("nnz_factor").unwrap().as_usize(), Some(33));
        assert!(solve.get("factor_seconds").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            solve
                .get("solve_triangular_seconds")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert_eq!(solve.get("eval_seconds").unwrap().as_f64(), Some(0.05));
        assert_eq!(solve.get("threads").unwrap().as_usize(), Some(4));
        let reparsed = Json::parse(&json.pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn skipped_rows_emit_explicit_solve_blocks() {
        // Satellite of the "silent solve: null" bugfix: a row the harness
        // declines to solve still serializes a full solve block with a
        // skipped status and a machine-readable reason. Size caps are
        // opt-in now; the reason names the paper *and* generated sizes so
        // it cannot be misread against the row's `size` field.
        let benchmark = polyinv_benchmarks::by_name("merge-sort").unwrap();
        let policy = solve_policy_with_budget(&benchmark, true, 60.0, Some(6000));
        let SolvePolicy::Skip { cap } = policy else {
            panic!("merge-sort (paper |S| 33002) must exceed the requested cap");
        };
        let reason = size_cap_reason(benchmark.paper.system_size, 30778, cap);
        assert_eq!(reason, "size-cap:paper=33002,generated=30778,cap=6000");

        let row = RowResult {
            name: benchmark.name.to_string(),
            n: 2,
            d: 2,
            paper_vars: 6,
            our_vars: 6,
            paper_size: 33002,
            our_size: 30778,
            unknowns: 1000,
            paper_runtime: 10.0,
            timings: vec![],
            solve: Some(SolveRow::skipped(reason)),
            presolve: None,
            validate: None,
        };
        let json = rows_to_json(&[("table3", std::slice::from_ref(&row))]);
        let entry = &json.get("rows").unwrap().as_array().unwrap()[0];
        let solve = entry.get("solve").unwrap();
        assert_ne!(solve, &Json::Null, "skipped rows keep an explicit block");
        assert_eq!(solve.get("status").unwrap().as_str(), Some("skipped"));
        assert_eq!(solve.get("synthesized"), Some(&Json::Bool(false)));
        assert_eq!(
            solve.get("reason").unwrap().as_str(),
            Some("size-cap:paper=33002,generated=30778,cap=6000")
        );
        // No attempt happened, so the solver fields are explicit nulls.
        assert_eq!(solve.get("backend"), Some(&Json::Null));
        assert_eq!(solve.get("orchestrator"), Some(&Json::Null));
        // And the whole document still round-trips.
        let reparsed = Json::parse(&json.pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn solve_policies_attempt_every_row_under_a_wall_clock_budget() {
        // The hard 6000 paper-size cap is gone: the default policy attempts
        // every row (including the formerly-skipped large ones) under the
        // default wall-clock budget. An explicit size cap stays available
        // as an opt-in.
        fn attempt_budget(policy: SolvePolicy) -> Option<f64> {
            match policy {
                SolvePolicy::Attempt { budget_seconds } => Some(budget_seconds),
                _ => None,
            }
        }
        let small = polyinv_benchmarks::by_name("pw2").unwrap();
        assert_eq!(
            attempt_budget(solve_policy_for(&small, true)),
            Some(DEFAULT_SOLVE_BUDGET_SECONDS)
        );
        assert!(matches!(solve_policy_for(&small, false), SolvePolicy::None));
        let large = polyinv_benchmarks::by_name("euclidex3").unwrap();
        assert_eq!(
            attempt_budget(solve_policy_for(&large, true)),
            Some(DEFAULT_SOLVE_BUDGET_SECONDS)
        );
        assert_eq!(
            attempt_budget(solve_policy_with_budget(&large, true, 30.0, None)),
            Some(30.0)
        );
        assert!(matches!(
            solve_policy_with_budget(&large, true, 30.0, Some(6000)),
            SolvePolicy::Skip { cap: 6000 }
        ));
        assert_eq!(
            attempt_budget(solve_policy_with_budget(&small, true, 30.0, Some(6000))),
            Some(30.0)
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn solved_rows_describe_the_accepted_rungs_system() {
        // Regression test for the size-mismatch bug: a solved row's
        // `size`/`unknowns` and its presolve block must describe the same
        // (post-ladder, pre-presolve) system — the one the orchestrator's
        // accepted rung generated — not the generation-only paper-config
        // run.
        let engine = engine_for_tables();
        let benchmark = polyinv_benchmarks::by_name("pw2").unwrap();
        let row = run_row_full(
            &engine,
            &benchmark,
            SolvePolicy::Attempt {
                budget_seconds: 0.0,
            },
            false,
        );
        let solve = row.solve.as_ref().expect("the solve was attempted");
        assert_ne!(solve.status, SolveStatus::Skipped);
        let orchestrator = solve
            .orchestrator
            .as_ref()
            .expect("attempted rows carry the ladder statistics");
        assert!(orchestrator.attempts >= 1);
        if solve.synthesized() {
            assert!(orchestrator.certified, "synthesized rows are certified");
        }
        let presolve = row
            .presolve
            .as_ref()
            .expect("the accepted rung ran presolve");
        assert_eq!(
            row.our_size, presolve.size_before,
            "row size and presolve must describe the same system"
        );
        assert_eq!(
            row.unknowns, presolve.unknowns_before,
            "row unknowns and presolve must describe the same system"
        );
    }

    #[test]
    fn a_shared_engine_parses_each_benchmark_once() {
        let engine = engine_for_tables();
        let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
        let _ = run_row_on(&engine, &benchmark, false);
        let _ = run_row_on(&engine, &benchmark, false);
        assert_eq!(engine.cached_programs(), 1);
    }
}
