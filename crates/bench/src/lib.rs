//! Shared harness code for regenerating the paper's evaluation tables.
//!
//! The `reproduce` binary prints the rows of Tables 2 and 3 (and the
//! ablations); the Criterion benches in `benches/` measure the individual
//! pipeline stages. Both are thin wrappers around [`run_row`], which itself
//! is a thin wrapper around the staged `Pipeline` of the `polyinv` crate —
//! the per-stage wall-clock breakdown recorded by the pipeline's
//! `SynthesisContext` flows directly into the printed tables.

use std::sync::Arc;
use std::time::Duration;

use polyinv::pipeline::stage_names;
use polyinv::prelude::*;
use polyinv::weak::TargetAssertion;
use polyinv_benchmarks::Benchmark;
use polyinv_qcqp::{LmOptions, LmSolver};

/// The measurements taken for one benchmark row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Benchmark name (paper row name).
    pub name: String,
    /// Template size `n` (from the paper's configuration).
    pub n: usize,
    /// Template degree `d` (from the paper's configuration).
    pub d: u32,
    /// Paper-reported number of program variables.
    pub paper_vars: usize,
    /// Our number of program variables (`|V^f|` of the main function,
    /// including shadow parameters and the return variable).
    pub our_vars: usize,
    /// Paper-reported system size `|S|`.
    pub paper_size: usize,
    /// Our system size `|S|`.
    pub our_size: usize,
    /// Paper-reported runtime in seconds.
    pub paper_runtime: f64,
    /// Per-stage wall-clock breakdown of the generation stages (and, when a
    /// solve was attempted, the accumulated solve stage of the attempt).
    pub timings: StageTimings,
    /// Outcome of the solve attempt, if one was made.
    pub solve: Option<SolveRow>,
}

impl RowResult {
    /// Combined time of the generation stages (Steps 1–3).
    pub fn generation_time(&self) -> Duration {
        self.timings.generation()
    }
}

/// The solve part of a row.
#[derive(Debug, Clone)]
pub struct SolveRow {
    /// Whether the quadratic system was solved (an invariant containing the
    /// target was synthesized).
    pub synthesized: bool,
    /// Time spent solving.
    pub solve_time: Duration,
    /// Final constraint violation of the best assignment.
    pub violation: f64,
    /// The back-end that produced the attempt.
    pub backend: &'static str,
}

/// The reduction options matching a benchmark's paper configuration.
pub fn options_for(benchmark: &Benchmark) -> SynthesisOptions {
    SynthesisOptions {
        degree: benchmark.paper.d,
        size: benchmark.paper.n,
        upsilon: 2,
        encoding: SosEncoding::Cholesky,
        ..SynthesisOptions::default()
    }
}

/// The solver configuration used for the solve attempts of the tables.
pub fn solver_for_tables() -> Arc<dyn QcqpBackend> {
    Arc::new(LmSolver::new(LmOptions {
        max_iterations: 150,
        restarts: 2,
        ..LmOptions::default()
    }))
}

/// Runs Steps 1–3 (and optionally Step 4) for one benchmark row.
///
/// # Panics
///
/// Panics if the embedded benchmark program fails to parse (guarded by the
/// benchmark crate's tests).
pub fn run_row(benchmark: &Benchmark, solve: bool) -> RowResult {
    let program = benchmark.program().expect("benchmark parses");
    let pre = benchmark.precondition().expect("benchmark parses");
    let options = options_for(benchmark);

    // Steps 1–3 through the staged pipeline; the row's |S| and per-stage
    // generation breakdown come from this run (with the configured ϒ, not
    // the ladder's cheapest rung).
    let synth = WeakSynthesis::with_options(options).backend(solver_for_tables());
    let (generated, mut timings) = synth.generate_staged(&program, &pre);

    let solve_row = if solve {
        let target = benchmark
            .target_polynomial(&program)
            .expect("targets resolve")
            .map(|poly| TargetAssertion::new(program.main().exit_label(), poly));
        let targets: Vec<TargetAssertion> = target.into_iter().collect();
        // `synthesize` generates its own per-rung systems: the ϒ-ladder
        // deliberately attempts the much smaller ϒ = 0 reduction before the
        // full one above, so the staged system cannot simply be reused here.
        // The row's gen-time columns report the full-ϒ staged run only.
        let outcome = synth.synthesize(&program, &pre, &targets);
        timings.record(stage_names::SOLVE, outcome.solve_time);
        Some(SolveRow {
            synthesized: outcome.status == SynthesisStatus::Synthesized,
            solve_time: outcome.solve_time,
            violation: outcome.violation,
            backend: outcome.backend,
        })
    } else {
        None
    };

    RowResult {
        name: benchmark.name.to_string(),
        n: benchmark.paper.n,
        d: benchmark.paper.d,
        paper_vars: benchmark.paper.vars,
        our_vars: program.main().vars().len(),
        paper_size: benchmark.paper.system_size,
        our_size: generated.size(),
        paper_runtime: benchmark.paper.runtime_secs,
        timings,
        solve: solve_row,
    }
}

/// Formats a collection of rows as the table printed by the `reproduce`
/// binary, with one column per pipeline stage.
pub fn format_table(title: &str, rows: &[RowResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<26} {:>2} {:>2} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>11} {:>12}\n",
        "benchmark",
        "n",
        "d",
        "|V|paper",
        "|V|ours",
        "|S|paper",
        "|S|ours",
        "tmpl",
        "pairs",
        "reduce",
        "gen-time",
        "paper-time",
        "solve"
    ));
    for row in rows {
        let solve = match &row.solve {
            None => "-".to_string(),
            Some(s) if s.synthesized => {
                format!("{}({:.1}s)", s.backend, s.solve_time.as_secs_f64())
            }
            Some(s) => format!("fail({:.0e})", s.violation),
        };
        let stage = |name: &str| format!("{:.3}s", row.timings.get(name).as_secs_f64());
        out.push_str(&format!(
            "{:<26} {:>2} {:>2} {:>8} {:>8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9.2}s {:>10.1}s {:>12}\n",
            row.name,
            row.n,
            row.d,
            row.paper_vars,
            row.our_vars,
            row.paper_size,
            row.our_size,
            stage(stage_names::TEMPLATES),
            stage(stage_names::PAIRS),
            stage(stage_names::REDUCTION),
            row.generation_time().as_secs_f64(),
            row.paper_runtime,
            solve
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_row_reports_generation_metrics_for_a_small_benchmark() {
        let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
        let row = run_row(&benchmark, false);
        assert_eq!(row.paper_size, 1700);
        assert!(row.our_size > 100);
        assert!(row.solve.is_none());
        // The staged pipeline recorded every generation stage.
        for stage in [
            stage_names::TEMPLATES,
            stage_names::PAIRS,
            stage_names::REDUCTION,
        ] {
            assert!(
                row.timings.get(stage) > Duration::ZERO,
                "missing stage timing: {stage}"
            );
        }
        let table = format_table("Table 3 (excerpt)", &[row]);
        assert!(table.contains("recursive-sum"));
        assert!(table.contains("|S|ours"));
        assert!(table.contains("reduce"));
    }
}
