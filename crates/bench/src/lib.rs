//! Shared harness code for regenerating the paper's evaluation tables.
//!
//! The `reproduce` binary prints the rows of Tables 2 and 3 (and the
//! ablations); the Criterion benches in `benches/` measure the individual
//! pipeline stages. Both are thin wrappers around [`run_row`].

use std::time::{Duration, Instant};

use polyinv::prelude::*;
use polyinv::weak::TargetAssertion;
use polyinv_benchmarks::Benchmark;
use polyinv_constraints::{SosEncoding, SynthesisOptions};
use polyinv_qcqp::LmOptions;

/// The measurements taken for one benchmark row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Benchmark name (paper row name).
    pub name: String,
    /// Template size `n` (from the paper's configuration).
    pub n: usize,
    /// Template degree `d` (from the paper's configuration).
    pub d: u32,
    /// Paper-reported number of program variables.
    pub paper_vars: usize,
    /// Our number of program variables (`|V^f|` of the main function,
    /// including shadow parameters and the return variable).
    pub our_vars: usize,
    /// Paper-reported system size `|S|`.
    pub paper_size: usize,
    /// Our system size `|S|`.
    pub our_size: usize,
    /// Paper-reported runtime in seconds.
    pub paper_runtime: f64,
    /// Time we spent generating the system (Steps 1–3).
    pub generation_time: Duration,
    /// Outcome of the solve attempt, if one was made.
    pub solve: Option<SolveRow>,
}

/// The solve part of a row.
#[derive(Debug, Clone)]
pub struct SolveRow {
    /// Whether the quadratic system was solved (an invariant containing the
    /// target was synthesized).
    pub synthesized: bool,
    /// Time spent solving.
    pub solve_time: Duration,
    /// Final constraint violation of the best assignment.
    pub violation: f64,
}

/// The reduction options matching a benchmark's paper configuration.
pub fn options_for(benchmark: &Benchmark) -> SynthesisOptions {
    SynthesisOptions {
        degree: benchmark.paper.d,
        size: benchmark.paper.n,
        upsilon: 2,
        encoding: SosEncoding::Cholesky,
        ..SynthesisOptions::default()
    }
}

/// Runs Steps 1–3 (and optionally Step 4) for one benchmark row.
///
/// # Panics
///
/// Panics if the embedded benchmark program fails to parse (guarded by the
/// benchmark crate's tests).
pub fn run_row(benchmark: &Benchmark, solve: bool) -> RowResult {
    let program = benchmark.program().expect("benchmark parses");
    let pre = benchmark.precondition().expect("benchmark parses");
    let options = options_for(benchmark);

    let generation_start = Instant::now();
    let synth = WeakSynthesis::with_options(options);
    let generated = synth.generate_only(&program, &pre);
    let generation_time = generation_start.elapsed();

    let solve_row = if solve {
        let target = benchmark
            .target_polynomial(&program)
            .expect("targets resolve")
            .map(|poly| TargetAssertion::new(program.main().exit_label(), poly));
        let targets: Vec<TargetAssertion> = target.into_iter().collect();
        let synth = synth.backend(polyinv::weak::SolverBackend::Lm(LmOptions {
            max_iterations: 150,
            restarts: 2,
            ..LmOptions::default()
        }));
        let outcome = synth.synthesize(&program, &pre, &targets);
        Some(SolveRow {
            synthesized: outcome.status == polyinv::weak::SynthesisStatus::Synthesized,
            solve_time: outcome.solve_time,
            violation: outcome.violation,
        })
    } else {
        None
    };

    RowResult {
        name: benchmark.name.to_string(),
        n: benchmark.paper.n,
        d: benchmark.paper.d,
        paper_vars: benchmark.paper.vars,
        our_vars: program.main().vars().len(),
        paper_size: benchmark.paper.system_size,
        our_size: generated.size(),
        paper_runtime: benchmark.paper.runtime_secs,
        generation_time,
        solve: solve_row,
    }
}

/// Formats a collection of rows as the table printed by the `reproduce`
/// binary.
pub fn format_table(title: &str, rows: &[RowResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<26} {:>2} {:>2} {:>8} {:>8} {:>10} {:>10} {:>12} {:>12} {:>10}\n",
        "benchmark",
        "n",
        "d",
        "|V|paper",
        "|V|ours",
        "|S|paper",
        "|S|ours",
        "gen-time",
        "paper-time",
        "solve"
    ));
    for row in rows {
        let solve = match &row.solve {
            None => "-".to_string(),
            Some(s) if s.synthesized => format!("ok({:.1}s)", s.solve_time.as_secs_f64()),
            Some(s) => format!("fail({:.0e})", s.violation),
        };
        out.push_str(&format!(
            "{:<26} {:>2} {:>2} {:>8} {:>8} {:>10} {:>10} {:>10.2}s {:>11.1}s {:>10}\n",
            row.name,
            row.n,
            row.d,
            row.paper_vars,
            row.our_vars,
            row.paper_size,
            row.our_size,
            row.generation_time.as_secs_f64(),
            row.paper_runtime,
            solve
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_row_reports_generation_metrics_for_a_small_benchmark() {
        let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
        let row = run_row(&benchmark, false);
        assert_eq!(row.paper_size, 1700);
        assert!(row.our_size > 100);
        assert!(row.solve.is_none());
        let table = format_table("Table 3 (excerpt)", &[row]);
        assert!(table.contains("recursive-sum"));
        assert!(table.contains("|S|ours"));
    }
}
