//! Measurement probes for the Step-4 solve stage, shared by the criterion
//! `solver` bench and the `solver_comparison` example so both measure the
//! same algorithm.
//!
//! [`SparseProbe::iteration`] runs one *sparse* LM inner-loop iteration
//! through the solver's own public pieces — [`LmWorkspace`] for the
//! symbolic side, [`LmEvaluator`] for the residual pass scattering the
//! sparse Jacobian rows into `JᵀJ`/`Jᵀr`, then a damped LDLᵀ factor-solve
//! on the shared symbolic analysis. Because the probe delegates to the
//! shipped evaluator instead of duplicating its loop, the benches cannot
//! silently measure a different algorithm than the solver ships, and the
//! probe picks up solver-side changes (like the chunked parallel
//! evaluation) for free. [`dense_iteration`] reproduces the dense
//! pre-rewrite computation (dense `m×n` Jacobian, dense transpose and
//! `JᵀJ`, `O(n³)` solve) as the comparison oracle.

use polyinv_arith::{LdlNumeric, Matrix, Vector};
use polyinv_lang::Precondition;
use polyinv_qcqp::{LmEvaluator, LmWorkspace, Problem};

use crate::options_for;

/// Builds the numeric Step-4 problem of a Table 2/3 row (all unknowns
/// free).
///
/// # Panics
///
/// Panics on unknown benchmark names.
pub fn table_problem(name: &str) -> Problem {
    let benchmark = polyinv_benchmarks::by_name(name).unwrap();
    let program = benchmark.program().unwrap();
    let pre = Precondition::from_program(&program);
    let generated =
        polyinv_constraints::generate(&program, &pre, &options_for(&benchmark)).unwrap();
    polyinv::bridge::system_to_problem(&generated.system)
}

/// Like [`table_problem`], but with the affine presolve applied first —
/// the system Step 4 actually receives in the pipeline. This is the scale
/// the large-system bench group measures.
///
/// # Panics
///
/// Panics on unknown benchmark names.
pub fn presolved_table_problem(name: &str) -> Problem {
    let benchmark = polyinv_benchmarks::by_name(name).unwrap();
    let program = benchmark.program().unwrap();
    let pre = Precondition::from_program(&program);
    let generated =
        polyinv_constraints::generate(&program, &pre, &options_for(&benchmark)).unwrap();
    let presolved = polyinv_constraints::presolve(
        &generated.system,
        &std::collections::HashMap::new(),
        &polyinv_constraints::PresolveOptions::default(),
    );
    polyinv::bridge::system_to_problem(&presolved.system)
}

/// One sparse solve workspace plus its numeric factor buffer: what
/// `LmSolver` builds once per solve (symbolic side) and once per restart
/// (numeric side), exposed for per-iteration measurement.
#[derive(Debug)]
pub struct SparseProbe {
    problem: Problem,
    ws: LmWorkspace,
    numeric: LdlNumeric,
    eval_threads: usize,
}

impl SparseProbe {
    /// Analyzes the problem with a serial evaluator: `JᵀJ` pattern,
    /// minimum-degree ordering and symbolic LDLᵀ, plus zeroed numeric
    /// buffers.
    pub fn new(problem: Problem) -> Self {
        SparseProbe::with_threads(problem, 1)
    }

    /// [`SparseProbe::new`] with an explicit evaluation worker count
    /// (`LmOptions::eval_threads`); chunked parallel evaluation engages at
    /// the same row threshold as the shipping solver.
    pub fn with_threads(problem: Problem, eval_threads: usize) -> Self {
        let ws = LmWorkspace::build(&problem, 0.0);
        let numeric = ws.symbolic().numeric();
        SparseProbe {
            problem,
            ws,
            numeric,
            eval_threads: eval_threads.max(1),
        }
    }

    /// The problem under measurement.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Stored entries of the Jacobian pattern.
    pub fn nnz_jacobian(&self) -> usize {
        self.ws.pattern().jacobian_nnz()
    }

    /// Stored entries of the `JᵀJ` lower triangle.
    pub fn nnz_jtj(&self) -> usize {
        self.ws.pattern().nnz()
    }

    /// Entries of the LDLᵀ factor (unit diagonal included).
    pub fn nnz_factor(&self) -> usize {
        self.ws.symbolic().nnz_factor()
    }

    /// One sparse LM iteration at `x` with damping `lambda`: residual pass
    /// scattering into `JᵀJ`/`Jᵀr` (through the solver's own evaluator,
    /// chunked across `eval_threads` workers at scale), damped numeric
    /// factor, triangular solves. Returns a checksum of the step so the
    /// work cannot be optimized away.
    pub fn iteration(&mut self, x: &[f64], lambda: f64) -> f64 {
        let mut eval = LmEvaluator::new(&self.problem, &self.ws, 0.0, self.eval_threads);
        eval.residuals_and_normal(x);
        let values = eval.jtj_values();
        let diag = self.ws.pattern().diag_positions();
        let diag_add: Vec<f64> = (0..self.problem.num_vars)
            .map(|i| lambda * (1.0 + values[diag[i]]))
            .collect();
        assert!(self.ws.symbolic().factor(values, &diag_add, &mut self.numeric));
        let mut step = eval.jtr().to_vec();
        self.ws.symbolic().solve(&mut self.numeric, &mut step);
        step.iter().sum()
    }
}

/// One dense LM iteration the way the pre-sparse back-end computed it:
/// dense `m×n` Jacobian, dense transpose, dense `JᵀJ`, `O(n³)` solve.
/// Returns a checksum of the step.
///
/// # Panics
///
/// Panics if the damped normal system is singular (it never is for
/// `λ > 0`).
pub fn dense_iteration(problem: &Problem, x: &[f64], lambda: f64) -> f64 {
    let n = problem.num_vars;
    let m = problem.equalities.len() + problem.inequalities.len();
    let mut jacobian = Matrix::zeros(m, n);
    let mut residuals = vec![0.0; m];
    let mut grad = vec![0.0; n];
    let mut row = 0;
    for eq in &problem.equalities {
        residuals[row] = eq.eval(x);
        grad.fill(0.0);
        eq.add_gradient(x, &mut grad, 1.0);
        for (col, &g) in grad.iter().enumerate() {
            if g != 0.0 {
                jacobian.set(row, col, g);
            }
        }
        row += 1;
    }
    for ineq in &problem.inequalities {
        let value = ineq.eval(x);
        if value < 0.0 {
            residuals[row] = -value;
            grad.fill(0.0);
            ineq.add_gradient(x, &mut grad, -1.0);
            for (col, &g) in grad.iter().enumerate() {
                if g != 0.0 {
                    jacobian.set(row, col, g);
                }
            }
        }
        row += 1;
    }
    let jt = jacobian.transpose();
    let mut jtj = &jt * &jacobian;
    for i in 0..n {
        let d = jtj.get(i, i);
        jtj.add_to(i, i, lambda * (1.0 + d));
    }
    let jtr = jt.mul_vec(&Vector::from_slice(&residuals));
    let step = jtj.solve(&jtr).expect("damped system is PD");
    (0..n).map(|i| step[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_and_dense_probes_compute_the_same_step() {
        use polyinv_qcqp::QuadraticForm;
        // A small synthetic system keeps this fast in debug mode; the
        // at-scale equivalence is covered by the lm/arith property tests.
        let mut problem = Problem::new(6);
        for i in 0..5 {
            problem.equalities.push(QuadraticForm {
                constant: -1.0 - i as f64,
                linear: vec![(i, 2.0)],
                quadratic: vec![(i, i + 1, 0.5)],
            });
        }
        problem.inequalities.push(QuadraticForm {
            constant: -10.0,
            linear: vec![(3, 1.0)],
            quadratic: Vec::new(),
        });
        let x = vec![0.05; 6];
        let mut probe = SparseProbe::new(problem);
        let sparse = probe.iteration(&x, 1e-3);
        let dense = dense_iteration(probe.problem(), &x, 1e-3);
        assert!(
            (sparse - dense).abs() < 1e-6 * (1.0 + dense.abs()),
            "checksum mismatch: sparse {sparse} vs dense {dense}"
        );
        assert!(probe.nnz_jacobian() > 0);
        assert!(probe.nnz_factor() >= 6);
    }

    #[test]
    fn probe_iterations_are_identical_across_thread_counts() {
        // The probe delegates to the shipping evaluator, so its chunked
        // parallel path must agree bitwise with the serial one.
        let problem = table_problem("pw2");
        let x: Vec<f64> = (0..problem.num_vars)
            .map(|i| 0.05 + 1e-4 * (i % 7) as f64)
            .collect();
        let serial = SparseProbe::new(problem.clone()).iteration(&x, 1e-3);
        let parallel = SparseProbe::with_threads(problem, 4).iteration(&x, 1e-3);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }
}
