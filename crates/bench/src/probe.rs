//! Measurement probes for the Step-4 solve stage, shared by the criterion
//! `solver` bench and the `solver_comparison` example so both measure the
//! same algorithm.
//!
//! [`SparseProbe::iteration`] mirrors the *sparse* LM inner loop of
//! `polyinv_qcqp::LmSolver` (one residual pass scattering the sparse
//! Jacobian rows into `JᵀJ`/`Jᵀr`, then a damped LDLᵀ factor-solve on the
//! shared symbolic analysis); [`dense_iteration`] reproduces the dense
//! pre-rewrite computation (dense `m×n` Jacobian, dense transpose and
//! `JᵀJ`, `O(n³)` solve) as the comparison oracle. Keep `SparseProbe` in
//! sync with `LmSolver` when the inner loop changes — it exists so the
//! benches never silently measure a different algorithm than the solver
//! ships.

use std::sync::Arc;

use polyinv_arith::{JtjPattern, JtjScratch, LdlNumeric, Matrix, SymbolicLdl, Vector};
use polyinv_lang::Precondition;
use polyinv_qcqp::{Problem, ProblemStructure};

use crate::options_for;

/// Builds the numeric Step-4 problem of a Table 2/3 row (all unknowns
/// free).
///
/// # Panics
///
/// Panics on unknown benchmark names.
pub fn table_problem(name: &str) -> Problem {
    let benchmark = polyinv_benchmarks::by_name(name).unwrap();
    let program = benchmark.program().unwrap();
    let pre = Precondition::from_program(&program);
    let generated =
        polyinv_constraints::generate(&program, &pre, &options_for(&benchmark)).unwrap();
    polyinv::bridge::system_to_problem(&generated.system)
}

/// One sparse solve workspace plus its per-iteration buffers: what
/// `LmSolver` builds once per solve (symbolic side) and once per restart
/// (numeric side).
#[derive(Debug)]
pub struct SparseProbe {
    problem: Problem,
    structure: Arc<ProblemStructure>,
    pattern: JtjPattern,
    symbolic: SymbolicLdl,
    numeric: LdlNumeric,
    values: Vec<f64>,
    jtr: Vec<f64>,
    grad: Vec<f64>,
    scratch: JtjScratch,
    entries: Vec<(usize, f64)>,
}

impl SparseProbe {
    /// Analyzes the problem: `JᵀJ` pattern, minimum-degree ordering and
    /// symbolic LDLᵀ, plus zeroed numeric buffers.
    pub fn new(problem: Problem) -> Self {
        let structure = problem.structure();
        let mut rows: Vec<Vec<usize>> = Vec::new();
        rows.extend(structure.equality_vars.iter().cloned());
        rows.extend(structure.inequality_vars.iter().cloned());
        let pattern = JtjPattern::new(problem.num_vars, rows);
        let (row_ptr, col_idx) = pattern.pattern();
        let symbolic = SymbolicLdl::analyze(problem.num_vars, row_ptr, col_idx);
        let numeric = symbolic.numeric();
        let values = pattern.values_buffer();
        let n = problem.num_vars;
        SparseProbe {
            problem,
            structure,
            pattern,
            symbolic,
            numeric,
            values,
            jtr: vec![0.0; n],
            grad: vec![0.0; n],
            scratch: JtjScratch::default(),
            entries: Vec::new(),
        }
    }

    /// The problem under measurement.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Stored entries of the Jacobian pattern.
    pub fn nnz_jacobian(&self) -> usize {
        self.pattern.jacobian_nnz()
    }

    /// Stored entries of the `JᵀJ` lower triangle.
    pub fn nnz_jtj(&self) -> usize {
        self.pattern.nnz()
    }

    /// Entries of the LDLᵀ factor (unit diagonal included).
    pub fn nnz_factor(&self) -> usize {
        self.symbolic.nnz_factor()
    }

    /// One sparse LM iteration at `x` with damping `lambda`: residual pass
    /// scattering into `JᵀJ`/`Jᵀr`, damped numeric factor, triangular
    /// solves. Returns a checksum of the step so the work cannot be
    /// optimized away.
    pub fn iteration(&mut self, x: &[f64], lambda: f64) -> f64 {
        let SparseProbe {
            problem,
            structure,
            pattern,
            symbolic,
            numeric,
            values,
            jtr,
            grad,
            scratch,
            entries,
        } = self;
        values.fill(0.0);
        jtr.fill(0.0);
        let mut row = 0;
        for (eq, vars) in problem.equalities.iter().zip(&structure.equality_vars) {
            let r = eq.eval(x);
            for &v in vars.iter() {
                grad[v] = 0.0;
            }
            eq.add_gradient(x, grad, 1.0);
            entries.clear();
            for &v in vars.iter() {
                if grad[v] != 0.0 {
                    entries.push((v, grad[v]));
                }
            }
            pattern.accumulate_row(row, entries, values, scratch);
            for &(i, g) in entries.iter() {
                jtr[i] += g * r;
            }
            row += 1;
        }
        for (ineq, vars) in problem.inequalities.iter().zip(&structure.inequality_vars) {
            let value = ineq.eval(x);
            if value < 0.0 {
                for &v in vars.iter() {
                    grad[v] = 0.0;
                }
                ineq.add_gradient(x, grad, -1.0);
                entries.clear();
                for &v in vars.iter() {
                    if grad[v] != 0.0 {
                        entries.push((v, grad[v]));
                    }
                }
                pattern.accumulate_row(row, entries, values, scratch);
                for &(i, g) in entries.iter() {
                    jtr[i] += g * (-value);
                }
            }
            row += 1;
        }
        let diag = pattern.diag_positions();
        let diag_add: Vec<f64> = (0..problem.num_vars)
            .map(|i| lambda * (1.0 + values[diag[i]]))
            .collect();
        assert!(symbolic.factor(values, &diag_add, numeric));
        let mut step = jtr.clone();
        symbolic.solve(numeric, &mut step);
        step.iter().sum()
    }
}

/// One dense LM iteration the way the pre-sparse back-end computed it:
/// dense `m×n` Jacobian, dense transpose, dense `JᵀJ`, `O(n³)` solve.
/// Returns a checksum of the step.
///
/// # Panics
///
/// Panics if the damped normal system is singular (it never is for
/// `λ > 0`).
pub fn dense_iteration(problem: &Problem, x: &[f64], lambda: f64) -> f64 {
    let n = problem.num_vars;
    let m = problem.equalities.len() + problem.inequalities.len();
    let mut jacobian = Matrix::zeros(m, n);
    let mut residuals = vec![0.0; m];
    let mut grad = vec![0.0; n];
    let mut row = 0;
    for eq in &problem.equalities {
        residuals[row] = eq.eval(x);
        grad.fill(0.0);
        eq.add_gradient(x, &mut grad, 1.0);
        for (col, &g) in grad.iter().enumerate() {
            if g != 0.0 {
                jacobian.set(row, col, g);
            }
        }
        row += 1;
    }
    for ineq in &problem.inequalities {
        let value = ineq.eval(x);
        if value < 0.0 {
            residuals[row] = -value;
            grad.fill(0.0);
            ineq.add_gradient(x, &mut grad, -1.0);
            for (col, &g) in grad.iter().enumerate() {
                if g != 0.0 {
                    jacobian.set(row, col, g);
                }
            }
        }
        row += 1;
    }
    let jt = jacobian.transpose();
    let mut jtj = &jt * &jacobian;
    for i in 0..n {
        let d = jtj.get(i, i);
        jtj.add_to(i, i, lambda * (1.0 + d));
    }
    let jtr = jt.mul_vec(&Vector::from_slice(&residuals));
    let step = jtj.solve(&jtr).expect("damped system is PD");
    (0..n).map(|i| step[i]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_and_dense_probes_compute_the_same_step() {
        use polyinv_qcqp::QuadraticForm;
        // A small synthetic system keeps this fast in debug mode; the
        // at-scale equivalence is covered by the lm/arith property tests.
        let mut problem = Problem::new(6);
        for i in 0..5 {
            problem.equalities.push(QuadraticForm {
                constant: -1.0 - i as f64,
                linear: vec![(i, 2.0)],
                quadratic: vec![(i, i + 1, 0.5)],
            });
        }
        problem.inequalities.push(QuadraticForm {
            constant: -10.0,
            linear: vec![(3, 1.0)],
            quadratic: Vec::new(),
        });
        let x = vec![0.05; 6];
        let mut probe = SparseProbe::new(problem);
        let sparse = probe.iteration(&x, 1e-3);
        let dense = dense_iteration(probe.problem(), &x, 1e-3);
        assert!(
            (sparse - dense).abs() < 1e-6 * (1.0 + dense.abs()),
            "checksum mismatch: sparse {sparse} vs dense {dense}"
        );
        assert!(probe.nnz_jacobian() > 0);
        assert!(probe.nnz_factor() >= 6);
    }
}
