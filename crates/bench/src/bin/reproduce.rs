//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! reproduce [table2|table3|ablations|baseline|all] [--solve]
//! ```
//!
//! Without `--solve` only the reduction (Steps 1–3) is run and the table
//! reports `|V|`, `|S|` and the per-stage generation times (template
//! instantiation, constraint pairs, Putinar reduction) next to the paper's
//! numbers. With `--solve`, a weak-synthesis attempt (Step 4) is made for
//! every row whose generated system is small enough for the local solver
//! (see EXPERIMENTS.md for the recorded outcomes).

use std::time::Instant;

use polyinv::prelude::*;
use polyinv_api::ApiError;
use polyinv_bench::{baseline_status, engine_for_tables, format_table, options_for, run_row_on};
use polyinv_farkas::FarkasBaseline;
use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let solve = args.iter().any(|a| a == "--solve");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    match what.as_str() {
        "table2" => table2(solve),
        "table3" => table3(solve),
        "ablations" => ablations(),
        "baseline" => baseline(),
        "all" => {
            table2(solve);
            table3(solve);
            ablations();
            baseline();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected table2|table3|ablations|baseline|all"
            );
            std::process::exit(1);
        }
    }
}

fn table2(solve: bool) {
    let engine = engine_for_tables();
    let rows: Vec<_> = polyinv_benchmarks::table2()
        .iter()
        .map(|b| {
            // Large systems are generated but not solved by default.
            let solve_this = solve && b.paper.system_size <= 6000;
            run_row_on(&engine, b, solve_this)
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Table 2 — non-recursive benchmarks (Rodríguez-Carbonell)",
            &rows
        )
    );
}

fn table3(solve: bool) {
    let engine = engine_for_tables();
    let rows: Vec<_> = polyinv_benchmarks::table3()
        .iter()
        .map(|b| {
            let solve_this = solve && b.paper.system_size <= 6000;
            run_row_on(&engine, b, solve_this)
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Table 3 — recursive and reinforcement-learning benchmarks",
            &rows
        )
    );
}

/// Ablations called out in the paper: the technical parameter ϒ (Remark 3),
/// the SOS encoding, and the bounded-reals augmentation (Remark 5),
/// measured on the running example.
fn ablations() {
    println!("## Ablations (running example, Figure 2)");
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    println!(
        "{:<34} {:>10} {:>10} {:>12}",
        "configuration", "|S|", "unknowns", "gen-time"
    );
    let report = |name: &str, options: SynthesisOptions| {
        let start = Instant::now();
        let generated = polyinv_constraints::generate(&program, &pre, &options);
        println!(
            "{:<34} {:>10} {:>10} {:>10.3}s",
            name,
            generated.size(),
            generated.system.num_unknowns(),
            start.elapsed().as_secs_f64()
        );
    };
    for upsilon in [0, 2, 4] {
        report(
            &format!("Cholesky, d=2, upsilon={upsilon}"),
            SynthesisOptions::default().with_upsilon(upsilon),
        );
    }
    report(
        "Gram, d=2, upsilon=2",
        SynthesisOptions::default().with_encoding(SosEncoding::Gram),
    );
    report(
        "Cholesky + bounded reals (c=1000)",
        SynthesisOptions::default().with_bounded_reals(polyinv_arith::Rational::from_int(1000)),
    );
    report(
        "Cholesky, d=1 (linear templates)",
        SynthesisOptions::default().with_degree(1),
    );
    println!();
}

/// The Table-1 comparison against the Colón et al. 2003 baseline: the
/// baseline handles the linear benchmarks but rejects every benchmark that
/// needs polynomial reasoning. Baseline inapplicability flows through the
/// unified [`ApiError`] story of `polyinv-api`.
fn baseline() {
    println!("## Baseline comparison (Colón et al. 2003, Farkas' lemma)");
    println!(
        "{:<26} {:>14} {:>40}",
        "benchmark", "putinar |S|", "baseline status"
    );
    for benchmark in polyinv_benchmarks::table2() {
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let baseline = FarkasBaseline::default();
        let putinar = polyinv_constraints::generate(&program, &pre, &options_for(&benchmark));
        let outcome = baseline
            .generate(&program, &pre)
            .map(|system| system.size())
            .map_err(ApiError::from);
        println!(
            "{:<26} {:>14} {:>40}",
            benchmark.name,
            putinar.size(),
            baseline_status(outcome)
        );
    }
    println!();
}
