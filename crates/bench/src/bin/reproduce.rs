//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! reproduce [table2|table3|ablations|baseline|all] [--solve] [--solve-cap SECONDS]
//!           [--validate] [--json [PATH]]
//! ```
//!
//! Without `--solve` only the reduction (Steps 1–3) is run and the table
//! reports `|V|`, `|S|` and the per-stage generation times (template
//! instantiation, constraint pairs, Putinar reduction) next to the paper's
//! numbers. With `--solve`, a weak-synthesis attempt (Step 4) is made for
//! **every** row under a per-row wall-clock budget (default 120 s, override
//! with `--solve-cap SECONDS`, `0` = unbudgeted); the old hard paper-size
//! skip is gone — rows the budget cannot certify report `failed` with real
//! solver statistics (see EXPERIMENTS.md for the recorded outcomes).
//!
//! With `--validate`, every row's paper target assertion is checked against
//! ≥ 1000 seeded interpreter traces (the fast, always-on soundness gate on
//! the Table 2/3 encodings). Combined with `--solve`, each solved row's
//! synthesized invariant additionally goes through trace falsification and
//! the exact-rational inductiveness re-check. Any violation makes the
//! process exit non-zero — CI runs the `table2 --validate` gate.
//!
//! With `--json`, the measured rows are additionally written as a
//! machine-readable snapshot (default `BENCH_3.json`, override with
//! `--json PATH`): per benchmark `|S|`, unknowns, the per-stage timing
//! breakdown, and — under `--solve` — an explicit `solve` block on every
//! row: status `synthesized`/`failed`/`skipped`, a machine-readable reason
//! for skips and failures, the orchestrator ladder history, and the solver
//! statistics of attempted rows (iterations, restarts, nnz(J), nnz(L),
//! factor/solve wall-clock split). This is the file the perf trajectory
//! tracks across PRs; CI regenerates it for Table 2 with `--solve` and
//! gates on the synthesized-row count.

use std::path::PathBuf;
use std::time::Instant;

use polyinv::prelude::*;
use polyinv_api::ApiError;
use polyinv_bench::{
    baseline_status, engine_for_tables, format_table, format_validation, options_for, run_row_full,
    solve_policy_with_budget, write_bench_json, RowResult, DEFAULT_SOLVE_BUDGET_SECONDS,
};
use polyinv_farkas::FarkasBaseline;
use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let validate = args.iter().any(|a| a == "--validate");
    let solve = args.iter().any(|a| a == "--solve");
    let solve_cap_pos = args.iter().position(|a| a == "--solve-cap");
    let budget = match solve_cap_pos {
        Some(pos) => match args.get(pos + 1).and_then(|v| v.parse::<f64>().ok()) {
            Some(seconds) if seconds.is_finite() && seconds >= 0.0 => seconds,
            _ => {
                eprintln!("--solve-cap needs a non-negative number of seconds (0 = unbudgeted)");
                std::process::exit(1);
            }
        },
        None => DEFAULT_SOLVE_BUDGET_SECONDS,
    };
    let json_value_pos = args.iter().position(|a| a == "--json").and_then(|pos| {
        args.get(pos + 1)
            .filter(|next| !next.starts_with("--") && !is_experiment(next))
            .map(|_| pos + 1)
    });
    let json_out = args.iter().any(|a| a == "--json").then(|| {
        json_value_pos
            .map(|pos| PathBuf::from(&args[pos]))
            .unwrap_or_else(|| PathBuf::from("BENCH_3.json"))
    });
    // Positional arguments: at most one experiment name; anything else is a
    // usage error (exit 1), as before.
    let solve_cap_value_pos = solve_cap_pos.map(|pos| pos + 1);
    let positionals: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(index, arg)| {
            !arg.starts_with("--")
                && Some(*index) != json_value_pos
                && Some(*index) != solve_cap_value_pos
        })
        .map(|(_, arg)| arg)
        .collect();
    let what = match positionals.as_slice() {
        [] => "all".to_string(),
        [only] => (*only).clone(),
        _ => {
            eprintln!("expected at most one experiment, got {positionals:?}");
            std::process::exit(1);
        }
    };

    let mut tables: Vec<(&str, Vec<RowResult>)> = Vec::new();
    match what.as_str() {
        "table2" => tables.push(("table2", table2(solve, validate, budget))),
        "table3" => tables.push(("table3", table3(solve, validate, budget))),
        "ablations" => ablations(),
        "baseline" => baseline(),
        "all" => {
            tables.push(("table2", table2(solve, validate, budget)));
            tables.push(("table3", table3(solve, validate, budget)));
            ablations();
            baseline();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected table2|table3|ablations|baseline|all"
            );
            std::process::exit(1);
        }
    }

    let validation_failures: Vec<&str> = tables
        .iter()
        .flat_map(|(_, rows)| rows.iter())
        .filter(|row| row.validate.as_ref().is_some_and(|v| !v.passed()))
        .map(|row| row.name.as_str())
        .collect();

    if let Some(path) = json_out {
        // Only table experiments produce rows; refuse to overwrite a
        // snapshot with an empty one (e.g. `ablations --json`).
        if tables.iter().all(|(_, rows)| rows.is_empty()) {
            eprintln!(
                "--json needs a row-producing experiment (table2|table3|all); \
                 refusing to write an empty snapshot"
            );
            std::process::exit(1);
        }
        let borrowed: Vec<(&str, &[RowResult])> = tables
            .iter()
            .map(|(name, rows)| (*name, rows.as_slice()))
            .collect();
        if let Err(error) = write_bench_json(&path, &borrowed) {
            eprintln!("{error}");
            std::process::exit(2);
        }
        eprintln!("wrote {}", path.display());
    }

    if !validation_failures.is_empty() {
        eprintln!("validation FAILED for: {}", validation_failures.join(", "));
        std::process::exit(1);
    }
}

fn is_experiment(arg: &str) -> bool {
    matches!(arg, "table2" | "table3" | "ablations" | "baseline" | "all")
}

fn table2(solve: bool, validate: bool, budget: f64) -> Vec<RowResult> {
    let engine = engine_for_tables();
    let rows: Vec<_> = polyinv_benchmarks::table2()
        .iter()
        .map(|b| {
            // Every row is attempted under the per-row wall-clock budget;
            // there is no default size skip any more.
            run_row_full(
                &engine,
                b,
                solve_policy_with_budget(b, solve, budget, None),
                validate,
            )
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Table 2 — non-recursive benchmarks (Rodríguez-Carbonell)",
            &rows
        )
    );
    if validate {
        println!("{}", format_validation("Table 2", &rows));
    }
    rows
}

fn table3(solve: bool, validate: bool, budget: f64) -> Vec<RowResult> {
    let engine = engine_for_tables();
    let rows: Vec<_> = polyinv_benchmarks::table3()
        .iter()
        .map(|b| {
            run_row_full(
                &engine,
                b,
                solve_policy_with_budget(b, solve, budget, None),
                validate,
            )
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Table 3 — recursive and reinforcement-learning benchmarks",
            &rows
        )
    );
    if validate {
        println!("{}", format_validation("Table 3", &rows));
    }
    rows
}

/// Ablations called out in the paper: the technical parameter ϒ (Remark 3),
/// the SOS encoding, and the bounded-reals augmentation (Remark 5),
/// measured on the running example.
fn ablations() {
    println!("## Ablations (running example, Figure 2)");
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    println!(
        "{:<34} {:>10} {:>10} {:>12}",
        "configuration", "|S|", "unknowns", "gen-time"
    );
    let report = |name: &str, options: SynthesisOptions| {
        let start = Instant::now();
        let generated = polyinv_constraints::generate(&program, &pre, &options)
            .expect("ablation programs are call-free");
        println!(
            "{:<34} {:>10} {:>10} {:>10.3}s",
            name,
            generated.size(),
            generated.system.num_unknowns(),
            start.elapsed().as_secs_f64()
        );
    };
    for upsilon in [0, 2, 4] {
        report(
            &format!("Cholesky, d=2, upsilon={upsilon}"),
            SynthesisOptions::default().with_upsilon(upsilon),
        );
    }
    report(
        "Gram, d=2, upsilon=2",
        SynthesisOptions::default().with_encoding(SosEncoding::Gram),
    );
    report(
        "Cholesky + bounded reals (c=1000)",
        SynthesisOptions::default().with_bounded_reals(polyinv_arith::Rational::from_int(1000)),
    );
    report(
        "Cholesky, d=1 (linear templates)",
        SynthesisOptions::default().with_degree(1),
    );
    println!();
}

/// The Table-1 comparison against the Colón et al. 2003 baseline: the
/// baseline handles the linear benchmarks but rejects every benchmark that
/// needs polynomial reasoning. Baseline inapplicability flows through the
/// unified [`ApiError`] story of `polyinv-api`.
fn baseline() {
    println!("## Baseline comparison (Colón et al. 2003, Farkas' lemma)");
    println!(
        "{:<26} {:>14} {:>40}",
        "benchmark", "putinar |S|", "baseline status"
    );
    for benchmark in polyinv_benchmarks::table2() {
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let baseline = FarkasBaseline::default();
        let putinar = polyinv_constraints::generate(&program, &pre, &options_for(&benchmark))
            .expect("benchmark programs generate");
        let outcome = baseline
            .generate(&program, &pre)
            .map(|system| system.size())
            .map_err(ApiError::from);
        println!(
            "{:<26} {:>14} {:>40}",
            benchmark.name,
            putinar.size(),
            baseline_status(outcome)
        );
    }
    println!();
}
