//! `polyinv` — the command-line front end over the Engine API.
//!
//! ```text
//! polyinv parse <file> [--json]
//! polyinv synth <file> [assertion options] [reduction options] [--json]
//! polyinv check <file> --invariant <text> ... [--json]
//! polyinv validate <file> [assertion options] [--trace-runs N] [--json]
//! polyinv fuzz [--seed N] [--count N] [--artifacts DIR] [--json]
//! polyinv batch <requests.json> [--json]
//! polyinv serve [--addr HOST:PORT] [--workers N] [--queue-depth N] ...
//! ```
//!
//! Every subcommand supports `--json` (machine-readable reports on stdout)
//! and exits with a meaningful code:
//!
//! * `0` — success (parsed / synthesized / certified / all batch items ok);
//! * `1` — the operation ran but the outcome is negative (solver did not
//!   converge, a pair was not certified, a batch item failed);
//! * `2` — usage error (unknown subcommand or flag, missing argument);
//! * `3` — invalid input (unparseable program or assertion, unknown
//!   back-end or label, bad batch file).

use std::process::ExitCode;

use polyinv_api::{
    ApiError, AssertionSpec, Engine, Json, Mode, ReportStatus, SynthesisReport, SynthesisRequest,
};

const USAGE: &str = "\
polyinv — polynomial invariant generation for non-deterministic recursive programs

USAGE:
    polyinv <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    parse <file>              Parse and resolve a program, print its shape
    synth <file>              Synthesize an inductive invariant (weak mode)
    check <file>              Certify a given candidate invariant
    validate <file>           Weak synthesis + trace falsification + exact re-check
    fuzz                      Generate seeded programs and attack the soundness claim
    batch <requests.json>     Run a JSON array of requests in parallel
    serve                     Serve the Engine over HTTP (see SERVE OPTIONS)

ASSERTION OPTIONS (synth: targets; check: candidate conjuncts):
    --target <text>           Assertion at the exit label (synonym: --invariant)
    --target-at <idx> <text>  Assertion at label index <idx> of the main function
    --post <func> <text>      Post-condition conjunct for <func> (check, recursive)

REDUCTION OPTIONS:
    --degree <n>              Template degree d          (default 2)
    --size <n>                Conjuncts per label n      (default 1)
    --upsilon <n>             Multiplier degree bound ϒ  (default 2)
    --encoding <name>         cholesky | gram            (default cholesky)
    --backend <name>          lm | penalty               (default lm)
    --no-presolve             Skip the affine presolve pass before Step 4
    --strong                  Enumerate a representative set instead (synth)
    --attempts <n>            Multi-start attempts for --strong
    --generate-only           Steps 1-3 only: report |S|, unknowns, timings
    --solve-budget <secs>     Wall-clock budget for the whole solve (0 = none)

SERVE OPTIONS:
    --addr <host:port>        Bind address                     (default 127.0.0.1:8924)
    --workers <n>             Worker threads, 0 = per core     (default 0)
    --queue-depth <n>         Pending-request cap before 429   (default 64)
    --cache-capacity <n>      Result-cache entries             (default 256)
    --max-body-bytes <n>      Request body cap                 (default 1048576)
    --read-timeout-secs <n>   Socket read timeout              (default 10)
    --write-timeout-secs <n>  Socket write timeout             (default 10)

VALIDATION OPTIONS (validate, fuzz):
    --seed <n>                Base seed (fuzz: programs; both: traces)  (default 0)
    --count <n>               Fuzzed program count (fuzz)               (default 100)
    --trace-runs <n>          Valid traces per invariant                (default 1000)
    --artifacts <dir>         Write failing fuzz cases as JSON into <dir>

OUTPUT:
    --json                    Machine-readable JSON on stdout
    --canonical               JSON with timings/thread counts normalized out —
                              byte-identical across machines and POLYINV_THREADS

EXIT CODES:
    0 success · 1 negative outcome · 2 usage error · 3 invalid input
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!();
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Api(error)) => {
            eprintln!("error: {error}");
            ExitCode::from(3)
        }
    }
}

enum CliError {
    Usage(String),
    Api(ApiError),
}

impl From<ApiError> for CliError {
    fn from(error: ApiError) -> Self {
        CliError::Api(error)
    }
}

fn usage(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(subcommand) = args.first() else {
        return Err(usage("missing subcommand"));
    };
    match subcommand.as_str() {
        "parse" => cmd_parse(&args[1..]),
        "synth" => cmd_synth(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "fuzz" => cmd_fuzz(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(usage(format!("unknown subcommand `{other}`"))),
    }
}

/// The flags shared by `synth` and `check`.
struct CommonArgs {
    file: Option<String>,
    json: bool,
    canonical: bool,
    solve_budget: Option<f64>,
    assertions: Vec<AssertionSpec>,
    degree: Option<u32>,
    size: Option<usize>,
    upsilon: Option<u32>,
    encoding: Option<String>,
    backend: Option<String>,
    strong: bool,
    attempts: Option<usize>,
    generate_only: bool,
    no_presolve: bool,
    seed: Option<u64>,
    count: Option<usize>,
    trace_runs: Option<usize>,
    artifacts: Option<String>,
}

fn parse_common(args: &[String]) -> Result<CommonArgs, CliError> {
    let mut parsed = CommonArgs {
        file: None,
        json: false,
        canonical: false,
        solve_budget: None,
        assertions: Vec::new(),
        degree: None,
        size: None,
        upsilon: None,
        encoding: None,
        backend: None,
        strong: false,
        attempts: None,
        generate_only: false,
        no_presolve: false,
        seed: None,
        count: None,
        trace_runs: None,
        artifacts: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> Result<String, CliError> {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--canonical" => parsed.canonical = true,
            "--solve-budget" => parsed.solve_budget = Some(parse_number(arg, &value(arg)?)?),
            "--strong" => parsed.strong = true,
            "--generate-only" => parsed.generate_only = true,
            "--no-presolve" => parsed.no_presolve = true,
            "--target" | "--invariant" => {
                let text = value(arg)?;
                parsed.assertions.push(AssertionSpec::at_exit(text));
            }
            "--target-at" | "--invariant-at" => {
                let index = parse_number::<usize>(arg, &value(arg)?)?;
                let text = value(arg)?;
                parsed.assertions.push(AssertionSpec::at(index, text));
            }
            "--post" => {
                let function = value(arg)?;
                let text = value(arg)?;
                parsed
                    .assertions
                    .push(AssertionSpec::postcondition(function, text));
            }
            "--degree" => parsed.degree = Some(parse_number(arg, &value(arg)?)?),
            "--size" => parsed.size = Some(parse_number(arg, &value(arg)?)?),
            "--upsilon" => parsed.upsilon = Some(parse_number(arg, &value(arg)?)?),
            "--encoding" => parsed.encoding = Some(value(arg)?),
            "--backend" => parsed.backend = Some(value(arg)?),
            "--attempts" => parsed.attempts = Some(parse_number(arg, &value(arg)?)?),
            "--seed" => parsed.seed = Some(parse_number(arg, &value(arg)?)?),
            "--count" => parsed.count = Some(parse_number(arg, &value(arg)?)?),
            "--trace-runs" => parsed.trace_runs = Some(parse_number(arg, &value(arg)?)?),
            "--artifacts" => parsed.artifacts = Some(value(arg)?),
            other if other.starts_with("--") => {
                return Err(usage(format!("unknown flag `{other}`")));
            }
            _ => {
                if parsed.file.replace(arg.clone()).is_some() {
                    return Err(usage("more than one input file"));
                }
            }
        }
    }
    Ok(parsed)
}

fn parse_number<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, CliError> {
    text.parse()
        .map_err(|_| usage(format!("{flag}: `{text}` is not a valid number")))
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|error| {
        CliError::Api(ApiError::Io {
            path: path.to_string(),
            message: error.to_string(),
        })
    })
}

fn build_request(
    parsed: &CommonArgs,
    mode: Mode,
    source: String,
) -> Result<SynthesisRequest, CliError> {
    let mut request = SynthesisRequest::new(mode, source);
    request.assertions = parsed.assertions.clone();
    request.backend = parsed.backend.clone();
    request.attempts = parsed.attempts;
    if let Some(budget) = parsed.solve_budget {
        request = request.with_solve_budget(budget);
    }
    if let Some(degree) = parsed.degree {
        request.options.degree = degree;
    }
    if let Some(size) = parsed.size {
        request.options.size = size;
    }
    if let Some(upsilon) = parsed.upsilon {
        request.options.upsilon = upsilon;
    }
    if parsed.no_presolve {
        request.options.presolve = false;
    }
    if let Some(encoding) = &parsed.encoding {
        request.options.encoding = match encoding.as_str() {
            "cholesky" => polyinv_api::SosEncoding::Cholesky,
            "gram" => polyinv_api::SosEncoding::Gram,
            other => {
                return Err(usage(format!(
                    "--encoding: unknown encoding `{other}` (expected cholesky|gram)"
                )))
            }
        };
    }
    Ok(request)
}

fn cmd_parse(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_common(args)?;
    let path = parsed.file.ok_or_else(|| usage("parse needs a file"))?;
    let source = read_file(&path)?;
    let engine = Engine::new();
    let program = engine.parse_program(&source)?;
    if parsed.json {
        let functions: Vec<Json> = program
            .functions()
            .iter()
            .map(|function| {
                Json::object(vec![
                    ("name", Json::string(function.name())),
                    ("labels", Json::Number(function.labels().len() as f64)),
                    ("vars", Json::Number(function.vars().len() as f64)),
                ])
            })
            .collect();
        let doc = Json::object(vec![
            ("file", Json::string(path)),
            ("functions", Json::Array(functions)),
            ("recursive", Json::Bool(!program.is_simple())),
        ]);
        println!("{}", doc.pretty());
    } else {
        println!(
            "parsed `{path}`: {} function(s), {}",
            program.functions().len(),
            if program.is_simple() {
                "non-recursive"
            } else {
                "recursive"
            }
        );
        for function in program.functions() {
            println!(
                "  {}: {} labels, |V| = {}",
                function.name(),
                function.labels().len(),
                function.vars().len()
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_synth(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_common(args)?;
    let path = parsed
        .file
        .clone()
        .ok_or_else(|| usage("synth needs a file"))?;
    let source = read_file(&path)?;
    let mode = if parsed.generate_only {
        Mode::GenerateOnly
    } else if parsed.strong {
        Mode::Strong
    } else {
        Mode::Weak
    };
    let request = build_request(&parsed, mode, source)?.with_id(path);
    let engine = Engine::new();
    let report = engine.run(&request)?;
    emit_report(&report, parsed.json, parsed.canonical);
    Ok(exit_for(&report))
}

fn cmd_check(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_common(args)?;
    let path = parsed
        .file
        .clone()
        .ok_or_else(|| usage("check needs a file"))?;
    let source = read_file(&path)?;
    let request = build_request(&parsed, Mode::Check, source)?.with_id(path);
    let engine = Engine::new();
    let report = engine.run(&request)?;
    emit_report(&report, parsed.json, parsed.canonical);
    Ok(exit_for(&report))
}

/// The validation settings shared by `validate` and `fuzz`.
fn validation_config(parsed: &CommonArgs) -> polyinv_validate::ValidationConfig {
    let mut config = polyinv_validate::ValidationConfig::default();
    if let Some(runs) = parsed.trace_runs {
        config.trace.runs = runs;
    }
    if let Some(seed) = parsed.seed {
        config.trace.seed = seed;
    }
    config
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_common(args)?;
    let path = parsed
        .file
        .clone()
        .ok_or_else(|| usage("validate needs a file"))?;
    let source = read_file(&path)?;
    let request = build_request(&parsed, Mode::Weak, source)?.with_id(path);
    let config = validation_config(&parsed);
    let report = polyinv_validate::run_validated(&request, &config)?;
    emit_report(&report, parsed.json, parsed.canonical);
    let validated = report
        .validate
        .as_ref()
        .map(|record| record.passed)
        .unwrap_or(false);
    Ok(if report.status.is_success() && validated {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_fuzz(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_common(args)?;
    if parsed.file.is_some() {
        return Err(usage("fuzz takes no input file (programs are generated)"));
    }
    let mut config = polyinv_validate::FuzzConfig {
        validation: validation_config(&parsed),
        ..polyinv_validate::FuzzConfig::default()
    };
    if let Some(seed) = parsed.seed {
        config.seed = seed;
    }
    if let Some(count) = parsed.count {
        config.count = count;
    }
    if let Some(degree) = parsed.degree {
        config.options.degree = degree;
    }
    if let Some(size) = parsed.size {
        config.options.size = size;
    }
    if let Some(upsilon) = parsed.upsilon {
        config.options.upsilon = upsilon;
    }
    let summary = polyinv_validate::run_fuzz(&config);

    if let Some(dir) = &parsed.artifacts {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|error| {
            CliError::Api(ApiError::Io {
                path: dir.display().to_string(),
                message: error.to_string(),
            })
        })?;
        for case in summary.failures() {
            let path = dir.join(format!("fuzz-case-{}.json", case.index));
            let mut text = case.to_json().pretty();
            text.push('\n');
            std::fs::write(&path, text).map_err(|error| {
                CliError::Api(ApiError::Io {
                    path: path.display().to_string(),
                    message: error.to_string(),
                })
            })?;
        }
    }

    if parsed.json {
        println!("{}", summary.to_json().pretty());
    } else {
        println!(
            "fuzz: {} case(s) from seed {} — {} sound, {} unsolved, {} violation(s), {} round-trip, {} generation",
            summary.cases.len(),
            config.seed,
            summary.count("sound"),
            summary.count("unsolved"),
            summary.count("violation"),
            summary.count("round-trip-mismatch"),
            summary.count("generation-error"),
        );
        for case in summary.failures() {
            println!(
                "FAILURE case {} (seed {}): {}",
                case.index,
                case.seed,
                case.status.label()
            );
            println!("{}", case.source);
        }
    }
    Ok(if summary.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_batch(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_common(args)?;
    let path = parsed.file.ok_or_else(|| usage("batch needs a file"))?;
    let text = read_file(&path)?;
    let doc = Json::parse(&text).map_err(ApiError::from)?;
    let items = doc
        .as_array()
        .or_else(|| doc.get("requests").and_then(Json::as_array))
        .ok_or_else(|| {
            CliError::Api(ApiError::InvalidRequest {
                message: "batch file must be a JSON array of requests (or {\"requests\": [...]})"
                    .to_string(),
            })
        })?;
    let requests: Vec<SynthesisRequest> = items
        .iter()
        .map(SynthesisRequest::from_json)
        .collect::<Result<_, _>>()?;
    let engine = Engine::new();
    let outcomes = engine.run_batch(&requests);

    let mut all_ok = true;
    if parsed.json {
        let entries: Vec<Json> = outcomes
            .iter()
            .map(|outcome| match outcome {
                Ok(report) => {
                    all_ok &= report.status.is_success();
                    Json::object(vec![("ok", report.to_json())])
                }
                Err(error) => {
                    all_ok = false;
                    Json::object(vec![("err", error.to_json())])
                }
            })
            .collect();
        println!("{}", Json::Array(entries).pretty());
    } else {
        let (mut presolved, mut rows_before, mut rows_after) = (0usize, 0usize, 0usize);
        for (request, outcome) in requests.iter().zip(&outcomes) {
            match outcome {
                Ok(report) => {
                    all_ok &= report.status.is_success();
                    if let Some(record) = &report.presolve {
                        presolved += 1;
                        rows_before += record.size_before;
                        rows_after += record.size_after;
                    }
                    println!(
                        "{:<20} {:<13} {}",
                        display_id(&request.id),
                        report.status,
                        summary_line(report)
                    );
                }
                Err(error) => {
                    all_ok = false;
                    println!("{:<20} error         {error}", display_id(&request.id));
                }
            }
        }
        if presolved > 0 && rows_before > 0 {
            println!(
                "presolve: {presolved} request(s), |S| {rows_before} -> {rows_after} ({:.1}% dropped)",
                100.0 * (rows_before - rows_after) as f64 / rows_before as f64
            );
        }
    }
    Ok(if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `polyinv serve`: run the HTTP service until `POST /shutdown`.
fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    let mut config = polyinv_server::ServerConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> Result<String, CliError> {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value(arg)?,
            "--workers" => config.workers = parse_number(arg, &value(arg)?)?,
            "--queue-depth" => config.queue_depth = parse_number(arg, &value(arg)?)?,
            "--cache-capacity" => config.cache_capacity = parse_number(arg, &value(arg)?)?,
            "--max-body-bytes" => config.max_body_bytes = parse_number(arg, &value(arg)?)?,
            "--read-timeout-secs" => {
                config.read_timeout =
                    std::time::Duration::from_secs(parse_number(arg, &value(arg)?)?);
            }
            "--write-timeout-secs" => {
                config.write_timeout =
                    std::time::Duration::from_secs(parse_number(arg, &value(arg)?)?);
            }
            other => return Err(usage(format!("unknown serve flag `{other}`"))),
        }
    }
    if config.queue_depth == 0 {
        return Err(usage("--queue-depth must be positive"));
    }
    let server = polyinv_server::Server::bind(config.clone()).map_err(|error| {
        CliError::Api(ApiError::Io {
            path: config.addr.clone(),
            message: error.to_string(),
        })
    })?;
    eprintln!(
        "polyinv serve: listening on http://{} (POST /v1/synth · /v1/check · /v1/batch, \
         GET /healthz · /metrics, POST /shutdown to drain)",
        server.local_addr()
    );
    let summary = server.run();
    eprintln!("polyinv serve: {}", summary.summary_line());
    Ok(ExitCode::SUCCESS)
}

fn display_id(id: &str) -> &str {
    if id.is_empty() {
        "(unnamed)"
    } else {
        id
    }
}

fn summary_line(report: &SynthesisReport) -> String {
    match report.mode {
        Mode::Check => format!(
            "{}/{} pairs certified in {:.2}s",
            report.pairs_certified,
            report.pairs_total,
            report.total_seconds()
        ),
        _ => {
            let presolve = match &report.presolve {
                Some(record) => format!(
                    ", presolve |S| {} -> {}",
                    record.size_before, record.size_after
                ),
                None => String::new(),
            };
            format!(
                "|S| = {}, unknowns = {}{presolve}, {:.2}s",
                report.system_size,
                report.num_unknowns,
                report.total_seconds()
            )
        }
    }
}

fn exit_for(report: &SynthesisReport) -> ExitCode {
    if report.status.is_success() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn emit_report(report: &SynthesisReport, json: bool, canonical: bool) {
    if canonical {
        // The canonical form zeroes every timing and normalizes the worker
        // count, so two runs of the same request print byte-identical JSON
        // regardless of machine speed or POLYINV_THREADS.
        println!("{}", report.clone().canonical().to_json().pretty());
        return;
    }
    if json {
        println!("{}", report.to_json().pretty());
        return;
    }
    println!("status: {}", report.status);
    if !report.backend.is_empty() {
        println!("backend: {}", report.backend);
    }
    println!(
        "system: |S| = {}, unknowns = {}",
        report.system_size, report.num_unknowns
    );
    if let Some(presolve) = &report.presolve {
        println!(
            "presolve: |S| {} -> {}, unknowns {} -> {}, {} round(s)",
            presolve.size_before,
            presolve.size_after,
            presolve.unknowns_before,
            presolve.unknowns_after,
            presolve.rounds
        );
    }
    if report.mode == Mode::Check {
        println!(
            "certified: {}/{} constraint pairs",
            report.pairs_certified, report.pairs_total
        );
    }
    if report.status == ReportStatus::Failed {
        println!("violation: {:.3e}", report.violation);
    }
    if !report.timings.is_empty() {
        let rendered: Vec<String> = report
            .timings
            .iter()
            .map(|(stage, secs)| format!("{stage} {secs:.3}s"))
            .collect();
        println!("timings: {}", rendered.join(", "));
    }
    if let Some(solver) = &report.solver {
        println!(
            "solver: {} iteration(s) over {} restart(s), nnz(J) = {}, nnz(L) = {}, \
             factor {:.3}s, solve {:.3}s",
            solver.iterations,
            solver.restarts,
            solver.nnz_jacobian,
            solver.nnz_factor,
            solver.factor_seconds,
            solver.solve_seconds,
        );
    }
    if let Some(orchestrator) = &report.orchestrator {
        println!(
            "orchestrator: {} attempt(s) over {} rung(s), reached ϒ = {}, won by `{}`, \
             certificate {} ({:.3e})",
            orchestrator.attempts,
            orchestrator.rungs_tried,
            orchestrator.rung_reached,
            orchestrator.winning_backend,
            if orchestrator.certified {
                "passed"
            } else {
                "failed"
            },
            orchestrator.certificate_violation,
        );
    }
    if let Some(record) = &report.validate {
        println!(
            "validation: {} — {} trace(s), {} state(s), {} violation(s){}",
            if record.passed { "passed" } else { "FAILED" },
            record.trace_runs,
            record.trace_states,
            record.trace_violations,
            match &record.exact {
                Some(exact) => format!(
                    ", exact worst {} ({})",
                    exact.worst_violation,
                    if exact.passed { "ok" } else { "over tolerance" }
                ),
                None => String::new(),
            }
        );
    }
    if !report.invariants.is_empty() {
        println!("invariants:");
        for line in &report.invariants {
            println!("  {line}");
        }
    }
    if !report.postconditions.is_empty() {
        println!("postconditions:");
        for line in &report.postconditions {
            println!("  {line}");
        }
    }
    for line in &report.diagnostics {
        println!("note: {line}");
    }
}
