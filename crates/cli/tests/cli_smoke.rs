//! Smoke tests driving the compiled `polyinv` binary end-to-end via
//! `std::process::Command`, on the program sources under `programs/`.

use std::path::PathBuf;
use std::process::{Command, Output};

use polyinv_api::Json;

fn polyinv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_polyinv"))
        .args(args)
        .output()
        .expect("the polyinv binary runs")
}

fn program(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../programs")
        .join(name);
    path.to_str().expect("utf-8 path").to_string()
}

fn stdout_json(output: &Output) -> Json {
    let text = String::from_utf8(output.stdout.clone()).expect("utf-8 stdout");
    Json::parse(&text).unwrap_or_else(|error| panic!("invalid JSON output: {error}\n{text}"))
}

#[test]
fn parse_reports_the_program_shape_as_json() {
    let output = polyinv(&["parse", &program("running_example.poly"), "--json"]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    let functions = doc.get("functions").unwrap().as_array().unwrap();
    assert_eq!(functions.len(), 1);
    assert_eq!(functions[0].get("name").unwrap().as_str(), Some("sum"));
    assert_eq!(functions[0].get("labels").unwrap().as_usize(), Some(9));
    assert_eq!(doc.get("recursive").unwrap().as_bool(), Some(false));
}

#[test]
fn synth_generate_only_emits_a_machine_readable_report() {
    let output = polyinv(&[
        "synth",
        &program("running_example.poly"),
        "--generate-only",
        "--json",
    ]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("generated"));
    assert!(doc.get("system_size").unwrap().as_usize().unwrap() > 500);
    // Per-stage timings are present for every generation stage.
    let timings = doc.get("timings").unwrap().as_object().unwrap();
    let stages: Vec<&str> = timings.iter().map(|(stage, _)| stage.as_str()).collect();
    assert_eq!(stages, vec!["templates", "pairs", "reduction"]);
}

#[test]
fn parse_errors_exit_3_with_a_span() {
    let dir = std::env::temp_dir().join("polyinv-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.poly");
    std::fs::write(&path, "inc(x) {\n    x : 1\n}\n").unwrap();
    let output = polyinv(&["parse", path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(3));
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    let output = polyinv(&["synth", &program("inc.poly"), "--loqo"]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
    // And so do missing files, but with the input-error code.
    let output = polyinv(&["synth", "no-such-file.poly"]);
    assert_eq!(output.status.code(), Some(3));
}

#[test]
fn check_certifies_the_trivial_invariant() {
    let output = polyinv(&[
        "check",
        &program("inc.poly"),
        "--invariant",
        "1 > 0",
        "--json",
    ]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("certified"));
    let total = doc.get("pairs_total").unwrap().as_usize().unwrap();
    assert_eq!(doc.get("pairs_certified").unwrap().as_usize(), Some(total));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "drives a full weak synthesis; run with `cargo test --release`"
)]
fn synth_closes_the_bounded_counter_and_batch_runs_it_four_times() {
    // Full weak synthesis through the binary.
    let output = polyinv(&[
        "synth",
        &program("inc.poly"),
        "--target",
        "x + 1 > 0",
        "--degree",
        "1",
        "--json",
    ]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("synthesized"));
    assert!(!doc
        .get("invariants")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
    assert!(doc.get("timings").unwrap().get("solve").is_some());
    // Presolve ran and never grows the system.
    let presolve = doc.get("presolve").expect("weak reports carry presolve");
    let before = presolve.get("size_before").unwrap().as_usize().unwrap();
    let after = presolve.get("size_after").unwrap().as_usize().unwrap();
    assert!(after <= before, "presolve grew |S|: {before} -> {after}");

    // `--no-presolve` drops the block and still synthesizes.
    let output = polyinv(&[
        "synth",
        &program("inc.poly"),
        "--target",
        "x + 1 > 0",
        "--degree",
        "1",
        "--no-presolve",
        "--json",
    ]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("synthesized"));
    assert!(doc.get("presolve").is_none() || doc.get("presolve") == Some(&Json::Null));

    // The same request four times over, through `polyinv batch`.
    let source = std::fs::read_to_string(program("inc.poly")).unwrap();
    let requests: Vec<Json> = (0..4)
        .map(|k| {
            polyinv_api::SynthesisRequest::weak(source.clone())
                .with_id(format!("inc-{k}"))
                .with_degree(1)
                .with_target("x + 1 > 0")
                .to_json()
        })
        .collect();
    let dir = std::env::temp_dir().join("polyinv-cli-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let batch_path = dir.join("batch.json");
    std::fs::write(&batch_path, Json::Array(requests).to_string()).unwrap();
    let output = polyinv(&["batch", batch_path.to_str().unwrap(), "--json"]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    let entries = doc.as_array().unwrap();
    assert_eq!(entries.len(), 4);
    for (k, entry) in entries.iter().enumerate() {
        let report = entry.get("ok").expect("every entry succeeded");
        assert_eq!(
            report.get("id").unwrap().as_str(),
            Some(format!("inc-{k}").as_str())
        );
        assert_eq!(report.get("status").unwrap().as_str(), Some("synthesized"));
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "drives synthesis + validation; run with `cargo test --release`"
)]
fn validate_closes_and_validates_the_bounded_counter() {
    let output = polyinv(&[
        "validate",
        &program("inc.poly"),
        "--target",
        "x + 1 > 0",
        "--degree",
        "1",
        "--trace-runs",
        "300",
        "--json",
    ]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("synthesized"));
    let record = doc.get("validate").expect("validate block present");
    assert_eq!(record.get("passed").unwrap().as_bool(), Some(true));
    assert_eq!(record.get("trace_runs").unwrap().as_usize(), Some(300));
    assert_eq!(record.get("trace_violations").unwrap().as_usize(), Some(0));
    let exact = record.get("exact").expect("exact re-check ran");
    assert_eq!(exact.get("passed").unwrap().as_bool(), Some(true));
    assert!(exact
        .get("worst_violation")
        .unwrap()
        .as_str()
        .unwrap()
        .contains('/'));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "drives synthesis + validation; run with `cargo test --release`"
)]
fn fuzz_smoke_runs_clean_and_writes_artifacts_only_on_failure() {
    let dir = std::env::temp_dir().join("polyinv-cli-smoke-fuzz");
    let _ = std::fs::remove_dir_all(&dir);
    let output = polyinv(&[
        "fuzz",
        "--seed",
        "7",
        "--count",
        "5",
        "--trace-runs",
        "200",
        "--artifacts",
        dir.to_str().unwrap(),
        "--json",
    ]);
    assert!(output.status.success(), "exit: {:?}", output.status);
    let doc = stdout_json(&output);
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("polyinv-fuzz/v1"));
    assert_eq!(doc.get("passed").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("cases").unwrap().as_usize(), Some(5));
    assert!(doc.get("failures").unwrap().as_array().unwrap().is_empty());
    // No failures → no artifact files.
    let artifacts = std::fs::read_dir(&dir)
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert_eq!(artifacts, 0);
}

#[test]
fn fuzz_rejects_an_input_file_with_usage() {
    let output = polyinv(&["fuzz", &program("inc.poly")]);
    assert_eq!(output.status.code(), Some(2));
}
