//! The named stages of the synthesis pipeline.
//!
//! Each stage implements [`Stage`]: a pure function from its typed input to
//! its typed artifact, parameterized by the shared [`SynthesisContext`].
//! [`run_stage`] drives one stage and records its wall-clock time under the
//! stage's name, which is how per-stage breakdowns reach the benchmark
//! tables.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use polyinv_arith::Rational;
use polyinv_constraints::pairs::{generate_pairs, PairOptions};
use polyinv_constraints::template::TemplateSet;
use polyinv_constraints::{
    ConstraintError, Elimination, GeneratedSystem, PresolveOptions, PresolvedSystem,
    UnknownRegistry,
};
use polyinv_poly::UnknownId;
use polyinv_qcqp::{QcqpBackend, SolveStatus};

use super::artifacts::{instantiate_solution, ConstraintPairs, Solution, TemplateArtifact};
use super::context::{stage_names, SynthesisContext};
use crate::bridge::system_to_problem_with_fixed;

/// A named pipeline stage transforming `Input` into `Self::Output`.
pub trait Stage<Input> {
    /// The artifact this stage produces.
    type Output;

    /// The stable stage name used for timing entries and reports.
    fn name(&self) -> &'static str;

    /// Runs the stage.
    fn run(&self, ctx: &mut SynthesisContext<'_>, input: Input) -> Self::Output;
}

/// Runs one stage, recording its wall-clock time in the context.
pub fn run_stage<Input, S: Stage<Input>>(
    ctx: &mut SynthesisContext<'_>,
    stage: &S,
    input: Input,
) -> S::Output {
    let start = Instant::now();
    let output = stage.run(ctx, input);
    ctx.record(stage.name(), start.elapsed());
    output
}

/// Step 1: instantiate one invariant template per label (and, for recursive
/// programs, one post-condition template per function).
#[derive(Debug, Clone, Copy, Default)]
pub struct TemplateStage;

impl Stage<()> for TemplateStage {
    type Output = TemplateArtifact;

    fn name(&self) -> &'static str {
        stage_names::TEMPLATES
    }

    fn run(&self, ctx: &mut SynthesisContext<'_>, _input: ()) -> TemplateArtifact {
        let mut registry = UnknownRegistry::new();
        let templates = TemplateSet::build(
            ctx.program,
            &mut registry,
            ctx.options.degree,
            ctx.options.size,
            ctx.recursive,
        );
        let artifact = TemplateArtifact {
            templates,
            registry,
        };
        ctx.note(format!(
            "templates: {} label template(s), {} post-condition template(s), {} unknown(s)",
            artifact.num_invariant_templates(),
            artifact.num_postcondition_templates(),
            artifact.num_unknowns(),
        ));
        artifact
    }
}

/// Step 2: generate the constraint pairs `(Γ, g)` for every CFG transition,
/// initiation point, call and return.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairStage;

impl<'a> Stage<&'a TemplateArtifact> for PairStage {
    type Output = Result<ConstraintPairs, ConstraintError>;

    fn name(&self) -> &'static str {
        stage_names::PAIRS
    }

    fn run(
        &self,
        ctx: &mut SynthesisContext<'_>,
        input: &'a TemplateArtifact,
    ) -> Result<ConstraintPairs, ConstraintError> {
        let pairs = generate_pairs(
            ctx.program,
            &ctx.cfg,
            &ctx.precondition,
            &input.templates,
            PairOptions {
                recursive: ctx.recursive,
            },
            &mut ctx.mono_table,
        )?;
        ctx.note(format!("pairs: {} constraint pair(s)", pairs.len()));
        Ok(ConstraintPairs { pairs })
    }
}

/// Step 3: translate every pair through Putinar's positivstellensatz into
/// quadratic equalities and inequalities over the unknowns.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReductionStage;

impl Stage<(TemplateArtifact, ConstraintPairs)> for ReductionStage {
    type Output = GeneratedSystem;

    fn name(&self) -> &'static str {
        stage_names::REDUCTION
    }

    fn run(
        &self,
        ctx: &mut SynthesisContext<'_>,
        (templates, pairs): (TemplateArtifact, ConstraintPairs),
    ) -> GeneratedSystem {
        // Step 3 itself is shared with `polyinv_constraints::generate`, so
        // the staged and single-call entry points cannot diverge. The run's
        // monomial arena moves into the generated system here.
        let mono_table = ctx.take_mono_table();
        let generated = polyinv_constraints::reduce_pairs(
            templates.templates,
            templates.registry,
            pairs.pairs,
            &ctx.options,
            ctx.recursive,
            ctx.precondition.clone(),
            mono_table,
        );
        ctx.note(format!(
            "reduction: |S| = {}, {} unknown(s)",
            generated.size(),
            generated.system.num_unknowns(),
        ));
        generated
    }
}

/// The affine presolve fixpoint between Steps 3 and 4: eliminates unknowns
/// pinned by affine equalities, drops trivial and duplicate rows, and
/// records every elimination so solver assignments back-substitute exactly
/// onto the original registry ([`polyinv_constraints::presolve`]).
#[derive(Debug, Clone, Default)]
pub struct PresolveStage {
    /// Unknowns pinned to exact values before the fixpoint runs (the same
    /// pins the solve stage would fix); they seed the substitution map so
    /// their consequences propagate through the whole system.
    pub pins: HashMap<UnknownId, Rational>,
}

impl<'a> Stage<&'a GeneratedSystem> for PresolveStage {
    type Output = PresolvedSystem;

    fn name(&self) -> &'static str {
        stage_names::PRESOLVE
    }

    fn run(
        &self,
        ctx: &mut SynthesisContext<'_>,
        generated: &'a GeneratedSystem,
    ) -> PresolvedSystem {
        let result = polyinv_constraints::presolve(
            &generated.system,
            &self.pins,
            &PresolveOptions::default(),
        );
        ctx.note(format!(
            "presolve: |S| {} -> {}, unknowns {} -> {}, {} round(s)",
            result.stats.size_before,
            result.stats.size_after,
            result.stats.unknowns_before,
            result.stats.unknowns_after,
            result.stats.rounds,
        ));
        result
    }
}

/// Step 4: hand the quadratic system (with some unknowns optionally pinned)
/// to the configured [`QcqpBackend`] and interpret the best point found.
#[derive(Debug, Clone)]
pub struct SolveStage {
    /// The back-end to solve with.
    pub backend: Arc<dyn QcqpBackend>,
    /// Unknowns pinned to exact values before solving (weak synthesis pins
    /// the template rows of the target assertions; the certificate checker
    /// pins all template coefficients).
    pub fixed: HashMap<UnknownId, Rational>,
    /// Optional warm start over the *free* problem variables; when absent a
    /// slightly-positive default keeps Cholesky diagonals in the interior.
    pub warm_start: Option<Vec<f64>>,
}

impl SolveStage {
    /// A solve stage with no pinned unknowns and the default warm start.
    pub fn new(backend: Arc<dyn QcqpBackend>) -> Self {
        SolveStage {
            backend,
            fixed: HashMap::new(),
            warm_start: None,
        }
    }
}

impl<'a> Stage<(&'a GeneratedSystem, Option<&'a PresolvedSystem>)> for SolveStage {
    type Output = Solution;

    fn name(&self) -> &'static str {
        stage_names::SOLVE
    }

    fn run(
        &self,
        ctx: &mut SynthesisContext<'_>,
        (generated, presolved): (&'a GeneratedSystem, Option<&'a PresolvedSystem>),
    ) -> Solution {
        // The back-end sees the presolved system when the presolve stage
        // ran. Eliminated unknowns are excluded from the variable space by
        // fixing them (any placeholder works — the presolved rows no longer
        // mention them and back-substitution overwrites the slot); pins that
        // presolve rolled back stay fixed to their exact values.
        let (system, solver_fixed) = match presolved {
            Some(result) => {
                let mut fixed = self.fixed.clone();
                for elim in result.map.iter() {
                    if elim.eliminates() {
                        let value = match elim {
                            Elimination::Fixed { value, .. } => *value,
                            _ => Rational::zero(),
                        };
                        fixed.insert(elim.unknown(), value);
                    }
                }
                (&result.system, fixed)
            }
            None => (&generated.system, self.fixed.clone()),
        };
        let (problem, mapping) = system_to_problem_with_fixed(system, &solver_fixed);
        let warm: Vec<f64> = match &self.warm_start {
            Some(start) if start.len() == problem.num_vars => start.clone(),
            _ => vec![0.05; problem.num_vars],
        };
        let outcome = self.backend.solve(&problem, Some(&warm));

        // Reassemble the full assignment over all unknowns, then rewrite the
        // eliminated entries from the surviving ones.
        let mut assignment = vec![0.0; generated.system.num_unknowns()];
        for (id, value) in &solver_fixed {
            assignment[id.index()] = value.to_f64();
        }
        for (problem_index, id) in mapping.iter().enumerate() {
            assignment[id.index()] = outcome.assignment[problem_index];
        }
        let violation = match presolved {
            Some(result) => {
                result.map.back_substitute(&mut assignment);
                // Report the violation of the *original* system at the
                // back-substituted point, so the metric means the same thing
                // with and without presolve.
                generated.system.max_violation(&assignment)
            }
            None => outcome.violation,
        };
        let (invariant, postconditions) = instantiate_solution(ctx.program, generated, &assignment);
        let feasible = outcome.status == SolveStatus::Feasible;
        ctx.note(format!(
            "solve[{}]: {} (violation {:.2e}, {} iteration(s), {} restart(s), \
             nnz(J) = {}, nnz(L) = {})",
            self.backend.name(),
            if feasible { "feasible" } else { "infeasible" },
            violation,
            outcome.stats.iterations,
            outcome.stats.restarts,
            outcome.stats.nnz_jacobian,
            outcome.stats.nnz_factor,
        ));
        Solution {
            feasible,
            invariant,
            postconditions,
            assignment,
            violation,
            backend: self.backend.name(),
            stats: outcome.stats,
            presolve: presolved.map(|result| result.stats.clone()),
        }
    }
}
