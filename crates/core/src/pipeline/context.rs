//! The shared state threaded through the pipeline stages.

use std::time::Duration;

use polyinv_constraints::SynthesisOptions;
use polyinv_lang::{Cfg, Precondition, Program};
use polyinv_poly::MonomialTable;

/// Canonical stage names, in execution order (see DESIGN.md §2).
pub mod stage_names {
    /// Step 1 — template instantiation.
    pub const TEMPLATES: &str = "templates";
    /// Step 2 — constraint-pair generation.
    pub const PAIRS: &str = "pairs";
    /// Step 3 — Putinar/Handelman reduction to a quadratic system.
    pub const REDUCTION: &str = "reduction";
    /// The affine presolve fixpoint shrinking the system before Step 4.
    pub const PRESOLVE: &str = "presolve";
    /// Step 4 — QCQP solving.
    pub const SOLVE: &str = "solve";
}

/// Wall-clock time spent in each pipeline stage, in execution order.
///
/// Stage names repeat across attempts (the ϒ-ladder of weak synthesis runs
/// the generation stages once per rung), so recording accumulates into the
/// existing entry.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    entries: Vec<(&'static str, Duration)>,
}

impl StageTimings {
    /// Creates an empty timing table.
    pub fn new() -> Self {
        StageTimings::default()
    }

    /// Adds `elapsed` to the entry for `stage` (creating it at the end of
    /// the table on first use).
    pub fn record(&mut self, stage: &'static str, elapsed: Duration) {
        match self.entries.iter_mut().find(|(name, _)| *name == stage) {
            Some((_, total)) => *total += elapsed,
            None => self.entries.push((stage, elapsed)),
        }
    }

    /// The accumulated time of one stage (zero if it never ran).
    pub fn get(&self, stage: &str) -> Duration {
        self.entries
            .iter()
            .find(|(name, _)| *name == stage)
            .map(|(_, total)| *total)
            .unwrap_or_default()
    }

    /// Iterates over `(stage, duration)` in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.entries.iter().copied()
    }

    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Combined time of the generation stages (Steps 1–3), the quantity
    /// historically reported as "generation time".
    pub fn generation(&self) -> Duration {
        self.get(stage_names::TEMPLATES)
            + self.get(stage_names::PAIRS)
            + self.get(stage_names::REDUCTION)
    }

    /// Time spent in the affine presolve (between Steps 3 and 4).
    pub fn presolve(&self) -> Duration {
        self.get(stage_names::PRESOLVE)
    }

    /// Time spent solving (Step 4).
    pub fn solve(&self) -> Duration {
        self.get(stage_names::SOLVE)
    }

    /// Merges another table into this one (stage-wise accumulation).
    pub fn absorb(&mut self, other: &StageTimings) {
        for (stage, duration) in other.iter() {
            self.record(stage, duration);
        }
    }
}

/// Per-run state shared by every stage: the program under analysis, the
/// (augmented) pre-condition, the reduction options, and the diagnostics and
/// timings accumulated as stages run.
#[derive(Debug, Clone)]
pub struct SynthesisContext<'p> {
    /// The program being analyzed.
    pub program: &'p Program,
    /// The pre-condition, already extended with the bounded-reals
    /// assertions of Remark 5 when the options request them.
    pub precondition: Precondition,
    /// The reduction options of this run.
    pub options: SynthesisOptions,
    /// Whether the recursive variants of the algorithms apply.
    pub recursive: bool,
    /// The control-flow graph of the program.
    pub cfg: Cfg,
    /// The monomial arena of this run: one table serves every stage, so
    /// interned ids stay meaningful from pair generation through reduction.
    /// The reduction stage moves it into the `GeneratedSystem` it produces.
    pub mono_table: MonomialTable,
    timings: StageTimings,
    diagnostics: Vec<String>,
}

impl<'p> SynthesisContext<'p> {
    /// Builds the context for one pipeline run: augments the pre-condition
    /// and decides recursive treatment (via [`polyinv_constraints::prepare`],
    /// shared with the single-call `generate`), then builds the CFG.
    pub fn new(program: &'p Program, pre: &Precondition, options: SynthesisOptions) -> Self {
        let (precondition, recursive) = polyinv_constraints::prepare(program, pre, &options);
        let cfg = Cfg::build(program);
        SynthesisContext {
            program,
            precondition,
            options,
            recursive,
            cfg,
            mono_table: MonomialTable::new(),
            timings: StageTimings::new(),
            diagnostics: Vec::new(),
        }
    }

    /// Moves the monomial table out of the context (used by the reduction
    /// stage to hand the arena to the `GeneratedSystem`; a fresh table takes
    /// its place, so a re-used context starts a new arena).
    pub fn take_mono_table(&mut self) -> MonomialTable {
        std::mem::replace(&mut self.mono_table, MonomialTable::new())
    }

    /// Appends a human-readable diagnostic line.
    pub fn note(&mut self, message: impl Into<String>) {
        self.diagnostics.push(message.into());
    }

    /// The diagnostics recorded so far, in order.
    pub fn diagnostics(&self) -> &[String] {
        &self.diagnostics
    }

    /// The per-stage timings recorded so far.
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    /// Records time spent in a stage (used by the pipeline driver).
    pub(crate) fn record(&mut self, stage: &'static str, elapsed: Duration) {
        self.timings.record(stage, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_accumulate_per_stage_and_preserve_order() {
        let mut timings = StageTimings::new();
        timings.record(stage_names::TEMPLATES, Duration::from_millis(5));
        timings.record(stage_names::PAIRS, Duration::from_millis(7));
        timings.record(stage_names::TEMPLATES, Duration::from_millis(3));
        assert_eq!(
            timings.get(stage_names::TEMPLATES),
            Duration::from_millis(8)
        );
        assert_eq!(timings.get(stage_names::PAIRS), Duration::from_millis(7));
        assert_eq!(timings.get(stage_names::SOLVE), Duration::ZERO);
        let order: Vec<&str> = timings.iter().map(|(name, _)| name).collect();
        assert_eq!(order, vec![stage_names::TEMPLATES, stage_names::PAIRS]);
        assert_eq!(timings.total(), Duration::from_millis(15));
        assert_eq!(timings.generation(), Duration::from_millis(15));
    }

    #[test]
    fn absorb_merges_stage_wise() {
        let mut a = StageTimings::new();
        a.record(stage_names::SOLVE, Duration::from_millis(2));
        let mut b = StageTimings::new();
        b.record(stage_names::SOLVE, Duration::from_millis(5));
        b.record(stage_names::TEMPLATES, Duration::from_millis(1));
        a.absorb(&b);
        assert_eq!(a.get(stage_names::SOLVE), Duration::from_millis(7));
        assert_eq!(a.get(stage_names::TEMPLATES), Duration::from_millis(1));
    }
}
