//! The typed artifacts passed between pipeline stages.
//!
//! Each of the paper's steps produces one artifact:
//!
//! 1. templates   → [`TemplateArtifact`]
//! 2. pairs       → [`ConstraintPairs`]
//! 3. reduction   → [`GeneratedSystem`] (re-exported from
//!    `polyinv-constraints`; it owns the quadratic system plus everything
//!    needed to interpret its solutions)
//! 4. solve       → [`Solution`]

use polyinv_constraints::pairs::PairKind;
use polyinv_constraints::template::TemplateSet;
use polyinv_constraints::{ConstraintPair, PresolveStats, UnknownRegistry};
use polyinv_lang::{InvariantMap, Postcondition, Program};
use polyinv_poly::UnknownId;
use polyinv_qcqp::SolverStats;

pub use polyinv_constraints::GeneratedSystem;

use crate::bridge::round_assignment;

/// Step 1 output: the invariant (and post-condition) templates together
/// with the unknown registry that owns their coefficient unknowns.
#[derive(Debug, Clone)]
pub struct TemplateArtifact {
    /// The templates: `η(ℓ)` per label, `µ(f)` per function when recursive.
    pub templates: TemplateSet,
    /// The registry of unknowns allocated so far (the s-variables). The
    /// reduction stage keeps allocating into it (t-, l- and ε-variables).
    pub registry: UnknownRegistry,
}

impl TemplateArtifact {
    /// Number of label templates instantiated (one per label of every
    /// function).
    pub fn num_invariant_templates(&self) -> usize {
        self.templates.invariants.len()
    }

    /// Number of post-condition templates (recursive programs only).
    pub fn num_postcondition_templates(&self) -> usize {
        self.templates.postconditions.len()
    }

    /// Number of template-coefficient unknowns allocated by Step 1.
    pub fn num_unknowns(&self) -> usize {
        self.registry.len()
    }
}

/// Step 2 output: the constraint pairs `(Γ, g)` encoding every initiation
/// and consecution requirement.
#[derive(Debug, Clone)]
pub struct ConstraintPairs {
    /// The pairs, in translation order (unknown names reference this order).
    pub pairs: Vec<ConstraintPair>,
}

impl ConstraintPairs {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when no pairs were generated.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs of one kind (initiation, consecution, …).
    pub fn count_kind(&self, kind: PairKind) -> usize {
        self.pairs.iter().filter(|p| p.kind == kind).count()
    }
}

/// Step 4 output: the solver's best point, interpreted back into an
/// invariant map and post-conditions.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Whether the quadratic system was solved within tolerance.
    pub feasible: bool,
    /// The instantiated invariant map (trustworthy only when `feasible`).
    pub invariant: InvariantMap,
    /// The instantiated post-conditions (recursive programs only).
    pub postconditions: Postcondition,
    /// The full numeric assignment over *all* unknowns of the system
    /// (fixed unknowns included).
    pub assignment: Vec<f64>,
    /// The worst constraint violation at the assignment.
    pub violation: f64,
    /// The stable name of the back-end that produced the point.
    pub backend: &'static str,
    /// Solver execution statistics: iterations and restarts, final
    /// residual, sparsity of the Jacobian/normal matrix/factor, and the
    /// factor/solve wall-clock split.
    pub stats: SolverStats,
    /// Statistics of the affine presolve that shrank the system before the
    /// solve (`None` when presolve was disabled).
    pub presolve: Option<PresolveStats>,
}

/// Instantiates the templates of a generated system under a numeric
/// assignment of the unknowns, returning the invariant map and
/// post-conditions. Conjuncts that instantiate to the zero polynomial are
/// dropped.
pub fn instantiate_solution(
    program: &Program,
    generated: &GeneratedSystem,
    assignment: &[f64],
) -> (InvariantMap, Postcondition) {
    let rounded = round_assignment(assignment);
    let lookup = |u: UnknownId| rounded[u.index()];
    let mut invariant = InvariantMap::new();
    for function in program.functions() {
        for &label in function.labels() {
            let template = generated.templates.invariant(label);
            for poly in template.instantiate(lookup) {
                if !poly.is_zero() {
                    invariant.add(label, poly);
                }
            }
        }
    }
    let mut postconditions = Postcondition::new();
    for (name, template) in &generated.templates.postconditions {
        for poly in template.instantiate(lookup) {
            if !poly.is_zero() {
                postconditions.add(name, poly);
            }
        }
    }
    (invariant, postconditions)
}
