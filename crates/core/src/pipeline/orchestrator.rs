//! The adaptive solve orchestrator (DESIGN.md §12).
//!
//! One request, a ladder of attempts. Each rung of the ϒ ladder generates
//! its quadratic system, races the LM and penalty back-ends as a portfolio
//! under per-attempt wall-clock and iteration budgets, refines the winning
//! candidate with a block-coordinate polish that exploits the bilinear
//! structure of the Putinar translation, and finally snaps the coefficients
//! (`k/64` for template unknowns, dyadic for the rest) and re-checks the
//! system in exact [`Rational`](polyinv_arith::Rational) arithmetic. A rung
//! is accepted — and the ladder stops — only when that exact re-check
//! passes, so every "synthesized" answer carries a machine-checked
//! certificate; otherwise the orchestrator escalates to the next rung and,
//! when the ladder is exhausted, returns the best uncertified attempt with
//! its full attempt history.
//!
//! The polish stage is where most certificates are won. The Step-3 system
//! is bilinear across the unknown families: with the template (s-) and
//! Cholesky (l-) blocks pinned, every remaining constraint is *linear* in
//! the multiplier (t-) and witness (ε-) unknowns, so a final least-squares
//! pass lands the globally best residual compatible with the snapped
//! coefficients. The alternation (free the SOS side, then the template
//! side, then the linear tail) walks the candidate out of the plateau the
//! joint solve stalls on.

use std::collections::HashMap;
use std::time::Instant;

use polyinv_arith::Rational;
use polyinv_constraints::exact::{exact_recheck_ladder, ExactCheckConfig, ExactReport};
use polyinv_constraints::{
    ConstraintError, GeneratedSystem, PresolveOptions, PresolveStats, QuadraticSystem,
    SynthesisOptions, UnknownKind,
};
use polyinv_lang::{InvariantMap, Postcondition, Precondition, Program};
use polyinv_poly::UnknownId;
use polyinv_qcqp::{
    AlmOptions, AlmSolver, LmOptions, LmSolver, LmWorkspace, Problem, QcqpBackend, SolveOutcome,
    SolverStats,
};

use crate::bridge::system_to_problem_with_fixed;
use crate::pipeline::{instantiate_solution, stage_names, Pipeline, StageTimings};
use crate::weak::TargetAssertion;

/// The budgets and acceptance policy of an orchestrated solve: how hard
/// each rung may try, which back-ends race, and what the certificate must
/// establish.
#[derive(Debug, Clone)]
pub struct SolvePlan {
    /// Reduction options of the *last* rung; earlier rungs run the cheaper
    /// ϒ values of [`SynthesisOptions::upsilon_ladder`]. Degree escalation
    /// (PR 6) happens before the plan is built, so `options.degree` already
    /// fits the targets.
    pub options: SynthesisOptions,
    /// The LM lane of the portfolio: iteration/restart/wall-clock budget of
    /// one rung attempt.
    pub lm: LmOptions,
    /// The penalty (augmented-Lagrangian) lane; `None` disables the second
    /// lane and the rung runs LM alone.
    pub penalty: Option<AlmOptions>,
    /// Number of block-coordinate polish rounds applied to the portfolio
    /// winner (each round: free the SOS block, then the template block).
    pub polish_rounds: usize,
    /// LM budget of one polish sub-solve.
    pub polish_lm: LmOptions,
    /// Snap-and-recheck policy: dyadic denominator, `k/64` snap window and
    /// the exact-rational tolerance a certificate must meet.
    pub certificate: ExactCheckConfig,
    /// Wall-clock budget in seconds for the whole orchestrated solve (all
    /// rungs, lanes and polish rounds together). When the deadline passes,
    /// no further rung starts and per-lane budgets are clamped to the time
    /// remaining — so arbitrarily large systems get a bounded, best-effort
    /// attempt instead of being skipped outright. `0` disables the budget.
    pub solve_budget_seconds: f64,
}

impl SolvePlan {
    /// The default plan for the given (degree-escalated) options: a
    /// budgeted LM lane racing a short penalty lane, three polish rounds
    /// and the acceptance certificate tolerance.
    ///
    /// The certificate tolerance is `1/100` — exactly the `epsilon_lower`
    /// strictness margin of the Putinar translation. Every strict
    /// inequality of the source program is witnessed with an ε ≥ 1/100
    /// slack, so an exact violation below that margin still leaves each
    /// strict obligation witnessed by a positive (if reduced) ε; this is
    /// the loosest tolerance under which the certificate remains a sound
    /// acceptance criterion.
    pub fn new(options: SynthesisOptions) -> Self {
        SolvePlan {
            options,
            lm: LmOptions {
                max_iterations: 400,
                restarts: 3,
                tolerance: 1e-7,
                max_seconds: 60.0,
                ..LmOptions::default()
            },
            penalty: Some(AlmOptions {
                restarts: 2,
                max_seconds: 20.0,
                ..AlmOptions::default()
            }),
            polish_rounds: 3,
            polish_lm: LmOptions {
                max_iterations: 150,
                restarts: 1,
                parallel_restarts: false,
                max_seconds: 20.0,
                ..LmOptions::default()
            },
            certificate: ExactCheckConfig {
                tolerance: Rational::new(1, 100),
                ..ExactCheckConfig::default()
            },
            solve_budget_seconds: 0.0,
        }
    }

    /// Sets the whole-solve wall-clock budget (`0` disables it).
    pub fn with_solve_budget(mut self, seconds: f64) -> Self {
        self.solve_budget_seconds = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        self
    }

    /// Restricts the portfolio to the named back-end (`"lm"` keeps only the
    /// LM lane; `"penalty"`/`"alm"` runs the penalty lane alone with the LM
    /// lane reduced to a polish role). Unknown names leave the plan as-is.
    pub fn with_backend_preference(mut self, name: &str) -> Self {
        match name {
            "lm" => self.penalty = None,
            "penalty" | "alm" => {
                if self.penalty.is_none() {
                    self.penalty = Some(AlmOptions {
                        restarts: 2,
                        max_seconds: 20.0,
                        ..AlmOptions::default()
                    });
                }
                // The LM lane is demoted to a token budget so the penalty
                // lane's candidate wins unless LM stumbles on feasibility.
                self.lm.max_iterations = 1;
                self.lm.restarts = 1;
            }
            _ => {}
        }
        self
    }
}

/// One attempt in the orchestrator's history: a portfolio lane, a polish
/// pass or a certificate check on some rung.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttempt {
    /// The ϒ value of the rung the attempt ran on.
    pub upsilon: u32,
    /// `"lm"`, `"penalty"`, `"polish"` or `"certificate"`.
    pub backend: String,
    /// Whether the attempt's point satisfied its system within the solver
    /// tolerance (for `"certificate"`: whether the exact re-check passed).
    pub feasible: bool,
    /// Float-side worst violation of the attempt's point (for
    /// `"certificate"`: the exact worst violation rounded to f64).
    pub violation: f64,
    /// Wall-clock seconds the attempt took.
    pub seconds: f64,
}

/// The orchestrator's summary, threaded through `SolveOutcome` →
/// `SynthesisReport` → the CLI and the per-row `orchestrator` block of the
/// benchmark snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OrchestratorStats {
    /// Total attempts recorded (portfolio lanes + polish passes +
    /// certificate checks over all rungs).
    pub attempts: usize,
    /// Number of ladder rungs tried.
    pub rungs_tried: usize,
    /// The ϒ value of the accepted (or last) rung.
    pub rung_reached: u32,
    /// The lane that produced the returned candidate (`"lm"` or
    /// `"penalty"`; polish refines but does not rename).
    pub winning_backend: String,
    /// Whether the returned candidate carries a passing exact-rational
    /// certificate.
    pub certified: bool,
    /// The exact worst violation of the certificate check (f64 view;
    /// meaningful whether or not it passed).
    pub certificate_violation: f64,
    /// The attempt history, in execution order.
    pub history: Vec<SolveAttempt>,
}

/// The result of an orchestrated solve: the best candidate over all rungs,
/// its certificate, and everything downstream consumers (engine, validate,
/// bench) need to report it.
#[derive(Debug, Clone)]
pub struct OrchestratorOutcome {
    /// `true` when the candidate passed the exact-rational certificate —
    /// the orchestrator's definition of "synthesized".
    pub certified: bool,
    /// Whether the float-side solver reached its own tolerance (a weaker
    /// property than `certified`, kept for diagnostics).
    pub feasible: bool,
    /// The invariant map instantiated at the candidate.
    pub invariant: InvariantMap,
    /// The synthesized post-conditions (recursive programs only).
    pub postconditions: Postcondition,
    /// The candidate assignment over the final rung's unknown space.
    pub assignment: Vec<f64>,
    /// The final rung's generated system (post-ladder, pre-presolve): the
    /// single source of truth for `system_size`/`num_unknowns` and the
    /// system the certificate was checked against.
    pub generated: GeneratedSystem,
    /// `|S|` of `generated` (post-ladder, pre-presolve).
    pub system_size: usize,
    /// Unknowns of `generated`.
    pub num_unknowns: usize,
    /// Float-side worst violation of the candidate on `generated`.
    pub violation: f64,
    /// Per-stage wall-clock accumulated over all rungs.
    pub timings: StageTimings,
    /// The winning lane's stable name.
    pub backend: &'static str,
    /// Solver statistics of the winning lane on the accepted (or last)
    /// rung.
    pub solver: SolverStats,
    /// Presolve statistics of the accepted (or last) rung.
    pub presolve: Option<PresolveStats>,
    /// The exact re-check report of the returned candidate.
    pub exact: Option<ExactReport>,
    /// The orchestration summary.
    pub stats: OrchestratorStats,
}

/// One portfolio lane's raw result on a rung.
struct LaneResult {
    backend: &'static str,
    assignment: Vec<f64>,
    violation: f64,
    feasible: bool,
    stats: SolverStats,
}

/// The per-rung candidate after portfolio + polish + certificate.
struct RungResult {
    assignment: Vec<f64>,
    violation: f64,
    feasible: bool,
    certified: bool,
    backend: &'static str,
    solver: SolverStats,
    presolve: Option<PresolveStats>,
    exact: ExactReport,
    generated: GeneratedSystem,
}

/// State reused across the rungs, lanes and polish rounds of **one**
/// orchestrated solve.
///
/// Two kinds of reuse live here. The symbolic side of an LM solve (`JᵀJ`
/// pattern, fill-reducing ordering, symbolic LDLᵀ) depends only on the
/// problem's sparsity structure, so polish rounds — which pin the same
/// blocks round after round — and repeated rungs with unchanged sparsity
/// skip the analysis entirely. And the previous rung's best point is kept
/// keyed by [`UnknownKind`] (provenance, not index), so when the next rung
/// re-registers its unknowns in a different order the surviving coordinates
/// still warm-start at their old values instead of the cold `0.05`.
#[derive(Default)]
struct SolveCache {
    /// Symbolic LM workspaces, most recently used last. Checked via
    /// [`LmWorkspace::matches`]; bounded so a long ladder cannot hoard
    /// memory.
    workspaces: Vec<LmWorkspace>,
    /// The previous rung's best assignment, keyed by unknown provenance.
    warm: HashMap<UnknownKind, f64>,
}

/// At most this many symbolic workspaces are kept alive (the polish
/// alternation uses three structures per rung; a few rungs' worth covers
/// every repeat customer).
const WORKSPACE_CACHE_LIMIT: usize = 8;

impl SolveCache {
    /// Solves with a cached symbolic workspace when one matches the
    /// problem's structure; builds (and caches) the workspace otherwise.
    fn solve_lm(
        &mut self,
        solver: &LmSolver,
        problem: &Problem,
        warm_start: Option<&[f64]>,
    ) -> SolveOutcome {
        let weight = solver.options().objective_weight;
        if let Some(pos) = self
            .workspaces
            .iter()
            .position(|ws| ws.matches(problem, weight))
        {
            // Move the hit to the back: the eviction below drops the least
            // recently used structure.
            let ws = self.workspaces.remove(pos);
            let outcome = solver.solve_with_workspace(problem, &ws, warm_start);
            self.workspaces.push(ws);
            return outcome;
        }
        let ws = LmWorkspace::build(problem, weight);
        let outcome = solver.solve_with_workspace(problem, &ws, warm_start);
        if self.workspaces.len() >= WORKSPACE_CACHE_LIMIT {
            self.workspaces.remove(0);
        }
        self.workspaces.push(ws);
        outcome
    }

    /// The warm-start vector for a solver-space `mapping`: coordinates whose
    /// provenance appeared in the previous rung resume at their old values,
    /// new unknowns start at the cold default `0.05`.
    fn warm_vector(
        &self,
        registry: &polyinv_constraints::UnknownRegistry,
        mapping: &[UnknownId],
    ) -> Vec<f64> {
        mapping
            .iter()
            .map(|&id| {
                self.warm
                    .get(registry.kind(id))
                    .copied()
                    .filter(|v| v.is_finite())
                    .unwrap_or(0.05)
            })
            .collect()
    }

    /// Records a rung's best full-space assignment as the next rung's warm
    /// start.
    fn record_rung(
        &mut self,
        registry: &polyinv_constraints::UnknownRegistry,
        assignment: &[f64],
    ) {
        self.warm = registry
            .iter()
            .map(|(id, kind)| (kind.clone(), assignment[id.index()]))
            .collect();
    }
}

/// The adaptive solve orchestrator.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    plan: SolvePlan,
}

impl Orchestrator {
    /// Creates an orchestrator with the given plan.
    pub fn new(plan: SolvePlan) -> Self {
        Orchestrator { plan }
    }

    /// The plan in use.
    pub fn plan(&self) -> &SolvePlan {
        &self.plan
    }

    /// Runs the ladder of attempts for one weak-synthesis request.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintError`] when the generation stages reject the
    /// program.
    ///
    /// # Panics
    ///
    /// Panics if a target mentions a monomial outside the template basis at
    /// its label (same contract as [`crate::fix_targets`]).
    pub fn solve(
        &self,
        program: &Program,
        pre: &Precondition,
        targets: &[TargetAssertion],
    ) -> Result<OrchestratorOutcome, ConstraintError> {
        let ladder = self.plan.options.upsilon_ladder();
        let started = Instant::now();
        let budget = self.plan.solve_budget_seconds;
        let mut timings = StageTimings::new();
        let mut history: Vec<SolveAttempt> = Vec::new();
        let mut cache = SolveCache::default();
        let mut best: Option<RungResult> = None;
        let mut rung_reached = 0;
        let mut rungs_tried = 0;

        for &upsilon in &ladder {
            // The whole-solve deadline: the first rung always runs (a
            // best-effort attempt is the point of the budget), later rungs
            // only start while time remains.
            let remaining = if budget > 0.0 {
                let left = budget - started.elapsed().as_secs_f64();
                if left <= 0.0 && best.is_some() {
                    break;
                }
                Some(left.max(1.0))
            } else {
                None
            };
            rungs_tried += 1;
            rung_reached = upsilon;
            let options = self.plan.options.clone().with_upsilon(upsilon);
            let rung = self.run_rung(
                program,
                pre,
                targets,
                &options,
                upsilon,
                remaining,
                &mut cache,
                &mut timings,
                &mut history,
            )?;
            let accept = rung.certified;
            let better = match &best {
                None => true,
                Some(current) => {
                    let cert_gain = rung.certified && !current.certified;
                    let feas_gain = rung.feasible && !current.feasible;
                    let viol_gain =
                        rung.feasible == current.feasible && rung.violation < current.violation;
                    cert_gain || (rung.certified == current.certified && (feas_gain || viol_gain))
                }
            };
            if better {
                best = Some(rung);
            }
            if accept {
                break;
            }
        }

        let best = best.expect("the ϒ ladder is never empty");
        let (invariant, postconditions) =
            instantiate_solution(program, &best.generated, &best.assignment);
        Ok(OrchestratorOutcome {
            certified: best.certified,
            feasible: best.feasible,
            invariant,
            postconditions,
            system_size: best.generated.size(),
            num_unknowns: best.generated.system.num_unknowns(),
            violation: best.violation,
            timings,
            backend: best.backend,
            solver: best.solver,
            presolve: best.presolve,
            stats: OrchestratorStats {
                attempts: history.len(),
                rungs_tried,
                rung_reached,
                winning_backend: best.backend.to_string(),
                certified: best.certified,
                certificate_violation: best.exact.worst_violation.to_f64(),
                history,
            },
            exact: Some(best.exact),
            assignment: best.assignment,
            generated: best.generated,
        })
    }

    /// One rung: generate, presolve, race the portfolio, polish the winner,
    /// snap and certify.
    #[allow(clippy::too_many_arguments)]
    fn run_rung(
        &self,
        program: &Program,
        pre: &Precondition,
        targets: &[TargetAssertion],
        options: &SynthesisOptions,
        upsilon: u32,
        remaining_seconds: Option<f64>,
        cache: &mut SolveCache,
        timings: &mut StageTimings,
        history: &mut Vec<SolveAttempt>,
    ) -> Result<RungResult, ConstraintError> {
        // Steps 1–3 through the staged pipeline (one timing entry each).
        let pipeline = Pipeline::new(options.clone());
        let mut ctx = pipeline.context(program, pre);
        let generated = pipeline.generate(&mut ctx)?;
        timings.absorb(ctx.timings());
        let fixed = crate::fix_targets(&generated, targets);

        // Affine presolve, seeded with the target pins.
        let presolve_start = Instant::now();
        let presolved = options.presolve.then(|| {
            polyinv_constraints::presolve(&generated.system, &fixed, &PresolveOptions::default())
        });
        let mut presolve_timing = StageTimings::new();
        presolve_timing.record(stage_names::PRESOLVE, presolve_start.elapsed());

        // The back-ends see the presolved system; eliminated unknowns are
        // pinned out of the variable space exactly like the solve stage
        // does (placeholders are overwritten by back-substitution).
        let (sub_system, solver_fixed) = match &presolved {
            Some(result) => {
                let mut solver_fixed = fixed.clone();
                for elim in result.map.iter() {
                    if elim.eliminates() {
                        let value = match elim {
                            polyinv_constraints::Elimination::Fixed { value, .. } => *value,
                            _ => Rational::zero(),
                        };
                        solver_fixed.insert(elim.unknown(), value);
                    }
                }
                (&result.system, solver_fixed)
            }
            None => (&generated.system, fixed.clone()),
        };

        // Portfolio race: both lanes run to completion under their own
        // budgets; the winner is picked deterministically afterwards, so
        // the outcome does not depend on which lane finishes first. Under a
        // whole-solve budget each lane's wall-clock cap is clamped to the
        // time remaining.
        let solve_start = Instant::now();
        let mut lm_options = self.plan.lm.clone();
        let mut penalty_options = self.plan.penalty.clone();
        if let Some(remaining) = remaining_seconds {
            lm_options.max_seconds = clamp_budget(lm_options.max_seconds, remaining);
            if let Some(alm) = penalty_options.as_mut() {
                alm.max_seconds = clamp_budget(alm.max_seconds, remaining);
            }
        }
        let lm_backend = LmSolver::new(lm_options);
        let penalty_backend = penalty_options.map(AlmSolver::new);

        // Both lanes share one problem build and one warm start: the
        // previous rung's best point, carried across the re-indexed unknown
        // space by provenance ([`SolveCache::warm_vector`]).
        let (problem, mapping) = system_to_problem_with_fixed(sub_system, &solver_fixed);
        let warm = cache.warm_vector(&generated.system.registry, &mapping);
        let (lm_lane, penalty_lane) = std::thread::scope(|scope| {
            let penalty_handle = penalty_backend.as_ref().map(|backend| {
                let problem = &problem;
                let warm = &warm;
                scope.spawn(move || {
                    let start = Instant::now();
                    let outcome = backend.solve(problem, Some(warm));
                    (outcome, start.elapsed().as_secs_f64())
                })
            });
            let start = Instant::now();
            let outcome = cache.solve_lm(&lm_backend, &problem, Some(&warm));
            let lm_lane = RawLane {
                backend: lm_backend.name(),
                outcome,
                seconds: start.elapsed().as_secs_f64(),
            };
            let penalty_lane = penalty_handle.map(|handle| {
                let (outcome, seconds) = handle.join().expect("penalty lane panicked");
                RawLane {
                    backend: "penalty",
                    outcome,
                    seconds,
                }
            });
            (lm_lane, penalty_lane)
        });

        // Reassemble each lane onto the full unknown space and score it on
        // the *original* system, so the comparison means the same thing
        // with and without presolve.
        let mut lanes = Vec::new();
        for lane in [Some(lm_lane), penalty_lane].into_iter().flatten() {
            let mut assignment = vec![0.0; generated.system.num_unknowns()];
            for (id, value) in &solver_fixed {
                assignment[id.index()] = value.to_f64();
            }
            for (slot, id) in mapping.iter().enumerate() {
                assignment[id.index()] = lane.outcome.assignment[slot];
            }
            if let Some(result) = &presolved {
                result.map.back_substitute(&mut assignment);
            }
            let violation = generated.system.max_violation(&assignment);
            let feasible = lane.outcome.status == polyinv_qcqp::SolveStatus::Feasible;
            history.push(SolveAttempt {
                upsilon,
                backend: lane.backend.to_string(),
                feasible,
                violation,
                seconds: lane.seconds,
            });
            lanes.push(LaneResult {
                backend: lane.backend,
                assignment,
                violation,
                feasible,
                stats: lane.outcome.stats,
            });
        }
        let winner = pick_winner(lanes);

        // Block-coordinate polish of the winner on the original system.
        let mut assignment = winner.assignment;
        let mut violation = winner.violation;
        if self.plan.polish_rounds > 0 && violation > self.plan.lm.tolerance {
            let polish_start = Instant::now();
            let polished = self.polish(&generated, &fixed, assignment, violation, cache);
            assignment = polished.0;
            violation = polished.1;
            history.push(SolveAttempt {
                upsilon,
                backend: "polish".to_string(),
                feasible: violation <= self.plan.lm.tolerance,
                violation,
                seconds: polish_start.elapsed().as_secs_f64(),
            });
        }
        presolve_timing.record(stage_names::SOLVE, solve_start.elapsed());
        timings.absorb(&presolve_timing);

        // Snap and certify: the exact re-check walks the coarse-to-fine
        // snap ladder (`k/64` → `k/256` → pure dyadic at 2^24 and 2^32),
        // evaluating every constraint in rational arithmetic, and accepts
        // the first rounding whose certificate passes.
        let cert_start = Instant::now();
        let exact = exact_recheck_ladder(&generated.system, &assignment, &self.plan.certificate);
        let certified = exact.passed();
        history.push(SolveAttempt {
            upsilon,
            backend: "certificate".to_string(),
            feasible: certified,
            violation: exact.worst_violation.to_f64(),
            seconds: cert_start.elapsed().as_secs_f64(),
        });

        // The rung's polished point becomes the next rung's warm start,
        // carried by unknown provenance across the re-indexed registry.
        cache.record_rung(&generated.system.registry, &assignment);

        let feasible = violation <= self.plan.lm.tolerance || winner.feasible;
        Ok(RungResult {
            assignment,
            violation,
            feasible,
            certified,
            backend: winner.backend,
            solver: winner.stats,
            presolve: presolved.map(|result| result.stats),
            exact,
            generated,
        })
    }

    /// Block-coordinate polish: alternately frees the SOS side (multiplier,
    /// Cholesky/Gram and witness unknowns) and the template side, then runs
    /// a final pass over the *linear* tail (multiplier + witness unknowns
    /// with both the template and Cholesky blocks pinned — a least-squares
    /// problem whose optimum is the best residual compatible with the
    /// snapped coefficients). Keeps the best point seen.
    fn polish(
        &self,
        generated: &GeneratedSystem,
        fixed: &HashMap<UnknownId, Rational>,
        start: Vec<f64>,
        start_violation: f64,
        cache: &mut SolveCache,
    ) -> (Vec<f64>, f64) {
        let registry = &generated.system.registry;
        let is_template = |kind: &UnknownKind| {
            matches!(
                kind,
                UnknownKind::Template { .. } | UnknownKind::PostTemplate { .. }
            )
        };
        let is_sos = |kind: &UnknownKind| {
            matches!(
                kind,
                UnknownKind::Cholesky { .. } | UnknownKind::Gram { .. }
            )
        };
        let template_block: Vec<UnknownId> = registry
            .iter()
            .filter(|(_, kind)| is_template(kind))
            .map(|(id, _)| id)
            .collect();
        let sos_block: Vec<UnknownId> = registry
            .iter()
            .filter(|(_, kind)| is_sos(kind))
            .map(|(id, _)| id)
            .collect();

        let mut best = start;
        let mut best_violation = start_violation;
        for round in 0..self.plan.polish_rounds {
            // Pass 1: pin the template block, free {t, l, ε}.
            let (candidate, candidate_violation) =
                self.polish_pass(&generated.system, fixed, &best, &template_block, cache);
            if candidate_violation < best_violation {
                best = candidate;
                best_violation = candidate_violation;
            }
            // Pass 2: pin the Cholesky/Gram block, free {s, t, ε} (the
            // remaining system is bilinear in s·t, LM's sweet spot).
            let (candidate, candidate_violation) =
                self.polish_pass(&generated.system, fixed, &best, &sos_block, cache);
            if candidate_violation < best_violation {
                best = candidate;
                best_violation = candidate_violation;
            }
            // Final pass: pin both blocks; the tail {t, ε} is linear, so
            // one LM sub-solve reaches the least-squares optimum.
            if round + 1 == self.plan.polish_rounds {
                let both: Vec<UnknownId> = template_block
                    .iter()
                    .chain(sos_block.iter())
                    .copied()
                    .collect();
                let (candidate, candidate_violation) =
                    self.polish_pass(&generated.system, fixed, &best, &both, cache);
                if candidate_violation < best_violation {
                    best = candidate;
                    best_violation = candidate_violation;
                }
            }
            if best_violation <= self.plan.lm.tolerance {
                break;
            }
        }
        (best, best_violation)
    }

    /// One polish sub-solve: pin `block` at (dyadic roundings of) the
    /// current values, solve the rest warm-started from the current point,
    /// and score the merged assignment on the full system.
    fn polish_pass(
        &self,
        system: &QuadraticSystem,
        fixed: &HashMap<UnknownId, Rational>,
        current: &[f64],
        block: &[UnknownId],
        cache: &mut SolveCache,
    ) -> (Vec<f64>, f64) {
        let mut pins = fixed.clone();
        for &id in block {
            pins.entry(id)
                .or_insert_with(|| dyadic_pin(current[id.index()]));
        }
        let (problem, mapping) = system_to_problem_with_fixed(system, &pins);
        if mapping.is_empty() {
            return (current.to_vec(), system.max_violation(current));
        }
        let warm: Vec<f64> = mapping.iter().map(|id| current[id.index()]).collect();
        // The polish alternation re-solves the same three structures round
        // after round; the cache skips the repeated symbolic analysis.
        let solver = LmSolver::new(self.plan.polish_lm.clone());
        let outcome = cache.solve_lm(&solver, &problem, Some(&warm));
        let mut assignment = current.to_vec();
        for (id, value) in &pins {
            assignment[id.index()] = value.to_f64();
        }
        for (slot, id) in mapping.iter().enumerate() {
            assignment[id.index()] = outcome.assignment[slot];
        }
        let violation = system.max_violation(&assignment);
        (assignment, violation)
    }
}

/// A lane's raw solver output (the problem build and unknown mapping are
/// shared by both lanes of a rung).
struct RawLane {
    backend: &'static str,
    outcome: SolveOutcome,
    seconds: f64,
}

/// Clamps a per-lane wall-clock cap to the whole-solve time remaining
/// (`0` means "uncapped" on the lane side, so the remaining time becomes
/// the cap).
fn clamp_budget(lane_cap: f64, remaining: f64) -> f64 {
    if lane_cap > 0.0 {
        lane_cap.min(remaining)
    } else {
        remaining
    }
}

/// Deterministic portfolio tie-breaking: a feasible lane beats an
/// infeasible one; among equals the smaller violation wins; on exact ties
/// the earlier lane (LM first) wins. Non-finite violations compare as +∞.
fn pick_winner(lanes: Vec<LaneResult>) -> LaneResult {
    let finite_or_inf = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
    let mut best: Option<LaneResult> = None;
    for lane in lanes {
        let better = match &best {
            None => true,
            Some(current) => {
                (lane.feasible && !current.feasible)
                    || (lane.feasible == current.feasible
                        && finite_or_inf(lane.violation) < finite_or_inf(current.violation))
            }
        };
        if better {
            best = Some(lane);
        }
    }
    best.expect("the portfolio always has at least the LM lane")
}

/// Rounds a float to the dyadic rational used to pin polish blocks — the
/// same `2^-24` grid the certificate's dyadic rounding uses, so the polish
/// optimizes the residual at (essentially) the certified point.
fn dyadic_pin(value: f64) -> Rational {
    if !value.is_finite() {
        return Rational::zero();
    }
    let scale = 1i128 << 24;
    let scaled = (value * scale as f64).round();
    if scaled.abs() >= 1e27 {
        return Rational::approximate(value);
    }
    Rational::new(scaled as i128, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::parse_program;

    fn lane(backend: &'static str, feasible: bool, violation: f64) -> LaneResult {
        LaneResult {
            backend,
            assignment: vec![0.0],
            violation,
            feasible,
            stats: SolverStats::default(),
        }
    }

    #[test]
    fn portfolio_tie_breaking_is_deterministic() {
        // A feasible lane beats a lower-violation infeasible one.
        let winner = pick_winner(vec![lane("lm", false, 1e-9), lane("penalty", true, 1e-8)]);
        assert_eq!(winner.backend, "penalty");
        // Among infeasible lanes the smaller violation wins.
        let winner = pick_winner(vec![lane("lm", false, 0.5), lane("penalty", false, 0.2)]);
        assert_eq!(winner.backend, "penalty");
        // On an exact tie the earlier (LM) lane wins.
        let winner = pick_winner(vec![lane("lm", false, 0.3), lane("penalty", false, 0.3)]);
        assert_eq!(winner.backend, "lm");
        // NaN violations never displace a finite candidate.
        let winner = pick_winner(vec![
            lane("lm", false, f64::NAN),
            lane("penalty", false, 9.0),
        ]);
        assert_eq!(winner.backend, "penalty");
    }

    #[test]
    fn backend_preference_shapes_the_portfolio() {
        let plan = SolvePlan::new(SynthesisOptions::default()).with_backend_preference("lm");
        assert!(plan.penalty.is_none());
        let plan = SolvePlan::new(SynthesisOptions::default()).with_backend_preference("penalty");
        assert!(plan.penalty.is_some());
        assert_eq!(plan.lm.max_iterations, 1);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn a_certifiable_program_stops_at_the_first_rung() {
        let program = parse_program(
            r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x + 1
                od;
                return x
            }
            "#,
        )
        .unwrap();
        let pre = Precondition::from_program(&program);
        let exit = program.main().exit_label();
        let (target, _) = polyinv_lang::parse_assertion(&program, "inc", "x + 1 > 0").unwrap();
        let options = SynthesisOptions::with_degree_and_size(1, 1).with_upsilon(2);
        let orchestrator = Orchestrator::new(SolvePlan::new(options));
        let outcome = orchestrator
            .solve(&program, &pre, &[TargetAssertion::new(exit, target)])
            .unwrap();
        assert!(outcome.certified, "violation {}", outcome.violation);
        assert!(outcome.feasible);
        assert_eq!(outcome.stats.rung_reached, 0, "ϒ = 0 suffices here");
        assert_eq!(outcome.stats.rungs_tried, 1);
        assert!(outcome.stats.certified);
        assert!(!outcome.invariant.get(exit).is_empty());
        let exact = outcome.exact.expect("certificate report present");
        assert!(exact.passed());
        // Every attempt in the history belongs to the single rung tried.
        assert!(outcome.stats.history.iter().all(|a| a.upsilon == 0));
        assert!(outcome
            .stats
            .history
            .iter()
            .any(|a| a.backend == "certificate" && a.feasible));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn an_unprovable_target_escalates_through_every_rung() {
        // x never exceeds 11, so x - 1000 > 0 at the exit is unprovable:
        // no rung can certify and the ladder must be exhausted.
        let program = parse_program(
            r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x + 1
                od;
                return x
            }
            "#,
        )
        .unwrap();
        let pre = Precondition::from_program(&program);
        let exit = program.main().exit_label();
        let (target, _) = polyinv_lang::parse_assertion(&program, "inc", "x - 1000 > 0").unwrap();
        let options = SynthesisOptions::with_degree_and_size(1, 1).with_upsilon(2);
        let mut plan = SolvePlan::new(options);
        // Keep the escalation test fast: tiny budgets, no polish.
        plan.lm.max_iterations = 40;
        plan.lm.restarts = 1;
        plan.penalty = None;
        plan.polish_rounds = 0;
        let orchestrator = Orchestrator::new(plan);
        let outcome = orchestrator
            .solve(&program, &pre, &[TargetAssertion::new(exit, target)])
            .unwrap();
        assert!(!outcome.certified);
        assert_eq!(outcome.stats.rungs_tried, 2, "ladder [0, 2] is exhausted");
        assert_eq!(outcome.stats.rung_reached, 2);
        // Both rungs left their attempts in the history.
        assert!(outcome.stats.history.iter().any(|a| a.upsilon == 0));
        assert!(outcome.stats.history.iter().any(|a| a.upsilon == 2));
    }
}
