//! The staged synthesis pipeline (DESIGN.md §2).
//!
//! The paper's algorithms are four sequential steps; this module makes each
//! one an explicit, named [`Stage`] with a typed artifact:
//!
//! ```text
//! TemplateStage   ()                          → TemplateArtifact   (Step 1)
//! PairStage       &TemplateArtifact           → ConstraintPairs    (Step 2)
//! ReductionStage  (TemplateArtifact, Pairs)   → GeneratedSystem    (Step 3)
//! PresolveStage   &GeneratedSystem            → PresolvedSystem    (affine presolve)
//! SolveStage      (&GeneratedSystem,
//!                  Option<&PresolvedSystem>)  → Solution           (Step 4)
//! ```
//!
//! The presolve stage runs between the reduction and the solve whenever
//! `SynthesisOptions::presolve` is set (the default); `--no-presolve`
//! disables it and the solve stage consumes the raw Step-3 system.
//!
//! A [`SynthesisContext`] threads the options, diagnostics and per-stage
//! wall-clock timings through the run; [`Pipeline`] wires the stages
//! together and carries the pluggable [`QcqpBackend`]. `WeakSynthesis`,
//! `StrongSynthesis`, the certificate checker and the whole benchmark
//! harness are thin layers over this module.

pub mod artifacts;
pub mod context;
pub mod orchestrator;
pub mod stages;

use std::collections::HashMap;
use std::sync::Arc;

use polyinv_arith::Rational;
use polyinv_constraints::{ConstraintError, GeneratedSystem, SynthesisOptions};
use polyinv_lang::{Precondition, Program};
use polyinv_poly::UnknownId;
use polyinv_qcqp::{default_backend, QcqpBackend};

pub use artifacts::{instantiate_solution, ConstraintPairs, Solution, TemplateArtifact};
pub use context::{stage_names, StageTimings, SynthesisContext};
pub use orchestrator::{
    Orchestrator, OrchestratorOutcome, OrchestratorStats, SolveAttempt, SolvePlan,
};
pub use stages::{
    run_stage, PairStage, PresolveStage, ReductionStage, SolveStage, Stage, TemplateStage,
};

/// The staged synthesis pipeline: reduction options plus a pluggable solver
/// back-end.
#[derive(Debug, Clone)]
pub struct Pipeline {
    options: SynthesisOptions,
    backend: Arc<dyn QcqpBackend>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new(SynthesisOptions::default())
    }
}

impl Pipeline {
    /// A pipeline with the given reduction options and the default LM
    /// back-end.
    pub fn new(options: SynthesisOptions) -> Self {
        Pipeline {
            options,
            backend: default_backend(),
        }
    }

    /// Replaces the solver back-end (any [`QcqpBackend`] implementation).
    pub fn with_backend(mut self, backend: Arc<dyn QcqpBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The reduction options in use.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// The solver back-end in use.
    pub fn backend(&self) -> &Arc<dyn QcqpBackend> {
        &self.backend
    }

    /// Builds the per-run context for `program` under `pre`.
    pub fn context<'p>(&self, program: &'p Program, pre: &Precondition) -> SynthesisContext<'p> {
        SynthesisContext::new(program, pre, self.options.clone())
    }

    /// Runs Steps 1–3, producing the quadratic system and recording one
    /// timing entry per stage in `ctx`.
    ///
    /// The output is identical to `polyinv_constraints::generate` (the
    /// single-call form used by code that does not need staging).
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintError`] when pair generation rejects the
    /// program (function calls with recursive treatment disabled).
    pub fn generate(
        &self,
        ctx: &mut SynthesisContext<'_>,
    ) -> Result<GeneratedSystem, ConstraintError> {
        let templates = run_stage(ctx, &TemplateStage, ());
        let pairs = run_stage(ctx, &PairStage, &templates)?;
        Ok(run_stage(ctx, &ReductionStage, (templates, pairs)))
    }

    /// Runs Step 4 on a generated system with some unknowns pinned to exact
    /// values (pass an empty map to leave all unknowns free).
    ///
    /// When `options.presolve` is set (the default), the affine presolve
    /// fixpoint runs first — seeded with the pins — and the back-end solves
    /// the shrunk system; the returned [`Solution`] is back-substituted onto
    /// the full unknown space and carries the presolve statistics.
    pub fn solve(
        &self,
        ctx: &mut SynthesisContext<'_>,
        generated: &GeneratedSystem,
        fixed: HashMap<UnknownId, Rational>,
        warm_start: Option<Vec<f64>>,
    ) -> Solution {
        let presolved = if self.options.presolve {
            let stage = PresolveStage {
                pins: fixed.clone(),
            };
            Some(run_stage(ctx, &stage, generated))
        } else {
            None
        };
        let stage = SolveStage {
            backend: Arc::clone(&self.backend),
            fixed,
            warm_start,
        };
        run_stage(ctx, &stage, (generated, presolved.as_ref()))
    }

    /// Convenience: full Steps 1–4 run with nothing pinned.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintError`] when the generation stages reject the
    /// program.
    pub fn run(
        &self,
        program: &Program,
        pre: &Precondition,
    ) -> Result<(GeneratedSystem, Solution, StageTimings), ConstraintError> {
        let mut ctx = self.context(program, pre);
        let generated = self.generate(&mut ctx)?;
        let solution = self.solve(&mut ctx, &generated, HashMap::new(), None);
        let timings = ctx.timings().clone();
        Ok((generated, solution, timings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;
    use polyinv_lang::{parse_program, Precondition};

    #[test]
    fn staged_generation_matches_the_single_call_reduction() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let options = SynthesisOptions::default();

        let pipeline = Pipeline::new(options.clone());
        let mut ctx = pipeline.context(&program, &pre);
        let staged = pipeline.generate(&mut ctx).unwrap();
        let reference = polyinv_constraints::generate(&program, &pre, &options).unwrap();

        assert_eq!(staged.size(), reference.size());
        assert_eq!(
            staged.system.num_unknowns(),
            reference.system.num_unknowns()
        );
        assert_eq!(staged.pairs.len(), reference.pairs.len());
        assert_eq!(staged.recursive, reference.recursive);
    }

    #[test]
    fn every_generation_stage_records_a_timing_and_a_diagnostic() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let pipeline = Pipeline::default();
        let mut ctx = pipeline.context(&program, &pre);
        let _ = pipeline.generate(&mut ctx).unwrap();

        let stages: Vec<&str> = ctx.timings().iter().map(|(name, _)| name).collect();
        assert_eq!(
            stages,
            vec![
                stage_names::TEMPLATES,
                stage_names::PAIRS,
                stage_names::REDUCTION
            ]
        );
        assert_eq!(ctx.diagnostics().len(), 3);
        assert!(ctx.timings().generation() > std::time::Duration::ZERO);
    }

    #[test]
    fn backends_are_pluggable_without_touching_the_pipeline() {
        let program = parse_program(
            r#"
            tiny(x) {
                @pre(x >= 0);
                while x <= 2 do
                    x := x + 1
                od;
                return x
            }
        "#,
        )
        .unwrap();
        let pre = Precondition::from_program(&program);
        let options = SynthesisOptions::default().with_degree(1).with_upsilon(0);
        for name in ["lm", "penalty"] {
            let backend = polyinv_qcqp::backend_by_name(name).unwrap();
            let pipeline = Pipeline::new(options.clone()).with_backend(backend);
            let (_, solution, timings) = pipeline.run(&program, &pre).unwrap();
            assert_eq!(solution.backend, name);
            assert!(timings.solve() > std::time::Duration::ZERO);
        }
    }
}
