//! # polyinv — Polynomial Invariant Generation for Non-deterministic Recursive Programs
//!
//! A Rust implementation of the sound and semi-complete invariant generation
//! method of Chatterjee, Fu, Goharshady and Goharshady (PLDI 2020): templates
//! of polynomial inequalities are made inductive by translating every
//! initiation / consecution requirement through Putinar's positivstellensatz
//! into a system of quadratic constraints, which is then handed to a
//! quadratically-constrained solver.
//!
//! The crate re-exports the front-end (`polyinv-lang`), the reduction
//! (`polyinv-constraints`) and the solving substrate (`polyinv-qcqp`), and
//! adds the paper's four algorithms on top of an explicit staged
//! [`pipeline`]:
//!
//! * [`pipeline::Pipeline`] — the paper's Steps 1–4 as named stages with
//!   typed artifacts (`TemplateArtifact → ConstraintPairs →
//!   GeneratedSystem → Solution`), a shared [`pipeline::SynthesisContext`]
//!   carrying options/diagnostics/timings, and a pluggable
//!   [`QcqpBackend`](polyinv_qcqp::QcqpBackend) solve stage;
//! * [`check::check_inductive`] — a sound certificate checker: given a
//!   concrete invariant map (and post-conditions for recursive programs) it
//!   searches for the sum-of-squares certificates of every constraint pair,
//!   which proves inductiveness;
//! * [`check::falsify`] — a falsifier based on the concrete interpreter;
//! * [`WeakSynthesis`] / [`StrongSynthesis`] — the per-algorithm drivers
//!   (`WeakInvSynth`/`RecWeakInvSynth` and `StrongInvSynth`/
//!   `RecStrongInvSynth`). **Deprecated as public entry points**: the
//!   stable surface is the `Engine` of the `polyinv-api` crate, which wraps
//!   these drivers with program caching, request validation, batch
//!   execution and serializable reports. They remain the Engine's internal
//!   implementation.
//!
//! # Quick start
//!
//! The front door is the `polyinv-api` Engine: describe what you want as a
//! [`SynthesisRequest`](../polyinv_api/struct.SynthesisRequest.html) and get
//! a serializable report back.
//!
//! ```
//! use polyinv_api::{Engine, Mode, ReportStatus, SynthesisRequest};
//!
//! let engine = Engine::new();
//!
//! // The paper's running example (Figure 2): inspect the reduction.
//! let request = SynthesisRequest::generate_only(
//!     polyinv_lang::program::RUNNING_EXAMPLE_SOURCE,
//! );
//! let report = engine.run(&request)?;
//! assert_eq!(report.status, ReportStatus::Generated);
//! assert!(report.system_size > 500); // |S|, the paper's Table 2/3 metric
//! assert!(report.stage_seconds("templates") > 0.0);
//!
//! // Certify a candidate invariant of a bounded counter (check mode), then
//! // serialize the report as JSON.
//! let source = "inc(x) { @pre(x >= 0); while x <= 3 do x := x + 1 od; return x }";
//! let check = SynthesisRequest::check(source).with_target("1 > 0");
//! let report = engine.run(&check)?;
//! assert_eq!(report.status, ReportStatus::Certified);
//! assert!(report.to_json_string().contains("\"certified\""));
//! # Ok::<(), polyinv_api::ApiError>(())
//! ```
//!
//! The staged pipeline remains available for callers that need the raw
//! artifacts (see [`pipeline`]), and `polyinv-cli` ships the same surface
//! as the `polyinv` binary (`polyinv synth <file> --target "..." --json`).

pub mod bridge;
pub mod check;
pub mod pipeline;
pub mod strong;
pub mod weak;

pub use bridge::{system_to_problem, system_to_problem_with_fixed};
pub use check::{check_inductive, falsify, CheckOptions, CheckReport, PairCertificate};
pub use pipeline::{
    Orchestrator, OrchestratorOutcome, OrchestratorStats, Pipeline, Solution, SolveAttempt,
    SolvePlan, StageTimings, SynthesisContext,
};
#[allow(deprecated)]
pub use strong::{StrongOptions, StrongSynthesis};
#[allow(deprecated)]
pub use weak::{fix_targets, SynthesisOutcome, SynthesisStatus, TargetAssertion, WeakSynthesis};

/// Convenient glob-import for downstream users and examples.
pub mod prelude {
    pub use crate::check::{check_inductive, falsify, CheckOptions};
    pub use crate::pipeline::{Pipeline, StageTimings, SynthesisContext};
    #[allow(deprecated)]
    pub use crate::strong::{StrongOptions, StrongSynthesis};
    #[allow(deprecated)]
    pub use crate::weak::{SynthesisStatus, TargetAssertion, WeakSynthesis};
    pub use polyinv_constraints::{SosEncoding, SynthesisOptions};
    pub use polyinv_lang::{
        parse_assertion, parse_program, InvariantMap, Postcondition, Precondition,
    };
    pub use polyinv_qcqp::{backend_by_name, default_backend, QcqpBackend};
}

// Re-export the component crates so that downstream users only need one
// dependency.
pub use polyinv_arith as arith;
pub use polyinv_constraints as constraints;
pub use polyinv_lang as lang;
pub use polyinv_poly as poly;
pub use polyinv_qcqp as qcqp;
