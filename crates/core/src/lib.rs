//! # polyinv — Polynomial Invariant Generation for Non-deterministic Recursive Programs
//!
//! A Rust implementation of the sound and semi-complete invariant generation
//! method of Chatterjee, Fu, Goharshady and Goharshady (PLDI 2020): templates
//! of polynomial inequalities are made inductive by translating every
//! initiation / consecution requirement through Putinar's positivstellensatz
//! into a system of quadratic constraints, which is then handed to a
//! quadratically-constrained solver.
//!
//! The crate re-exports the front-end (`polyinv-lang`), the reduction
//! (`polyinv-constraints`) and the solving substrate (`polyinv-qcqp`), and
//! adds the paper's four algorithms on top of an explicit staged
//! [`pipeline`]:
//!
//! * [`pipeline::Pipeline`] — the paper's Steps 1–4 as named stages with
//!   typed artifacts (`TemplateArtifact → ConstraintPairs →
//!   GeneratedSystem → Solution`), a shared [`pipeline::SynthesisContext`]
//!   carrying options/diagnostics/timings, and a pluggable
//!   [`QcqpBackend`](polyinv_qcqp::QcqpBackend) solve stage;
//! * [`WeakSynthesis`] — `WeakInvSynth` / `RecWeakInvSynth`: find one
//!   inductive invariant optimizing an objective (typically: proving a given
//!   target assertion at a given label);
//! * [`StrongSynthesis`] — `StrongInvSynth` / `RecStrongInvSynth`: find a
//!   *representative set* of inductive invariants (the paper's theoretical
//!   algorithm uses Grigor'ev–Vorobjov; we enumerate by parallel multi-start
//!   search, see DESIGN.md §4);
//! * [`check::check_inductive`] — a sound certificate checker: given a
//!   concrete invariant map (and post-conditions for recursive programs) it
//!   searches for the sum-of-squares certificates of every constraint pair,
//!   which proves inductiveness;
//! * [`check::falsify`] — a falsifier based on the concrete interpreter.
//!
//! # Quick start
//!
//! ```
//! use polyinv::prelude::*;
//!
//! // The paper's running example (Figure 2).
//! let program = parse_program(polyinv_lang::program::RUNNING_EXAMPLE_SOURCE)?;
//! let pre = Precondition::from_program(&program);
//!
//! // Check the paper's own invariant for label 9 (the function endpoint):
//! // ret_sum < 0.5·n̄² + 0.5·n̄ + 1.
//! let mut invariant = InvariantMap::new();
//! let exit = program.main().exit_label();
//! let (poly, _) = parse_assertion(&program, "sum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0")?;
//! invariant.add(exit, poly);
//! // (A full inductive strengthening is required to *prove* it — see the
//! // `nondet_summation` example.)
//! assert_eq!(invariant.get(exit).len(), 1);
//!
//! // The staged pipeline exposes the reduction with per-stage timings:
//! let pipeline = Pipeline::default();
//! let mut ctx = pipeline.context(&program, &pre);
//! let generated = pipeline.generate(&mut ctx);
//! assert!(generated.size() > 0);
//! assert!(ctx.timings().generation() > std::time::Duration::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bridge;
pub mod check;
pub mod pipeline;
pub mod strong;
pub mod weak;

pub use bridge::{system_to_problem, system_to_problem_with_fixed};
pub use check::{check_inductive, falsify, CheckOptions, CheckReport, PairCertificate};
pub use pipeline::{Pipeline, Solution, StageTimings, SynthesisContext};
pub use strong::{StrongOptions, StrongSynthesis};
pub use weak::{SynthesisOutcome, SynthesisStatus, TargetAssertion, WeakSynthesis};

/// Convenient glob-import for downstream users and examples.
pub mod prelude {
    pub use crate::check::{check_inductive, falsify, CheckOptions};
    pub use crate::pipeline::{Pipeline, StageTimings, SynthesisContext};
    pub use crate::strong::{StrongOptions, StrongSynthesis};
    pub use crate::weak::{SynthesisStatus, TargetAssertion, WeakSynthesis};
    pub use polyinv_constraints::{SosEncoding, SynthesisOptions};
    pub use polyinv_lang::{
        parse_assertion, parse_program, InvariantMap, Postcondition, Precondition,
    };
    pub use polyinv_qcqp::{backend_by_name, default_backend, QcqpBackend};
}

// Re-export the component crates so that downstream users only need one
// dependency.
pub use polyinv_arith as arith;
pub use polyinv_constraints as constraints;
pub use polyinv_lang as lang;
pub use polyinv_poly as poly;
pub use polyinv_qcqp as qcqp;
