//! Weak invariant synthesis (`WeakInvSynth` / `RecWeakInvSynth`).
//!
//! The weak variant of the synthesis problem fixes an objective over the
//! template coefficients and asks for one invariant optimizing it. As in the
//! paper's evaluation, the objective used here is "prove the given target
//! assertion(s)": the template coefficients at the target labels are pinned
//! to the target's coefficients (the optimum of the paper's distance
//! objective), and the remaining quadratic system — whose solutions are the
//! inductive strengthenings — is handed to the QCQP back-end.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use polyinv_arith::Rational;
use polyinv_constraints::{generate, GeneratedSystem, SynthesisOptions};
use polyinv_lang::{InvariantMap, Label, Postcondition, Precondition, Program};
use polyinv_poly::{Polynomial, UnknownId};
use polyinv_qcqp::{AlmOptions, AlmSolver, LmOptions, LmSolver, SolveStatus};

use crate::bridge::{round_assignment, system_to_problem_with_fixed};

/// A target assertion `poly > 0` that the synthesized invariant must contain
/// at `label`.
#[derive(Debug, Clone)]
pub struct TargetAssertion {
    /// The label at which the assertion is required.
    pub label: Label,
    /// The polynomial `p` of the assertion `p > 0`.
    pub poly: Polynomial,
}

impl TargetAssertion {
    /// Creates a target assertion.
    pub fn new(label: Label, poly: Polynomial) -> Self {
        TargetAssertion { label, poly }
    }
}

/// The numerical back-end used to solve the quadratic system.
#[derive(Debug, Clone)]
pub enum SolverBackend {
    /// Projected Levenberg–Marquardt on the equality residuals (the
    /// default; best suited to the Cholesky encoding).
    Lm(LmOptions),
    /// The augmented-Lagrangian first-order solver (scales to larger
    /// systems at the cost of much slower convergence).
    Alm(AlmOptions),
}

impl Default for SolverBackend {
    fn default() -> Self {
        SolverBackend::Lm(LmOptions {
            max_iterations: 400,
            restarts: 4,
            tolerance: 1e-6,
            ..LmOptions::default()
        })
    }
}

/// The overall result of a synthesis attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisStatus {
    /// A solution of the quadratic system was found within tolerance; the
    /// instantiated templates form an inductive invariant containing the
    /// targets.
    Synthesized,
    /// The solver did not reach feasibility; the returned invariant is the
    /// best (infeasible) attempt and must not be trusted.
    Failed,
}

/// The outcome of [`WeakSynthesis::synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Whether the quadratic system was solved.
    pub status: SynthesisStatus,
    /// The synthesized invariant map (templates instantiated with the
    /// solver's assignment).
    pub invariant: InvariantMap,
    /// The synthesized post-conditions (recursive programs only).
    pub postconditions: Postcondition,
    /// `|S|`: the number of quadratic equalities and inequalities generated
    /// (the quantity reported in Tables 2 and 3 of the paper).
    pub system_size: usize,
    /// The number of unknowns of the quadratic system.
    pub num_unknowns: usize,
    /// The worst constraint violation of the returned assignment.
    pub violation: f64,
    /// Time spent generating the system (Steps 1–3).
    pub generation_time: Duration,
    /// Time spent solving (Step 4).
    pub solve_time: Duration,
}

/// The weak-synthesis driver.
#[derive(Debug, Clone, Default)]
pub struct WeakSynthesis {
    options: SynthesisOptions,
    backend: SolverBackend,
}

impl WeakSynthesis {
    /// Creates a driver with default reduction options (degree 2, one
    /// conjunct, ϒ = 2, Cholesky encoding).
    pub fn new() -> Self {
        WeakSynthesis::default()
    }

    /// Creates a driver with the given reduction options.
    pub fn with_options(options: SynthesisOptions) -> Self {
        WeakSynthesis {
            options,
            backend: SolverBackend::default(),
        }
    }

    /// Sets the solver back-end.
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The reduction options in use.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Runs Steps 1–3 only, returning the generated system (used by the
    /// benchmark harness to report `|V|` and `|S|` without solving).
    pub fn generate_only(&self, program: &Program, pre: &Precondition) -> GeneratedSystem {
        generate(program, pre, &self.options)
    }

    /// Synthesizes an inductive invariant containing the target assertions.
    ///
    /// # Panics
    ///
    /// Panics if a target mentions a monomial outside the template basis at
    /// its label (e.g. a cubic target with a quadratic template).
    pub fn synthesize(
        &self,
        program: &Program,
        pre: &Precondition,
        targets: &[TargetAssertion],
    ) -> SynthesisOutcome {
        // Multiplier-degree ladder: cheaper constant multipliers often
        // suffice and produce a much smaller quadratic system; the requested
        // ϒ is attempted only when the cheap attempt fails. Soundness is
        // unaffected (every accepted solution satisfies its own system).
        let mut ladder = vec![0];
        if self.options.upsilon > 0 {
            ladder.push(self.options.upsilon);
        }
        let mut last: Option<SynthesisOutcome> = None;
        for (step, &upsilon) in ladder.iter().enumerate() {
            let options = SynthesisOptions {
                upsilon,
                ..self.options.clone()
            };
            let outcome = self.synthesize_with(program, pre, targets, &options);
            let done = outcome.status == SynthesisStatus::Synthesized || step + 1 == ladder.len();
            last = Some(outcome);
            if done {
                break;
            }
        }
        last.expect("the ladder is never empty")
    }

    fn synthesize_with(
        &self,
        program: &Program,
        pre: &Precondition,
        targets: &[TargetAssertion],
        options: &SynthesisOptions,
    ) -> SynthesisOutcome {
        let generation_start = Instant::now();
        let generated = generate(program, pre, options);
        let generation_time = generation_start.elapsed();

        // Pin the template coefficients at the target labels.
        let fixed = fix_targets(&generated, targets);
        let (problem, mapping) = system_to_problem_with_fixed(&generated.system, &fixed);

        let solve_start = Instant::now();
        let warm = vec![0.05; problem.num_vars];
        let outcome = match &self.backend {
            SolverBackend::Lm(solver_options) => {
                LmSolver::new(solver_options.clone()).solve(&problem, Some(&warm))
            }
            SolverBackend::Alm(solver_options) => {
                AlmSolver::new(solver_options.clone()).solve(&problem, Some(&warm))
            }
        };
        let solve_time = solve_start.elapsed();

        // Reassemble the full assignment over all unknowns.
        let mut assignment = vec![0.0; generated.system.num_unknowns()];
        for (id, value) in &fixed {
            assignment[id.index()] = value.to_f64();
        }
        for (problem_index, id) in mapping.iter().enumerate() {
            assignment[id.index()] = outcome.assignment[problem_index];
        }
        let (invariant, postconditions) = instantiate_solution(program, &generated, &assignment);

        SynthesisOutcome {
            status: if outcome.status == SolveStatus::Feasible {
                SynthesisStatus::Synthesized
            } else {
                SynthesisStatus::Failed
            },
            invariant,
            postconditions,
            system_size: generated.size(),
            num_unknowns: generated.system.num_unknowns(),
            violation: outcome.violation,
            generation_time,
            solve_time,
        }
    }
}

/// Builds the map of s-variables pinned by the target assertions: for every
/// target, conjunct 0 (or the next free conjunct) of the template at the
/// target label is forced to equal the target polynomial coefficient-wise.
pub(crate) fn fix_targets(
    generated: &GeneratedSystem,
    targets: &[TargetAssertion],
) -> HashMap<UnknownId, Rational> {
    let mut fixed = HashMap::new();
    let mut used_conjuncts: HashMap<Label, usize> = HashMap::new();
    for target in targets {
        let template = generated.templates.invariant(target.label);
        let conjunct = *used_conjuncts.entry(target.label).or_insert(0);
        used_conjuncts.insert(target.label, conjunct + 1);
        assert!(
            conjunct < template.conjuncts.len(),
            "more targets at {} than template conjuncts",
            target.label
        );
        for monomial in &template.basis {
            let unknown = template
                .coefficient_unknown(conjunct, monomial)
                .expect("template coefficients are single unknowns");
            fixed.insert(unknown, target.poly.coefficient(monomial));
        }
        // Every monomial of the target must be representable.
        for (monomial, _) in target.poly.iter() {
            assert!(
                template.basis.contains(monomial),
                "target at {} uses monomial {} outside the degree-{} template",
                target.label,
                monomial,
                template.basis.iter().map(|m| m.degree()).max().unwrap_or(0)
            );
        }
    }
    fixed
}

/// Instantiates the templates of a generated system under a numeric
/// assignment of the unknowns, returning the invariant map and
/// post-conditions. Conjuncts that instantiate to the zero polynomial are
/// dropped.
pub(crate) fn instantiate_solution(
    program: &Program,
    generated: &GeneratedSystem,
    assignment: &[f64],
) -> (InvariantMap, Postcondition) {
    let rounded = round_assignment(assignment);
    let lookup = |u: UnknownId| rounded[u.index()];
    let mut invariant = InvariantMap::new();
    for function in program.functions() {
        for &label in function.labels() {
            let template = generated.templates.invariant(label);
            for poly in template.instantiate(lookup) {
                if !poly.is_zero() {
                    invariant.add(label, poly);
                }
            }
        }
    }
    let mut postconditions = Postcondition::new();
    for (name, template) in &generated.templates.postconditions {
        for poly in template.instantiate(lookup) {
            if !poly.is_zero() {
                postconditions.add(name, poly);
            }
        }
    }
    (invariant, postconditions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_constraints::SosEncoding;
    use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;
    use polyinv_lang::{parse_assertion, parse_program};

    #[test]
    fn generate_only_reports_paper_scale_metrics() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let synth = WeakSynthesis::new();
        let generated = synth.generate_only(&program, &pre);
        // |V^sum| = 5, matching the running example.
        assert_eq!(program.main().vars().len(), 5);
        assert!(generated.size() > 500);
    }

    #[test]
    fn fixing_targets_pins_whole_template_rows() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default());
        let exit = program.main().exit_label();
        let (poly, _) =
            parse_assertion(&program, "sum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0").unwrap();
        let fixed = fix_targets(&generated, &[TargetAssertion::new(exit, poly.clone())]);
        // All 21 coefficients of the exit template are pinned.
        assert_eq!(fixed.len(), 21);
        // The pinned values reproduce the target polynomial.
        let template = generated.templates.invariant(exit);
        let instantiated = template.instantiate(|u| fixed.get(&u).copied().unwrap_or_default());
        assert_eq!(instantiated[0], poly);
    }

    #[test]
    #[should_panic(expected = "outside the degree")]
    fn cubic_target_with_quadratic_template_is_rejected() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default());
        let exit = program.main().exit_label();
        let (poly, _) = parse_assertion(&program, "sum", "n*n*n + 1 > 0").unwrap();
        fix_targets(&generated, &[TargetAssertion::new(exit, poly)]);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "slow without optimizations; run with `cargo test --release`")]
    fn synthesis_on_a_tiny_loop_finds_a_feasible_invariant() {
        // A minimal program whose target is easy to strengthen: x only
        // increases, prove x + 1 > 0 at the end.
        let source = r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x + 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        let pre = Precondition::from_program(&program);
        let exit = program.main().exit_label();
        let (target, _) = parse_assertion(&program, "inc", "x + 1 > 0").unwrap();
        let options = SynthesisOptions {
            degree: 1,
            size: 1,
            upsilon: 2,
            encoding: SosEncoding::Cholesky,
            ..SynthesisOptions::default()
        };
        let synth = WeakSynthesis::with_options(options);
        let outcome = synth.synthesize(&program, &pre, &[TargetAssertion::new(exit, target)]);
        assert_eq!(outcome.status, SynthesisStatus::Synthesized, "violation {}", outcome.violation);
        // The synthesized invariant contains the target at the exit label.
        assert!(!outcome.invariant.get(exit).is_empty());
    }
}
