//! Weak invariant synthesis (`WeakInvSynth` / `RecWeakInvSynth`).
//!
//! The weak variant of the synthesis problem fixes an objective over the
//! template coefficients and asks for one invariant optimizing it. As in the
//! paper's evaluation, the objective used here is "prove the given target
//! assertion(s)": the template coefficients at the target labels are pinned
//! to the target's coefficients (the optimum of the paper's distance
//! objective), and the remaining quadratic system — whose solutions are the
//! inductive strengthenings — is handed to the QCQP back-end.
//!
//! The driver is a thin layer over the staged [`Pipeline`]: Steps 1–3 run as
//! the template/pair/reduction stages, target pinning happens between the
//! reduction and solve stages, and Step 4 is the pluggable
//! [`QcqpBackend`](polyinv_qcqp::QcqpBackend) solve stage.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use polyinv_arith::Rational;
use polyinv_constraints::{ConstraintError, GeneratedSystem, PresolveStats, SynthesisOptions};
use polyinv_lang::{InvariantMap, Label, Postcondition, Precondition, Program};
use polyinv_poly::{Polynomial, UnknownId};
use polyinv_qcqp::{default_backend, QcqpBackend, SolverStats};

use crate::pipeline::{Pipeline, StageTimings};

/// A target assertion `poly > 0` that the synthesized invariant must contain
/// at `label`.
#[derive(Debug, Clone)]
pub struct TargetAssertion {
    /// The label at which the assertion is required.
    pub label: Label,
    /// The polynomial `p` of the assertion `p > 0`.
    pub poly: Polynomial,
}

impl TargetAssertion {
    /// Creates a target assertion.
    pub fn new(label: Label, poly: Polynomial) -> Self {
        TargetAssertion { label, poly }
    }
}

/// The overall result of a synthesis attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisStatus {
    /// A solution of the quadratic system was found within tolerance; the
    /// instantiated templates form an inductive invariant containing the
    /// targets.
    Synthesized,
    /// The solver did not reach feasibility; the returned invariant is the
    /// best (infeasible) attempt and must not be trusted.
    Failed,
}

/// The outcome of [`WeakSynthesis::synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Whether the quadratic system was solved.
    pub status: SynthesisStatus,
    /// The synthesized invariant map (templates instantiated with the
    /// solver's assignment).
    pub invariant: InvariantMap,
    /// The synthesized post-conditions (recursive programs only).
    pub postconditions: Postcondition,
    /// `|S|`: the number of quadratic equalities and inequalities generated
    /// (the quantity reported in Tables 2 and 3 of the paper).
    pub system_size: usize,
    /// The number of unknowns of the quadratic system.
    pub num_unknowns: usize,
    /// The worst constraint violation of the returned assignment.
    pub violation: f64,
    /// Time spent generating the system (Steps 1–3), summed over the
    /// ϒ-ladder attempts.
    pub generation_time: Duration,
    /// Time spent solving (Step 4), summed over the ϒ-ladder attempts.
    pub solve_time: Duration,
    /// Per-stage wall-clock breakdown (accumulated over ladder attempts).
    pub timings: StageTimings,
    /// The stable name of the back-end that produced the solution.
    pub backend: &'static str,
    /// Solver statistics of the final (accepted or last) ladder attempt:
    /// iterations/restarts, final residual, nnz(J)/nnz(L) and the
    /// factor/solve wall-clock split.
    pub solver: SolverStats,
    /// Statistics of the affine presolve of the final (accepted or last)
    /// ladder attempt (`None` when presolve was disabled).
    pub presolve: Option<PresolveStats>,
}

/// The weak-synthesis driver.
///
/// Deprecated as a public entry point: the stable surface is
/// `polyinv_api::Engine` with `Mode::Weak`, which adds program caching,
/// request validation and serializable reports on top of this driver. The
/// driver remains as the Engine's internal implementation.
#[deprecated(
    since = "0.2.0",
    note = "use `polyinv_api::Engine` with a weak-mode `SynthesisRequest`"
)]
#[derive(Debug, Clone)]
pub struct WeakSynthesis {
    options: SynthesisOptions,
    backend: Arc<dyn QcqpBackend>,
}

#[allow(deprecated)]
impl Default for WeakSynthesis {
    fn default() -> Self {
        WeakSynthesis {
            options: SynthesisOptions::default(),
            backend: default_backend(),
        }
    }
}

#[allow(deprecated)]
impl WeakSynthesis {
    /// Creates a driver with default reduction options (degree 2, one
    /// conjunct, ϒ = 2, Cholesky encoding) and the default LM back-end.
    pub fn new() -> Self {
        WeakSynthesis::default()
    }

    /// Creates a driver with the given reduction options.
    pub fn with_options(options: SynthesisOptions) -> Self {
        WeakSynthesis {
            options,
            ..WeakSynthesis::default()
        }
    }

    /// Sets the solver back-end (any [`QcqpBackend`] implementation).
    pub fn backend(mut self, backend: Arc<dyn QcqpBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The reduction options in use.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// The pipeline this driver runs (stages 1–4 with the configured
    /// back-end).
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(self.options.clone()).with_backend(Arc::clone(&self.backend))
    }

    /// Runs Steps 1–3 only, returning the generated system (used by the
    /// benchmark harness to report `|V|` and `|S|` without solving).
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintError`] when the generation stages reject the
    /// program.
    pub fn generate_only(
        &self,
        program: &Program,
        pre: &Precondition,
    ) -> Result<GeneratedSystem, ConstraintError> {
        Ok(self.generate_staged(program, pre)?.0)
    }

    /// Runs Steps 1–3 only, returning the generated system together with
    /// the per-stage timings.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintError`] when the generation stages reject the
    /// program.
    pub fn generate_staged(
        &self,
        program: &Program,
        pre: &Precondition,
    ) -> Result<(GeneratedSystem, StageTimings), ConstraintError> {
        let pipeline = self.pipeline();
        let mut ctx = pipeline.context(program, pre);
        let generated = pipeline.generate(&mut ctx)?;
        let timings = ctx.timings().clone();
        Ok((generated, timings))
    }

    /// Synthesizes an inductive invariant containing the target assertions.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintError`] when the generation stages reject the
    /// program.
    ///
    /// # Panics
    ///
    /// Panics if a target mentions a monomial outside the template basis at
    /// its label (e.g. a cubic target with a quadratic template).
    pub fn synthesize(
        &self,
        program: &Program,
        pre: &Precondition,
        targets: &[TargetAssertion],
    ) -> Result<SynthesisOutcome, ConstraintError> {
        // Multiplier-degree ladder: cheaper constant multipliers often
        // suffice and produce a much smaller quadratic system; the requested
        // ϒ is attempted only when the cheap attempt fails. Soundness is
        // unaffected (every accepted solution satisfies its own system).
        let ladder = self.options.upsilon_ladder();
        let mut total = StageTimings::new();
        let mut last: Option<SynthesisOutcome> = None;
        for (step, &upsilon) in ladder.iter().enumerate() {
            let options = self.options.clone().with_upsilon(upsilon);
            let mut outcome = self.synthesize_with(program, pre, targets, &options)?;
            total.absorb(&outcome.timings);
            outcome.timings = total.clone();
            outcome.generation_time = total.generation();
            outcome.solve_time = total.solve();
            let done = outcome.status == SynthesisStatus::Synthesized || step + 1 == ladder.len();
            last = Some(outcome);
            if done {
                break;
            }
        }
        Ok(last.expect("the ladder is never empty"))
    }

    fn synthesize_with(
        &self,
        program: &Program,
        pre: &Precondition,
        targets: &[TargetAssertion],
        options: &SynthesisOptions,
    ) -> Result<SynthesisOutcome, ConstraintError> {
        let pipeline = Pipeline::new(options.clone()).with_backend(Arc::clone(&self.backend));
        let mut ctx = pipeline.context(program, pre);
        let generated = pipeline.generate(&mut ctx)?;

        // Pin the template coefficients at the target labels.
        let fixed = fix_targets(&generated, targets);
        let solution = pipeline.solve(&mut ctx, &generated, fixed, None);

        Ok(SynthesisOutcome {
            status: if solution.feasible {
                SynthesisStatus::Synthesized
            } else {
                SynthesisStatus::Failed
            },
            invariant: solution.invariant,
            postconditions: solution.postconditions,
            system_size: generated.size(),
            num_unknowns: generated.system.num_unknowns(),
            violation: solution.violation,
            generation_time: ctx.timings().generation(),
            solve_time: ctx.timings().solve(),
            timings: ctx.timings().clone(),
            backend: solution.backend,
            solver: solution.stats,
            presolve: solution.presolve,
        })
    }
}

/// Builds the map of s-variables pinned by the target assertions: for every
/// target, conjunct 0 (or the next free conjunct) of the template at the
/// target label is forced to equal the target polynomial coefficient-wise.
///
/// Public so that external drivers (the validation subsystem's
/// synthesize-and-validate loop) can pin targets exactly like
/// [`WeakSynthesis`] does before calling [`Pipeline::solve`].
///
/// # Panics
///
/// Panics if a label receives more targets than the template has conjuncts,
/// or if a target mentions a monomial outside the template basis at its
/// label (e.g. a cubic target with a quadratic template).
pub fn fix_targets(
    generated: &GeneratedSystem,
    targets: &[TargetAssertion],
) -> HashMap<UnknownId, Rational> {
    let mut fixed = HashMap::new();
    let mut used_conjuncts: HashMap<Label, usize> = HashMap::new();
    for target in targets {
        let template = generated.templates.invariant(target.label);
        let conjunct = *used_conjuncts.entry(target.label).or_insert(0);
        used_conjuncts.insert(target.label, conjunct + 1);
        assert!(
            conjunct < template.conjuncts.len(),
            "more targets at {} than template conjuncts",
            target.label
        );
        for monomial in &template.basis {
            let unknown = template
                .coefficient_unknown(conjunct, monomial)
                .expect("template coefficients are single unknowns");
            fixed.insert(unknown, target.poly.coefficient(monomial));
        }
        // Every monomial of the target must be representable.
        for (monomial, _) in target.poly.iter() {
            assert!(
                template.basis.contains(monomial),
                "target at {} uses monomial {} outside the degree-{} template",
                target.label,
                monomial,
                template.basis.iter().map(|m| m.degree()).max().unwrap_or(0)
            );
        }
    }
    fixed
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::pipeline::stage_names;
    use polyinv_constraints::{generate, SosEncoding};
    use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;
    use polyinv_lang::{parse_assertion, parse_program};

    #[test]
    fn generate_only_reports_paper_scale_metrics() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let synth = WeakSynthesis::new();
        let generated = synth.generate_only(&program, &pre).unwrap();
        // |V^sum| = 5, matching the running example.
        assert_eq!(program.main().vars().len(), 5);
        assert!(generated.size() > 500);
    }

    #[test]
    fn fixing_targets_pins_whole_template_rows() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let exit = program.main().exit_label();
        let (poly, _) =
            parse_assertion(&program, "sum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0").unwrap();
        let fixed = fix_targets(&generated, &[TargetAssertion::new(exit, poly.clone())]);
        // All 21 coefficients of the exit template are pinned.
        assert_eq!(fixed.len(), 21);
        // The pinned values reproduce the target polynomial.
        let template = generated.templates.invariant(exit);
        let instantiated = template.instantiate(|u| fixed.get(&u).copied().unwrap_or_default());
        assert_eq!(instantiated[0], poly);
    }

    #[test]
    #[should_panic(expected = "outside the degree")]
    fn cubic_target_with_quadratic_template_is_rejected() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let exit = program.main().exit_label();
        let (poly, _) = parse_assertion(&program, "sum", "n*n*n + 1 > 0").unwrap();
        fix_targets(&generated, &[TargetAssertion::new(exit, poly)]);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn synthesis_on_a_tiny_loop_finds_a_feasible_invariant() {
        // A minimal program whose target is easy to strengthen: x only
        // increases, prove x + 1 > 0 at the end.
        let source = r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x + 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        let pre = Precondition::from_program(&program);
        let exit = program.main().exit_label();
        let (target, _) = parse_assertion(&program, "inc", "x + 1 > 0").unwrap();
        let options = SynthesisOptions::with_degree_and_size(1, 1)
            .with_upsilon(2)
            .with_encoding(SosEncoding::Cholesky);
        let synth = WeakSynthesis::with_options(options);
        let outcome = synth
            .synthesize(&program, &pre, &[TargetAssertion::new(exit, target)])
            .unwrap();
        assert_eq!(
            outcome.status,
            SynthesisStatus::Synthesized,
            "violation {}",
            outcome.violation
        );
        // The synthesized invariant contains the target at the exit label.
        assert!(!outcome.invariant.get(exit).is_empty());
        // The pipeline recorded every stage, and the reported aggregates are
        // consistent with the per-stage table.
        assert_eq!(outcome.backend, "lm");
        assert!(outcome.timings.get(stage_names::TEMPLATES) > Duration::ZERO);
        assert_eq!(outcome.generation_time, outcome.timings.generation());
        assert_eq!(outcome.solve_time, outcome.timings.solve());
    }
}
