//! Bridging the exact quadratic systems of the reduction to the numeric
//! problems consumed by the QCQP substrate.

use std::collections::HashMap;

use polyinv_arith::Rational;
use polyinv_constraints::QuadraticSystem;
use polyinv_poly::{QuadExpr, UnknownId};
use polyinv_qcqp::{Problem, PsdConstraint, QuadraticForm};

/// Converts a quadratic system into a numeric [`Problem`] over all of its
/// unknowns (unknown `i` becomes problem variable `i`).
pub fn system_to_problem(system: &QuadraticSystem) -> Problem {
    let (problem, _mapping) = system_to_problem_with_fixed(system, &HashMap::new());
    problem
}

/// Converts a quadratic system into a numeric [`Problem`] while *fixing*
/// some unknowns to the given rational values (partial evaluation).
///
/// Returns the problem together with the mapping from problem-variable index
/// to the original [`UnknownId`]. Fixed unknowns do not appear as problem
/// variables; constraints that become trivially satisfied are dropped.
///
/// Fixing all template (s-) variables turns the Gram-encoded system into the
/// convex certificate-search problem used by the invariant checker.
pub fn system_to_problem_with_fixed(
    system: &QuadraticSystem,
    fixed: &HashMap<UnknownId, Rational>,
) -> (Problem, Vec<UnknownId>) {
    // Build the index mapping for free unknowns.
    let total = system.num_unknowns();
    let mut to_problem_index: Vec<Option<usize>> = vec![None; total];
    let mut mapping: Vec<UnknownId> = Vec::new();
    for index in 0..total {
        let id = UnknownId::new(index);
        if !fixed.contains_key(&id) {
            to_problem_index[index] = Some(mapping.len());
            mapping.push(id);
        }
    }

    let mut problem = Problem::new(mapping.len());
    let convert =
        |expr: &QuadExpr| -> QuadraticForm { convert_expr(expr, fixed, &to_problem_index) };

    for eq in &system.equalities {
        let form = convert(eq);
        if form.linear.is_empty() && form.quadratic.is_empty() {
            // Fully fixed. A constant equality is either trivially true and
            // can be dropped, or trivially false and must be kept so that the
            // problem is reported infeasible — silently dropping it would be
            // unsound (the certificate would not exist).
            if form.constant.abs() <= 1e-12 {
                continue;
            }
        }
        problem.equalities.push(form);
    }
    for ineq in &system.inequalities {
        let form = convert(ineq);
        if form.linear.is_empty() && form.quadratic.is_empty() && form.constant >= -1e-12 {
            continue;
        }
        problem.inequalities.push(form);
    }
    for block in &system.psd_blocks {
        // PSD blocks never contain fixed unknowns (only Gram entries), but
        // guard anyway.
        if block
            .entries
            .iter()
            .any(|id| to_problem_index[id.index()].is_none())
        {
            continue;
        }
        problem.psd.push(PsdConstraint {
            dim: block.dim,
            indices: block
                .entries
                .iter()
                .map(|id| to_problem_index[id.index()].expect("checked above"))
                .collect(),
        });
    }
    (problem, mapping)
}

fn convert_expr(
    expr: &QuadExpr,
    fixed: &HashMap<UnknownId, Rational>,
    to_problem_index: &[Option<usize>],
) -> QuadraticForm {
    let mut form = QuadraticForm::constant(expr.constant_part().to_f64());
    let mut linear_acc: HashMap<usize, f64> = HashMap::new();
    let mut quad_acc: HashMap<(usize, usize), f64> = HashMap::new();

    for &(u, c) in expr.linear_terms() {
        match fixed.get(&u) {
            Some(value) => form.constant += c.to_f64() * value.to_f64(),
            None => {
                let index = to_problem_index[u.index()].expect("free unknown has an index");
                *linear_acc.entry(index).or_default() += c.to_f64();
            }
        }
    }
    for &((a, b), c) in expr.quadratic_terms() {
        let coeff = c.to_f64();
        match (fixed.get(&a), fixed.get(&b)) {
            (Some(va), Some(vb)) => form.constant += coeff * va.to_f64() * vb.to_f64(),
            (Some(va), None) => {
                let index = to_problem_index[b.index()].expect("free unknown has an index");
                *linear_acc.entry(index).or_default() += coeff * va.to_f64();
            }
            (None, Some(vb)) => {
                let index = to_problem_index[a.index()].expect("free unknown has an index");
                *linear_acc.entry(index).or_default() += coeff * vb.to_f64();
            }
            (None, None) => {
                let ia = to_problem_index[a.index()].expect("free unknown has an index");
                let ib = to_problem_index[b.index()].expect("free unknown has an index");
                let key = if ia <= ib { (ia, ib) } else { (ib, ia) };
                *quad_acc.entry(key).or_default() += coeff;
            }
        }
    }

    let mut linear: Vec<(usize, f64)> = linear_acc.into_iter().filter(|&(_, c)| c != 0.0).collect();
    linear.sort_by_key(|&(i, _)| i);
    form.linear = linear;
    let mut quadratic: Vec<(usize, usize, f64)> = quad_acc
        .into_iter()
        .filter(|&(_, c)| c != 0.0)
        .map(|((i, j), c)| (i, j, c))
        .collect();
    quadratic.sort_by_key(|&(i, j, _)| (i, j));
    form.quadratic = quadratic;
    form
}

/// Rounds a numeric assignment of the unknowns to rationals with small
/// denominators (used to present synthesized invariants exactly).
pub fn round_assignment(assignment: &[f64]) -> Vec<Rational> {
    assignment
        .iter()
        .map(|&value| {
            // Snap values that are numerically close to a "nice" rational
            // with denominator up to 64, otherwise keep a fine approximation.
            let snapped = Rational::approximate((value * 64.0).round() / 64.0);
            if (snapped.to_f64() - value).abs() < 1e-4 {
                snapped
            } else {
                Rational::approximate(value)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_constraints::{generate, SynthesisOptions};
    use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;
    use polyinv_lang::{parse_program, Precondition};

    #[test]
    fn conversion_preserves_dimensions_and_constraint_counts() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let problem = system_to_problem(&generated.system);
        assert_eq!(problem.num_vars, generated.system.num_unknowns());
        assert_eq!(problem.equalities.len(), generated.system.equalities.len());
        assert_eq!(
            problem.inequalities.len(),
            generated.system.inequalities.len()
        );
    }

    #[test]
    fn violations_agree_between_exact_and_numeric_forms() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let problem = system_to_problem(&generated.system);
        let assignment = vec![0.25; problem.num_vars];
        let exact = generated.system.max_violation(&assignment);
        // The numeric problem additionally checks box bounds, which are not
        // violated at 0.25, so the two measures must agree.
        let numeric = problem.max_violation(&assignment);
        assert!((exact - numeric).abs() < 1e-9);
    }

    #[test]
    fn fixing_unknowns_removes_them_from_the_problem() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let template_ids = generated.system.registry.template_unknowns();
        let fixed: HashMap<_, _> = template_ids
            .iter()
            .map(|&id| (id, Rational::zero()))
            .collect();
        let (problem, mapping) = system_to_problem_with_fixed(&generated.system, &fixed);
        assert_eq!(
            problem.num_vars,
            generated.system.num_unknowns() - template_ids.len()
        );
        assert_eq!(mapping.len(), problem.num_vars);
        // No mapped unknown is a template unknown.
        assert!(mapping.iter().all(|id| !template_ids.contains(id)));
    }

    #[test]
    fn rounding_recovers_clean_rationals() {
        let rounded = round_assignment(&[0.5000000001, -0.2499999, 3.0, 0.3333333333]);
        assert_eq!(rounded[0], Rational::new(1, 2));
        assert_eq!(rounded[1], Rational::new(-1, 4));
        assert_eq!(rounded[2], Rational::from_int(3));
        assert!((rounded[3].to_f64() - 1.0 / 3.0).abs() < 1e-2);
    }
}
