//! Strong invariant synthesis (`StrongInvSynth` / `RecStrongInvSynth`).
//!
//! The strong variant asks for a *representative set* of inductive
//! invariants. The paper's theoretical algorithm obtains one solution per
//! connected component of the solution variety via Grigor'ev–Vorobjov, but
//! explicitly notes (Remark 8) that the procedure is impractical and never
//! runs it. This module provides the practical substitute documented in
//! DESIGN.md §4: the quadratic system produced by the pipeline's generation
//! stages is solved repeatedly from different random seeds and with
//! diversified regularization objectives; distinct feasible solutions
//! (measured by the distance between their template coefficient vectors)
//! form the returned representative set.
//!
//! The solve attempts are independent, so they run **in parallel**; the
//! deduplication that builds the representative set scans the outcomes in
//! attempt order, keeping the result identical to the sequential algorithm.

use polyinv_constraints::{ConstraintError, SynthesisOptions};
use polyinv_lang::{InvariantMap, Postcondition, Precondition, Program};
use polyinv_qcqp::par::parallel_indexed;
use polyinv_qcqp::{LmOptions, LmSolver, QuadraticForm, SolveStatus};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::bridge::system_to_problem;
use crate::pipeline::{instantiate_solution, Pipeline};

/// Options of the multi-start enumeration.
#[derive(Debug, Clone)]
pub struct StrongOptions {
    /// Reduction options (degree, size, ϒ, encoding, …).
    pub synthesis: SynthesisOptions,
    /// Solver options used for each start.
    pub solver: LmOptions,
    /// Number of solve attempts.
    pub attempts: usize,
    /// Two solutions whose template-coefficient vectors differ by less than
    /// this (Euclidean) distance are considered the same invariant.
    pub distinctness_threshold: f64,
}

impl Default for StrongOptions {
    fn default() -> Self {
        StrongOptions {
            synthesis: SynthesisOptions::default(),
            solver: LmOptions {
                restarts: 1,
                objective_weight: 0.02,
                ..LmOptions::default()
            },
            attempts: 8,
            distinctness_threshold: 0.5,
        }
    }
}

/// A member of the representative set returned by [`StrongSynthesis`].
#[derive(Debug, Clone)]
pub struct StrongSolution {
    /// The invariant map.
    pub invariant: InvariantMap,
    /// The post-conditions (recursive programs).
    pub postconditions: Postcondition,
    /// The template-coefficient vector of the solution (used for
    /// distinctness).
    pub coefficients: Vec<f64>,
}

/// The strong-synthesis driver.
///
/// Deprecated as a public entry point: the stable surface is
/// `polyinv_api::Engine` with `Mode::Strong`. The driver remains as the
/// Engine's internal implementation.
#[deprecated(
    since = "0.2.0",
    note = "use `polyinv_api::Engine` with a strong-mode `SynthesisRequest`"
)]
#[derive(Debug, Clone, Default)]
pub struct StrongSynthesis {
    options: StrongOptions,
}

#[allow(deprecated)]
impl StrongSynthesis {
    /// Creates a driver with the given options.
    pub fn new(options: StrongOptions) -> Self {
        StrongSynthesis { options }
    }

    /// Enumerates a representative set of inductive invariants of the
    /// requested shape.
    ///
    /// Like the weak driver, enumeration climbs the multiplier-degree
    /// ladder: the much smaller ϒ = 0 system (constant multipliers) is
    /// attempted first, and the full-ϒ reduction only when the cheap rung
    /// finds nothing. Soundness is unaffected — every accepted solution
    /// satisfies the system it was solved against.
    ///
    /// # Errors
    ///
    /// Returns a [`ConstraintError`] when the generation stages reject the
    /// program.
    pub fn enumerate(
        &self,
        program: &Program,
        pre: &Precondition,
    ) -> Result<Vec<StrongSolution>, ConstraintError> {
        let ladder = self.options.synthesis.upsilon_ladder();
        for (step, &upsilon) in ladder.iter().enumerate() {
            let options = self.options.synthesis.clone().with_upsilon(upsilon);
            let solutions = self.enumerate_with(program, pre, &options)?;
            if !solutions.is_empty() || step + 1 == ladder.len() {
                return Ok(solutions);
            }
        }
        unreachable!("the ladder is never empty")
    }

    fn enumerate_with(
        &self,
        program: &Program,
        pre: &Precondition,
        synthesis: &SynthesisOptions,
    ) -> Result<Vec<StrongSolution>, ConstraintError> {
        let pipeline = Pipeline::new(synthesis.clone());
        let mut ctx = pipeline.context(program, pre);
        let generated = pipeline.generate(&mut ctx)?;
        let template_ids = generated.system.registry.template_unknowns();
        let base_problem = system_to_problem(&generated.system);

        // Independent diversified attempts, fanned out over worker threads.
        // Each attempt starts from its own slightly-positive warm start:
        // centered near 0.05 (keeping the Cholesky diagonals in the interior
        // of their bounds, like the pipeline's solve stage) but jittered
        // deterministically per attempt, so the attempts explore different
        // basins even when the solver runs a single restart.
        let attempts = self.options.attempts.max(1);
        let outcomes = parallel_indexed(attempts, |attempt| {
            // Attempt 0 keeps the uniform interior point the solve stage
            // uses (the most reliable start); later attempts jitter it with
            // a per-attempt seeded generator, staying in `[0.01, 0.09)` so
            // Cholesky diagonals and witnesses start inside their bounds.
            let warm: Vec<f64> = if attempt == 0 {
                vec![0.05; base_problem.num_vars]
            } else {
                let mut rng =
                    StdRng::seed_from_u64(self.options.solver.seed.wrapping_add(attempt as u64));
                (0..base_problem.num_vars)
                    .map(|_| rng.random_range(0.01..0.09))
                    .collect()
            };
            let mut problem = base_problem.clone();
            // Diversify: alternate between pushing the template coefficients
            // towards and away from zero along directions derived from the
            // attempt index.
            let mut objective = QuadraticForm::constant(0.0);
            for (k, id) in template_ids.iter().enumerate() {
                let direction = if (attempt + k) % 2 == 0 { 1.0 } else { -1.0 };
                let weight = 0.01 * direction * ((attempt + 1) as f64);
                objective.linear.push((id.index(), weight));
            }
            problem.objective = Some(objective);

            let solver = LmSolver::new(LmOptions {
                seed: self.options.solver.seed.wrapping_add(attempt as u64 * 7919),
                // The attempt loop is already the parallel level.
                parallel_restarts: false,
                ..self.options.solver.clone()
            });
            solver.solve(&problem, Some(&warm))
        });

        // Deterministic dedup in attempt order.
        let mut solutions: Vec<StrongSolution> = Vec::new();
        for outcome in outcomes {
            if outcome.status != SolveStatus::Feasible {
                continue;
            }
            let coefficients: Vec<f64> = template_ids
                .iter()
                .map(|id| outcome.assignment[id.index()])
                .collect();
            let is_new = solutions.iter().all(|existing| {
                let distance: f64 = existing
                    .coefficients
                    .iter()
                    .zip(&coefficients)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                distance > self.options.distinctness_threshold
            });
            if is_new {
                let (invariant, postconditions) =
                    instantiate_solution(program, &generated, &outcome.assignment);
                solutions.push(StrongSolution {
                    invariant,
                    postconditions,
                    coefficients,
                });
            }
        }
        Ok(solutions)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use polyinv_constraints::SosEncoding;
    use polyinv_lang::parse_program;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn enumeration_finds_multiple_distinct_invariants_for_a_tiny_program() {
        // x := x + 1 in a bounded loop admits many linear invariants.
        let source = r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 5 do
                    x := x + 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        let pre = Precondition::from_program(&program);
        let options = StrongOptions {
            synthesis: SynthesisOptions::with_degree_and_size(1, 1)
                .with_upsilon(2)
                .with_encoding(SosEncoding::Cholesky),
            solver: LmOptions {
                restarts: 1,
                objective_weight: 0.02,
                tolerance: 1e-6,
                ..LmOptions::default()
            },
            attempts: 4,
            distinctness_threshold: 0.25,
        };
        let solutions = StrongSynthesis::new(options)
            .enumerate(&program, &pre)
            .unwrap();
        assert!(
            !solutions.is_empty(),
            "at least one inductive invariant should be found"
        );
        // Every returned solution is a *distinct* coefficient vector.
        for (i, a) in solutions.iter().enumerate() {
            for b in solutions.iter().skip(i + 1) {
                let distance: f64 = a
                    .coefficients
                    .iter()
                    .zip(&b.coefficients)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                assert!(distance > 0.25);
            }
        }
    }
}
