//! Certificate-based checking and trace-based falsification of candidate
//! invariants.
//!
//! * [`check_inductive`] instantiates the paper's constraint pairs with a
//!   *given* invariant map (and post-condition) and searches for the
//!   sum-of-squares certificate of every pair. If every pair is certified,
//!   the map is an inductive invariant by Lemma 3.6 — this is the sound
//!   direction, independent of how the candidate was produced.
//! * [`falsify`] executes the program on sampled inputs and non-deterministic
//!   choices and reports any reachable state that violates the candidate —
//!   the complementary (refutation) direction.

use std::collections::HashMap;

use polyinv_arith::Rational;
use polyinv_constraints::pairs::{generate_pairs, PairKind, PairOptions};
use polyinv_constraints::putinar::{translate_pair, PutinarOptions, SosEncoding};
use polyinv_constraints::template::{LabelTemplate, TemplateSet};
use polyinv_constraints::{ConstraintError, QuadraticSystem, UnknownRegistry};
use polyinv_lang::interp::{Interpreter, SeededOracle};
use polyinv_lang::{Cfg, InvariantMap, Label, Postcondition, Precondition, Program};
use polyinv_poly::{MonomialTable, TemplatePoly};
use polyinv_qcqp::par::parallel_indexed;
use polyinv_qcqp::{LmOptions, LmSolver, QcqpBackend, SolveStatus};

use crate::bridge::system_to_problem;

/// Options of the certificate checker.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// The technical parameter `ϒ` (degree bound of the SOS multipliers).
    pub upsilon: u32,
    /// Lower bound imposed on the positivity witnesses. A smaller value
    /// certifies invariants with smaller positivity margins but is more
    /// sensitive to numerical noise.
    pub epsilon_lower: Rational,
    /// When set, adds the bounded-reals pre-condition of Remark 5 with this
    /// bound, which often makes certificates easier to find (compactness).
    pub bounded_reals: Option<Rational>,
    /// Options of the underlying certificate-search solver.
    pub solver: LmOptions,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            upsilon: 2,
            epsilon_lower: Rational::new(1, 1_000_000),
            bounded_reals: None,
            solver: LmOptions {
                tolerance: 1e-7,
                max_iterations: 300,
                restarts: 3,
                // The checker parallelizes across pairs; nested parallel
                // restarts would oversubscribe the CPU.
                parallel_restarts: false,
                ..LmOptions::default()
            },
        }
    }
}

/// The result of attempting to certify one constraint pair.
#[derive(Debug, Clone)]
pub struct PairCertificate {
    /// Description of the pair (transition or initiation point).
    pub description: String,
    /// The kind of requirement the pair encodes.
    pub kind: PairKind,
    /// Whether a sum-of-squares certificate was found.
    pub certified: bool,
    /// The size of the per-pair certificate problem (constraints).
    pub problem_size: usize,
}

/// The report of a full inductiveness check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// One certificate attempt per constraint pair.
    pub certificates: Vec<PairCertificate>,
}

impl CheckReport {
    /// `true` if every constraint pair was certified, i.e. the candidate is
    /// proven to be an inductive invariant.
    pub fn all_certified(&self) -> bool {
        self.certificates.iter().all(|c| c.certified)
    }

    /// The number of certified pairs.
    pub fn num_certified(&self) -> usize {
        self.certificates.iter().filter(|c| c.certified).count()
    }

    /// The descriptions of the pairs that could not be certified.
    pub fn failures(&self) -> Vec<&str> {
        self.certificates
            .iter()
            .filter(|c| !c.certified)
            .map(|c| c.description.as_str())
            .collect()
    }
}

/// Builds a constant (unknown-free) template set from a concrete invariant
/// map and post-condition.
fn concrete_templates(
    program: &Program,
    invariant: &InvariantMap,
    post: &Postcondition,
) -> TemplateSet {
    let mut set = TemplateSet::default();
    for function in program.functions() {
        for &label in function.labels() {
            let conjuncts: Vec<TemplatePoly> = invariant
                .get(label)
                .iter()
                .map(|atom| TemplatePoly::from_polynomial(&atom.poly))
                .collect();
            set.invariants.insert(
                label,
                LabelTemplate {
                    conjuncts,
                    basis: Vec::new(),
                },
            );
        }
        let post_conjuncts: Vec<TemplatePoly> = post
            .get(function.name())
            .iter()
            .map(|atom| TemplatePoly::from_polynomial(&atom.poly))
            .collect();
        set.postconditions.insert(
            function.name().to_string(),
            LabelTemplate {
                conjuncts: post_conjuncts,
                basis: Vec::new(),
            },
        );
    }
    set
}

/// Checks whether `(post, invariant)` is a (recursive) inductive invariant
/// of `program` under `pre`, by searching for the sum-of-squares
/// certificates of every constraint pair.
///
/// A report with [`CheckReport::all_certified`] `== true` is a *proof* of
/// inductiveness (soundness, Lemma 3.6). A failed pair is inconclusive: the
/// certificate may simply require a larger `ϒ` (semi-completeness,
/// Lemma 3.7).
///
/// # Errors
///
/// Returns a [`ConstraintError`] when pair generation rejects the program
/// (unreachable through this entry point for resolver-accepted programs:
/// recursive treatment is enabled automatically whenever calls are present).
pub fn check_inductive(
    program: &Program,
    pre: &Precondition,
    invariant: &InvariantMap,
    post: &Postcondition,
    options: &CheckOptions,
) -> Result<CheckReport, ConstraintError> {
    let mut pre = pre.clone();
    if let Some(bound) = options.bounded_reals {
        pre.add_bounded_reals(program, bound);
    }
    let recursive = !program.is_simple() || post.iter().next().is_some();
    let cfg = Cfg::build(program);
    let templates = concrete_templates(program, invariant, post);
    let mut mono_table = MonomialTable::new();
    let pairs = generate_pairs(
        program,
        &cfg,
        &pre,
        &templates,
        PairOptions { recursive },
        &mut mono_table,
    )?;

    // The certificate search goes through the same back-end abstraction as
    // the synthesis pipeline's solve stage. Restarts stay sequential here
    // regardless of the caller's options — the pair loop below is the
    // parallel level.
    let solver = LmSolver::new(LmOptions {
        parallel_restarts: false,
        ..options.solver.clone()
    });
    let backend: &dyn QcqpBackend = &solver;
    // Degree ladder: constant multipliers (Handelman-style certificates,
    // cheap and very robust) first, then the full degree-ϒ multipliers.
    let mut ladder = vec![0];
    if options.upsilon > 0 {
        ladder.push(options.upsilon);
    }

    // Pre-warm the arena with every pair's multiplier bases so the per-pair
    // clones below are essentially complete and the workers rarely intern
    // (their additions are limited to fresh product monomials).
    for pair in &pairs {
        for &upsilon in &ladder {
            mono_table.basis_up_to_degree(&pair.scope_vars, upsilon);
            mono_table.basis_up_to_degree(&pair.scope_vars, upsilon / 2);
        }
    }

    // Each pair gets its own small, independent certificate problem: with
    // the template coefficients fixed, only the multiplier and Cholesky
    // unknowns remain. The Cholesky encoding turns the search into quadratic
    // equalities with simple variable bounds, which the projected
    // Levenberg–Marquardt solver handles robustly. Independence also means
    // the pairs certify in parallel.
    let certificates = parallel_indexed(pairs.len(), |index| {
        let pair = &pairs[index];
        let mut certified = false;
        let mut problem_size = 0;
        // Each worker gets its own copy of the (small, concrete-template)
        // arena: translation interns new product monomials, and the pair
        // problems are independent.
        let mut table = mono_table.clone();
        for &upsilon in &ladder {
            let putinar_options = PutinarOptions {
                upsilon,
                encoding: SosEncoding::Cholesky,
                epsilon_lower: options.epsilon_lower,
            };
            let mut system = QuadraticSystem::new(UnknownRegistry::new());
            translate_pair(pair, index, &putinar_options, &mut system, &mut table);
            let problem = system_to_problem(&system);
            problem_size = problem_size.max(problem.equalities.len() + problem.inequalities.len());
            // A slightly positive warm start keeps the Cholesky diagonals and
            // the witness in the interior of their bounds.
            let warm = vec![0.05; problem.num_vars];
            if backend.solve(&problem, Some(&warm)).status == SolveStatus::Feasible {
                certified = true;
                break;
            }
        }
        PairCertificate {
            description: pair.description.clone(),
            kind: pair.kind,
            certified,
            problem_size,
        }
    });
    Ok(CheckReport { certificates })
}

/// A reachable state violating a candidate invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The label at which the violation occurred.
    pub label: Label,
    /// The variable valuation witnessing the violation.
    pub valuation: HashMap<polyinv_poly::VarId, Rational>,
}

/// Tries to falsify a candidate invariant by executing the program on
/// sampled inputs and non-deterministic choices.
///
/// Runs whose states violate the pre-condition are discarded (they are not
/// valid runs in the paper's sense). Returns the first violating state
/// found, or `None` if no violation was observed within `runs` executions.
pub fn falsify(
    program: &Program,
    pre: &Precondition,
    invariant: &InvariantMap,
    runs: usize,
    seed: u64,
) -> Option<Violation> {
    let interpreter = Interpreter::new(program, 20_000);
    let arity = program.main().params().len();
    for run in 0..runs {
        let mut oracle = SeededOracle::new(seed.wrapping_add(run as u64), 8);
        // Small non-negative integer inputs exercise the benchmark
        // pre-conditions well; occasionally include negative values.
        let inputs: Vec<Rational> = (0..arity)
            .map(|k| {
                let raw = ((run as i64) * 7 + k as i64 * 3) % 13;
                Rational::from_int(if run % 5 == 4 { raw - 6 } else { raw })
            })
            .collect();
        let trace = interpreter.run(&inputs, &mut oracle);
        // Validity: every visited state satisfies its pre-condition
        // (overflow-safe: an undecidable state invalidates the run).
        let valid = trace.states.iter().all(|state| {
            pre.get(state.label).iter().all(|atom| {
                atom.checked_eval(|v| state.valuation.get(&v).copied().unwrap_or_default())
                    == Some(true)
            })
        });
        if !valid {
            continue;
        }
        for state in &trace.states {
            // `None` (overflow) is not a witnessed violation; skip it.
            let violated = invariant.get(state.label).iter().any(|atom| {
                atom.checked_eval(|v| state.valuation.get(&v).copied().unwrap_or_default())
                    == Some(false)
            });
            if violated {
                return Some(Violation {
                    label: state.label,
                    valuation: state.valuation.clone(),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;
    use polyinv_lang::{parse_assertion, parse_program};
    use polyinv_poly::Polynomial;

    fn running_example() -> (Program, Precondition) {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        (program, pre)
    }

    /// A hand-written inductive invariant of the running example in the
    /// spirit of Example 3 of the paper. Because consecution constraints
    /// relax the antecedent to `≥ 0` but require the consequent with a
    /// positivity witness, every conjunct must be implied with a strict
    /// margin; the margins are provided by staggering the constant terms
    /// along the control flow and recovering slack from `i := i + 1`.
    fn margin_aware_invariant(program: &Program) -> InvariantMap {
        let labels = program.main().labels().to_vec();
        let mut invariant = InvariantMap::new();
        let parse = |text: &str| parse_assertion(program, "sum", text).unwrap().0;
        // Label 1 in the paper's numbering is labels[0], etc.
        invariant.add(labels[0], parse("n > 0"));
        for (index, (i_term, combined)) in [
            ("8*i - 7", "4*i + 4*s - 3"), // label 2
            ("4*i - 3", "4*i + 4*s + 1"), // label 3 (loop head)
            ("4*i - 2", "4*i + 4*s + 2"), // label 4 (if ⋆)
            ("4*i - 1", "4*i + 4*s + 3"), // label 5 (s := s + i)
            ("4*i - 1", "4*i + 4*s + 3"), // label 6 (skip)
            ("4*i - 0", "4*i + 4*s + 4"), // label 7 (i := i + 1)
            ("4*i - 2", "4*i + 4*s + 2"), // label 8 (return)
            ("4*i - 1", "4*i + 4*s + 3"), // label 9 (endpoint)
        ]
        .iter()
        .enumerate()
        {
            invariant.add(labels[index + 1], parse(&format!("{i_term} > 0")));
            invariant.add(labels[index + 1], parse(&format!("{combined} > 0")));
        }
        invariant
    }

    #[test]
    fn margin_aware_invariant_is_certified() {
        let (program, pre) = running_example();
        let invariant = margin_aware_invariant(&program);
        let report = check_inductive(
            &program,
            &pre,
            &invariant,
            &Postcondition::new(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(report.all_certified(), "failures: {:?}", report.failures());
    }

    #[test]
    fn a_wrong_invariant_is_not_certified_and_is_falsified() {
        let (program, pre) = running_example();
        let mut invariant = InvariantMap::new();
        // Claim s < 1 at the return label — false as soon as the loop adds
        // i = 1 and n ≥ 2.
        let (poly, _) = parse_assertion(&program, "sum", "1 - s > 0").unwrap();
        let return_label = program.main().labels()[7];
        invariant.add(return_label, poly);
        let report = check_inductive(
            &program,
            &pre,
            &invariant,
            &Postcondition::new(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(!report.all_certified());
        let violation = falsify(&program, &pre, &invariant, 200, 1);
        assert!(violation.is_some());
        assert_eq!(violation.unwrap().label, return_label);
    }

    #[test]
    fn falsification_accepts_true_invariants() {
        let (program, pre) = running_example();
        let invariant = margin_aware_invariant(&program);
        assert!(falsify(&program, &pre, &invariant, 100, 7).is_none());
    }

    #[test]
    fn trivial_invariant_is_certified_everywhere() {
        let (program, pre) = running_example();
        // 1 > 0 at every label.
        let mut invariant = InvariantMap::new();
        for &label in program.main().labels() {
            invariant.add(label, Polynomial::constant(Rational::one()));
        }
        let report = check_inductive(
            &program,
            &pre,
            &invariant,
            &Postcondition::new(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(report.all_certified());
        assert_eq!(report.num_certified(), report.certificates.len());
    }
}
