//! A tiny blocking HTTP/1.1 client, just enough to talk to the server.
//!
//! Shared by the `polyinv-loadgen` bench binary and the integration tests
//! so both exercise the wire format exactly as the server emits it: one
//! request per connection, read to EOF (every response carries
//! `Connection: close`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Header name/value pairs (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The body decoded as UTF-8 (lossy).
    pub body: String,
}

impl ClientResponse {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }
}

/// Sends one request and reads the full response.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;

    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw response into status, headers and body.
pub fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let malformed =
        |reason: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, reason.to_string());
    let head_end = raw
        .windows(4)
        .position(|window| window == b"\r\n\r\n")
        .ok_or_else(|| malformed("response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| malformed("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| malformed("empty response"))?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| malformed("bad status line"))?;
    let headers = lines
        .filter(|line| !line.is_empty())
        .filter_map(|line| {
            line.split_once(':')
                .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse_status_headers_and_body() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\ncontent-length: 3\r\n\r\nabc";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(response.body, "abc");
    }

    #[test]
    fn garbage_is_rejected_not_panicked_on() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 huh\r\n\r\n").is_err());
    }
}
