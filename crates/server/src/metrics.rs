//! Lock-free service counters, surfaced as the flat `GET /metrics` JSON
//! object and mirrored into the one-line shutdown summary.
//!
//! Everything is a relaxed atomic: the counters are monotone tallies (plus
//! two gauges — queue depth and in-flight requests) whose readers tolerate
//! slightly stale values; no counter is ever used for control flow.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use polyinv_api::{CacheStats, Json};

/// The per-endpoint and service-wide counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully parsed and routed (any endpoint).
    pub requests_total: AtomicU64,
    /// `POST /v1/synth` requests.
    pub synth_requests: AtomicU64,
    /// `POST /v1/check` requests.
    pub check_requests: AtomicU64,
    /// `POST /v1/batch` requests.
    pub batch_requests: AtomicU64,
    /// Individual items across all batch requests.
    pub batch_items: AtomicU64,
    /// `GET /healthz` requests.
    pub healthz_requests: AtomicU64,
    /// `GET /metrics` requests.
    pub metrics_requests: AtomicU64,
    /// Wall-clock spent serving `/v1/synth`, in microseconds.
    pub synth_latency_micros: AtomicU64,
    /// Wall-clock spent serving `/v1/check`, in microseconds.
    pub check_latency_micros: AtomicU64,
    /// Wall-clock spent serving `/v1/batch`, in microseconds.
    pub batch_latency_micros: AtomicU64,
    /// Responses in the 2xx class.
    pub responses_2xx: AtomicU64,
    /// Responses in the 4xx class (the 429s below are counted here too).
    pub responses_4xx: AtomicU64,
    /// Responses in the 5xx class.
    pub responses_5xx: AtomicU64,
    /// Connections answered `429` by the acceptor under saturation.
    pub rejected: AtomicU64,
    /// Connections dropped for wire-level errors without a response.
    pub dropped: AtomicU64,
    /// Gauge: connections accepted and waiting for a worker.
    pub queued: AtomicU64,
    /// Gauge: requests currently being served by workers.
    pub in_flight: AtomicU64,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to a counter.
    pub fn add(counter: &AtomicU64, amount: u64) {
        counter.fetch_add(amount, Ordering::Relaxed);
    }

    /// Decrements a gauge (saturating at zero).
    pub fn decr(gauge: &AtomicU64) {
        // fetch_update never fails with this closure, but stay defensive.
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |value| {
            Some(value.saturating_sub(1))
        });
    }

    /// Tallies a response by status class.
    pub fn count_response(&self, status: u16) {
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        Metrics::incr(class);
    }

    /// A point-in-time copy of every counter, merged with the result
    /// cache's statistics and the service uptime.
    pub fn snapshot(&self, cache: CacheStats, started: Instant) -> MetricsSnapshot {
        let get = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        MetricsSnapshot {
            uptime_seconds: started.elapsed().as_secs_f64(),
            requests_total: get(&self.requests_total),
            synth_requests: get(&self.synth_requests),
            check_requests: get(&self.check_requests),
            batch_requests: get(&self.batch_requests),
            batch_items: get(&self.batch_items),
            healthz_requests: get(&self.healthz_requests),
            metrics_requests: get(&self.metrics_requests),
            synth_latency_seconds_sum: get(&self.synth_latency_micros) as f64 / 1e6,
            check_latency_seconds_sum: get(&self.check_latency_micros) as f64 / 1e6,
            batch_latency_seconds_sum: get(&self.batch_latency_micros) as f64 / 1e6,
            responses_2xx: get(&self.responses_2xx),
            responses_4xx: get(&self.responses_4xx),
            responses_5xx: get(&self.responses_5xx),
            rejected: get(&self.rejected),
            dropped: get(&self.dropped),
            queued: get(&self.queued),
            in_flight: get(&self.in_flight),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_entries: cache.entries as u64,
        }
    }
}

/// A frozen copy of the counters, as serialized by `GET /metrics` and
/// returned by `Server::run` after the drain.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the listener bound.
    pub uptime_seconds: f64,
    /// Requests fully parsed and routed.
    pub requests_total: u64,
    /// `POST /v1/synth` requests.
    pub synth_requests: u64,
    /// `POST /v1/check` requests.
    pub check_requests: u64,
    /// `POST /v1/batch` requests.
    pub batch_requests: u64,
    /// Items across all batch requests.
    pub batch_items: u64,
    /// `GET /healthz` requests.
    pub healthz_requests: u64,
    /// `GET /metrics` requests.
    pub metrics_requests: u64,
    /// Total `/v1/synth` service time.
    pub synth_latency_seconds_sum: f64,
    /// Total `/v1/check` service time.
    pub check_latency_seconds_sum: f64,
    /// Total `/v1/batch` service time.
    pub batch_latency_seconds_sum: f64,
    /// Responses in the 2xx class.
    pub responses_2xx: u64,
    /// Responses in the 4xx class.
    pub responses_4xx: u64,
    /// Responses in the 5xx class.
    pub responses_5xx: u64,
    /// Connections answered `429` under saturation.
    pub rejected: u64,
    /// Connections dropped without a response.
    pub dropped: u64,
    /// Gauge: connections waiting for a worker.
    pub queued: u64,
    /// Gauge: requests currently in flight.
    pub in_flight: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Result-cache resident entries.
    pub cache_entries: u64,
}

impl MetricsSnapshot {
    /// The flat JSON object served by `GET /metrics`.
    pub fn to_json(&self) -> Json {
        let count = |n: u64| Json::Number(n as f64);
        Json::object(vec![
            ("uptime_seconds", Json::Number(self.uptime_seconds)),
            ("requests_total", count(self.requests_total)),
            ("synth_requests", count(self.synth_requests)),
            ("check_requests", count(self.check_requests)),
            ("batch_requests", count(self.batch_requests)),
            ("batch_items", count(self.batch_items)),
            ("healthz_requests", count(self.healthz_requests)),
            ("metrics_requests", count(self.metrics_requests)),
            (
                "synth_latency_seconds_sum",
                Json::Number(self.synth_latency_seconds_sum),
            ),
            (
                "check_latency_seconds_sum",
                Json::Number(self.check_latency_seconds_sum),
            ),
            (
                "batch_latency_seconds_sum",
                Json::Number(self.batch_latency_seconds_sum),
            ),
            ("responses_2xx", count(self.responses_2xx)),
            ("responses_4xx", count(self.responses_4xx)),
            ("responses_5xx", count(self.responses_5xx)),
            ("rejected", count(self.rejected)),
            ("dropped", count(self.dropped)),
            ("queued", count(self.queued)),
            ("in_flight", count(self.in_flight)),
            ("cache_hits", count(self.cache_hits)),
            ("cache_misses", count(self.cache_misses)),
            ("cache_evictions", count(self.cache_evictions)),
            ("cache_entries", count(self.cache_entries)),
        ])
    }

    /// The one-line summary mirrored into the shutdown log.
    pub fn summary_line(&self) -> String {
        format!(
            "served {} request(s) ({} 2xx / {} 4xx / {} 5xx) in {:.1}s — \
             cache {} hit(s) / {} miss(es) / {} eviction(s), \
             {} rejected (429), {} dropped",
            self.requests_total,
            self.responses_2xx,
            self.responses_4xx,
            self.responses_5xx,
            self.uptime_seconds,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.rejected,
            self.dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_every_counter_flat() {
        let metrics = Metrics::default();
        Metrics::incr(&metrics.requests_total);
        Metrics::incr(&metrics.synth_requests);
        Metrics::add(&metrics.synth_latency_micros, 1_500_000);
        metrics.count_response(200);
        metrics.count_response(429);
        let cache = CacheStats {
            hits: 3,
            misses: 4,
            evictions: 1,
            entries: 2,
        };
        let snapshot = metrics.snapshot(cache, Instant::now());
        let json = snapshot.to_json();
        assert_eq!(json.get("requests_total").unwrap().as_usize(), Some(1));
        assert_eq!(json.get("cache_hits").unwrap().as_usize(), Some(3));
        assert_eq!(json.get("responses_4xx").unwrap().as_usize(), Some(1));
        assert_eq!(
            json.get("synth_latency_seconds_sum").unwrap().as_f64(),
            Some(1.5)
        );
        // Flat: every field is a bare number, no nested objects.
        for (name, value) in json.as_object().unwrap() {
            assert!(value.as_f64().is_some(), "metric `{name}` is not flat");
        }
        assert!(snapshot.summary_line().contains("3 hit(s)"));
    }

    #[test]
    fn gauges_saturate_at_zero() {
        let metrics = Metrics::default();
        Metrics::decr(&metrics.queued);
        assert_eq!(metrics.queued.load(Ordering::Relaxed), 0);
        Metrics::incr(&metrics.queued);
        Metrics::decr(&metrics.queued);
        assert_eq!(metrics.queued.load(Ordering::Relaxed), 0);
    }
}
