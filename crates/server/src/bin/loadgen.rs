//! `polyinv-loadgen` — replay fuzzer-generated programs against a running
//! `polyinv serve` instance and measure throughput and latency.
//!
//! ```text
//! polyinv-loadgen --addr 127.0.0.1:8924 --programs 200 --concurrency 8
//! ```
//!
//! The run has two phases: a **cold** pass over `--programs` *distinct*
//! generated programs (every request a cache miss) and, unless
//! `--no-repeat`, a **warm** replay of the same programs that must be
//! answered entirely from the server's result cache (`x-polyinv-cache:
//! hit` on every response). Every response body is validated as canonical
//! report JSON by round-tripping it through `SynthesisReport`.
//!
//! With `--bench-out FILE` the summary is upserted as the top-level
//! `"throughput"` block of the given `polyinv-bench/v1` JSON file
//! (`BENCH_3.json` in CI); `--json` prints the same block to stdout.
//! The exit code is non-zero when any request failed, any body failed
//! canonical validation, or a warm response was not a cache hit.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use polyinv_api::{Json, Mode, SynthesisReport, SynthesisRequest};
use polyinv_server::http_request;
use polyinv_validate::{generate_program, GenConfig};

struct Options {
    addr: String,
    programs: usize,
    concurrency: usize,
    seed: u64,
    mode: Mode,
    repeat: bool,
    bench_out: Option<String>,
    json: bool,
    timeout: Duration,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:8924".to_string(),
            programs: 200,
            concurrency: 8,
            seed: 0,
            mode: Mode::GenerateOnly,
            repeat: true,
            bench_out: None,
            json: false,
            timeout: Duration::from_secs(60),
        }
    }
}

const USAGE: &str = "usage: polyinv-loadgen [--addr HOST:PORT] [--programs N] [--concurrency C] \
[--seed S] [--mode weak|strong|check|generate-only] [--no-repeat] [--timeout-secs T] \
[--bench-out FILE] [--json]";

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} expects a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--programs" => {
                options.programs = value("--programs")?
                    .parse()
                    .map_err(|e| format!("--programs: {e}"))?;
            }
            "--concurrency" => {
                options.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--mode" => {
                options.mode = value("--mode")?
                    .parse()
                    .map_err(|e| format!("--mode: {e:?}"))?;
            }
            "--no-repeat" => options.repeat = false,
            "--timeout-secs" => {
                options.timeout = Duration::from_secs(
                    value("--timeout-secs")?
                        .parse()
                        .map_err(|e| format!("--timeout-secs: {e}"))?,
                );
            }
            "--bench-out" => options.bench_out = Some(value("--bench-out")?),
            "--json" => options.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if options.programs == 0 || options.concurrency == 0 {
        return Err("--programs and --concurrency must be positive".to_string());
    }
    Ok(options)
}

/// `--programs` distinct program sources from the validation fuzzer's
/// generator, deduplicated by source text (the generator is seeded and
/// deterministic, so the same seed always yields the same corpus).
fn build_corpus(options: &Options) -> Vec<String> {
    let config = GenConfig::default();
    let mut sources = Vec::with_capacity(options.programs);
    let mut seen = std::collections::HashSet::new();
    let mut seed = options.seed;
    while sources.len() < options.programs {
        let program = generate_program(seed, &config);
        seed += 1;
        if seen.insert(program.source.clone()) {
            sources.push(program.source);
        }
    }
    sources
}

/// The outcome of one HTTP request, as tallied by the phase driver.
enum Sample {
    Ok { latency: Duration, cache_hit: bool },
    Error(String),
}

/// One measured pass over the corpus at the configured concurrency.
struct PhaseResult {
    label: &'static str,
    requests: usize,
    errors: Vec<String>,
    cache_hits: usize,
    seconds: f64,
    latencies: Vec<Duration>,
}

/// Validates a 200-response body as canonical report JSON: it must parse
/// as a `SynthesisReport` and re-serialize byte-identically.
fn validate_canonical(body: &str) -> Result<(), String> {
    let trimmed = body.trim_end_matches('\n');
    let report = SynthesisReport::from_json_str(trimmed)
        .map_err(|error| format!("body is not a report: {error}"))?;
    if report.to_json_string() != trimmed {
        return Err("body is not canonical report JSON (round-trip differs)".to_string());
    }
    Ok(())
}

/// Runs one phase: `concurrency` client threads pull work indices off a
/// shared counter and post each program to `/v1/synth`.
fn run_phase(
    label: &'static str,
    addr: SocketAddr,
    corpus: Arc<Vec<String>>,
    options: &Options,
) -> PhaseResult {
    let next = Arc::new(AtomicUsize::new(0));
    let mode = options.mode;
    let timeout = options.timeout;
    let started = Instant::now();
    let workers: Vec<_> = (0..options.concurrency.min(corpus.len()))
        .map(|_| {
            let next = Arc::clone(&next);
            let corpus = Arc::clone(&corpus);
            std::thread::spawn(move || {
                let mut samples = Vec::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= corpus.len() {
                        break samples;
                    }
                    let request = SynthesisRequest::new(mode, corpus[index].clone())
                        .with_id(format!("loadgen-{index}"));
                    let body = request.to_json().to_string();
                    let sent = Instant::now();
                    let outcome = http_request(addr, "POST", "/v1/synth", Some(&body), timeout);
                    let latency = sent.elapsed();
                    samples.push(match outcome {
                        Ok(response) if response.status == 200 => {
                            match validate_canonical(&response.body) {
                                Ok(()) => Sample::Ok {
                                    latency,
                                    cache_hit: response.header("x-polyinv-cache") == Some("hit"),
                                },
                                Err(reason) => Sample::Error(format!("program {index}: {reason}")),
                            }
                        }
                        Ok(response) => Sample::Error(format!(
                            "program {index}: HTTP {} — {}",
                            response.status,
                            response.body.trim_end()
                        )),
                        Err(error) => Sample::Error(format!("program {index}: {error}")),
                    });
                }
            })
        })
        .collect();

    let mut errors = Vec::new();
    let mut cache_hits = 0;
    let mut latencies = Vec::new();
    for worker in workers {
        for sample in worker.join().expect("client thread") {
            match sample {
                Sample::Ok { latency, cache_hit } => {
                    latencies.push(latency);
                    cache_hits += usize::from(cache_hit);
                }
                Sample::Error(reason) => errors.push(reason),
            }
        }
    }
    PhaseResult {
        label,
        requests: corpus.len(),
        errors,
        cache_hits,
        seconds: started.elapsed().as_secs_f64(),
        latencies,
    }
}

/// The p-th percentile (0–100) of the sorted latency set, in milliseconds.
fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

impl PhaseResult {
    fn to_json(&self) -> Json {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let completed = self.latencies.len();
        let throughput = if self.seconds > 0.0 {
            completed as f64 / self.seconds
        } else {
            0.0
        };
        Json::object(vec![
            ("requests", Json::Number(self.requests as f64)),
            ("errors", Json::Number(self.errors.len() as f64)),
            ("cache_hits", Json::Number(self.cache_hits as f64)),
            ("seconds", Json::Number(self.seconds)),
            ("programs_per_sec", Json::Number(throughput)),
            (
                "latency_ms",
                Json::object(vec![
                    ("p50", Json::Number(percentile_ms(&sorted, 50.0))),
                    ("p90", Json::Number(percentile_ms(&sorted, 90.0))),
                    ("p99", Json::Number(percentile_ms(&sorted, 99.0))),
                ]),
            ),
        ])
    }

    fn describe(&self) -> String {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        format!(
            "{}: {} request(s), {} error(s), {} cache hit(s) in {:.2}s \
             ({:.1} programs/s; p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms)",
            self.label,
            self.requests,
            self.errors.len(),
            self.cache_hits,
            self.seconds,
            self.latencies.len() as f64 / self.seconds.max(1e-9),
            percentile_ms(&sorted, 50.0),
            percentile_ms(&sorted, 90.0),
            percentile_ms(&sorted, 99.0),
        )
    }
}

/// Upserts the `"throughput"` key of a `polyinv-bench/v1` JSON file,
/// leaving everything else (schema, rows) untouched.
fn upsert_bench_throughput(path: &str, block: &Json) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|error| format!("read {path}: {error}"))?;
    let mut doc = Json::parse(&text).map_err(|error| format!("parse {path}: {error}"))?;
    let Json::Object(fields) = &mut doc else {
        return Err(format!("{path}: top level is not a JSON object"));
    };
    match fields.iter_mut().find(|(key, _)| key == "throughput") {
        Some((_, value)) => *value = block.clone(),
        None => fields.push(("throughput".to_string(), block.clone())),
    }
    let mut out = doc.pretty();
    out.push('\n');
    std::fs::write(path, out).map_err(|error| format!("write {path}: {error}"))
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("polyinv-loadgen: {message}");
            std::process::exit(2);
        }
    };
    let addr: SocketAddr = match options.addr.parse() {
        Ok(addr) => addr,
        Err(error) => {
            eprintln!("polyinv-loadgen: bad --addr `{}`: {error}", options.addr);
            std::process::exit(2);
        }
    };

    eprintln!(
        "generating {} distinct program(s) from seed {}…",
        options.programs, options.seed
    );
    let corpus = Arc::new(build_corpus(&options));

    let cold = run_phase("cold", addr, Arc::clone(&corpus), &options);
    eprintln!("{}", cold.describe());
    let warm = options
        .repeat
        .then(|| run_phase("warm", addr, Arc::clone(&corpus), &options));
    if let Some(warm) = &warm {
        eprintln!("{}", warm.describe());
    }

    let mut failures: Vec<String> = Vec::new();
    failures.extend(cold.errors.iter().cloned());
    if let Some(warm) = &warm {
        failures.extend(warm.errors.iter().cloned());
        let warm_ok = warm.requests - warm.errors.len();
        if warm.cache_hits < warm_ok {
            failures.push(format!(
                "warm phase: only {} of {} successful replays were cache hits",
                warm.cache_hits, warm_ok
            ));
        }
    }

    let mut block_fields = vec![
        ("programs", Json::Number(corpus.len() as f64)),
        ("concurrency", Json::Number(options.concurrency as f64)),
        ("seed", Json::Number(options.seed as f64)),
        ("mode", Json::string(options.mode.as_str())),
        ("cold", cold.to_json()),
    ];
    if let Some(warm) = &warm {
        block_fields.push(("warm", warm.to_json()));
    }
    let block = Json::object(block_fields);

    if let Some(path) = &options.bench_out {
        match upsert_bench_throughput(path, &block) {
            Ok(()) => eprintln!("updated throughput block in {path}"),
            Err(message) => failures.push(message),
        }
    }
    if options.json {
        println!("{}", block.pretty());
    }

    if !failures.is_empty() {
        for failure in failures.iter().take(10) {
            eprintln!("polyinv-loadgen: FAIL: {failure}");
        }
        if failures.len() > 10 {
            eprintln!("… and {} more failure(s)", failures.len() - 10);
        }
        std::process::exit(1);
    }
}
