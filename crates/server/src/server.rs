//! The service: acceptor, bounded queue, worker pool, routes.
//!
//! ```text
//!            ┌──────────┐   bounded    ┌──────────┐
//!  accept ──▶│ acceptor │──▶ queue ───▶│ worker 0 │──▶ Engine ──▶ response
//!            │  thread  │   (429 when  │    …     │      │
//!            └──────────┘    full)     │ worker N │   ResultCache
//!                                      └──────────┘
//! ```
//!
//! One connection carries one request (`Connection: close`), so the queue
//! depth *is* the number of admitted-but-unserved requests and the
//! backpressure policy is exact: when `queued ≥ queue_depth`, the acceptor
//! answers `429` with a `Retry-After` hint instead of letting latency grow
//! without bound. Graceful drain (the `POST /shutdown` endpoint or
//! [`ServerHandle::shutdown`]) stops admissions, serves everything already
//! queued or in flight, then flushes the metrics summary.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use polyinv_api::{
    ApiError, Engine, Json, Mode, RequestFingerprint, ResultCache, SynthesisReport,
    SynthesisRequest,
};

use crate::http::{read_request, HttpError, HttpRequest, HttpResponse};
use crate::metrics::{Metrics, MetricsSnapshot};

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads (0: one per available core).
    pub workers: usize,
    /// Admitted-but-unserved request cap; beyond it connections get `429`.
    pub queue_depth: usize,
    /// Result-cache capacity (distinct request fingerprints).
    pub cache_capacity: usize,
    /// `Content-Length` cap; larger uploads get `413`.
    pub max_body_bytes: usize,
    /// Socket read timeout (stalled clients get `408`).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8924".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 256,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    /// The worker count after resolving the `0 = auto` default.
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// State shared by the acceptor, the workers and shutdown handles.
struct Shared {
    engine: Engine,
    cache: Mutex<ResultCache>,
    metrics: Metrics,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutting_down: AtomicBool,
    config: ServerConfig,
    started: Instant,
    addr: SocketAddr,
}

/// A cloneable handle that can drain the server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins the graceful drain: stop admitting, finish queued and
    /// in-flight requests, flush metrics. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of its blocking accept with a no-op
        // connection; wake idle workers so they can observe the flag.
        let _ = TcpStream::connect(self.shared.addr);
        self.shared.available.notify_all();
    }

    /// A live snapshot of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let cache = self.shared.cache.lock().expect("cache lock").stats();
        self.shared.metrics.snapshot(cache, self.shared.started)
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the configured address and prepares the shared state. The
    /// listener is live after this returns (connections queue in the kernel
    /// backlog) but nothing is served until [`Server::run`].
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Engine::new(),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            metrics: Metrics::default(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            config,
            started: Instant::now(),
            addr,
        });
        Ok(Server { listener, shared })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle for shutting the server down from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a drain is requested, then finishes queued and
    /// in-flight work, joins the workers and returns the final counters.
    pub fn run(self) -> MetricsSnapshot {
        let workers: Vec<_> = (0..self.shared.config.resolved_workers())
            .map(|index| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("polyinv-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                // The wake-up connection (or a late arrival): drop it and
                // stop admitting.
                break;
            }
            let Ok(stream) = stream else { continue };
            let config = &self.shared.config;
            let _ = stream.set_read_timeout(Some(config.read_timeout));
            let _ = stream.set_write_timeout(Some(config.write_timeout));
            let mut queue = self.shared.queue.lock().expect("queue lock");
            if queue.len() >= config.queue_depth {
                drop(queue);
                self.reject(stream);
                continue;
            }
            queue.push_back(stream);
            Metrics::incr(&self.shared.metrics.queued);
            drop(queue);
            self.shared.available.notify_one();
        }

        // Drain: the queue is served FIFO by the workers, which exit once
        // it is empty and the flag is up.
        drop(self.listener);
        self.shared.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        let cache = self.shared.cache.lock().expect("cache lock").stats();
        self.shared.metrics.snapshot(cache, self.shared.started)
    }

    /// Answers `429 Too Many Requests` inline from the acceptor: the wire
    /// cost is one small write, so saturation degrades to fast rejection
    /// instead of a hang or an unbounded queue.
    fn reject(&self, mut stream: TcpStream) {
        Metrics::incr(&self.shared.metrics.rejected);
        self.shared.metrics.count_response(429);
        let body = Json::object(vec![
            ("error", Json::string("saturated")),
            (
                "message",
                Json::string(format!(
                    "request queue is full ({} pending); retry shortly",
                    self.shared.config.queue_depth
                )),
            ),
        ]);
        let _ = HttpResponse::json(429, &body)
            .with_header("retry-after", "1")
            .write(&mut stream);
    }
}

/// One worker: pop a connection, serve its request, close, repeat. Exits
/// when the drain flag is up and the queue is empty.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(stream) = queue.pop_front() {
                    Metrics::decr(&shared.metrics.queued);
                    break Some(stream);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        let Some(mut stream) = stream else { return };
        Metrics::incr(&shared.metrics.in_flight);
        serve_connection(shared, &mut stream);
        Metrics::decr(&shared.metrics.in_flight);
    }
}

/// Reads one request off the connection and answers it.
fn serve_connection(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let request = match read_request(stream, shared.config.max_body_bytes) {
        Ok(request) => request,
        Err(error) => {
            answer_wire_error(shared, stream, &error);
            return;
        }
    };
    Metrics::incr(&shared.metrics.requests_total);
    let response = route(shared, &request);
    shared.metrics.count_response(response.status);
    let _ = response.write(stream);
}

/// Maps a wire-level failure to its response (or silently drops the
/// connection when nobody is listening anymore).
fn answer_wire_error(shared: &Shared, stream: &mut TcpStream, error: &HttpError) {
    match error.status() {
        Some(status) => {
            shared.metrics.count_response(status);
            let body = Json::object(vec![
                ("error", Json::string("http")),
                ("message", Json::string(error.reason())),
            ]);
            let _ = HttpResponse::json(status, &body).write(stream);
        }
        None => Metrics::incr(&shared.metrics.dropped),
    }
}

/// Routes one parsed request to its endpoint.
fn route(shared: &Arc<Shared>, request: &HttpRequest) -> HttpResponse {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            Metrics::incr(&shared.metrics.healthz_requests);
            HttpResponse::json(
                200,
                &Json::object(vec![
                    ("status", Json::string("ok")),
                    (
                        "uptime_seconds",
                        Json::Number(shared.started.elapsed().as_secs_f64()),
                    ),
                    ("backend", Json::string(shared.engine.backend_name())),
                ]),
            )
        }
        ("GET", "/metrics") => {
            Metrics::incr(&shared.metrics.metrics_requests);
            let cache = shared.cache.lock().expect("cache lock").stats();
            let snapshot = shared.metrics.snapshot(cache, shared.started);
            HttpResponse::json(200, &snapshot.to_json())
        }
        ("POST", "/v1/synth") => timed(
            &shared.metrics.synth_requests,
            &shared.metrics.synth_latency_micros,
            || handle_single(shared, request, Mode::Weak),
        ),
        ("POST", "/v1/check") => timed(
            &shared.metrics.check_requests,
            &shared.metrics.check_latency_micros,
            || handle_single(shared, request, Mode::Check),
        ),
        ("POST", "/v1/batch") => timed(
            &shared.metrics.batch_requests,
            &shared.metrics.batch_latency_micros,
            || handle_batch(shared, request),
        ),
        ("POST", "/shutdown") => {
            // Raise the drain flag: the handle's wake-up connection
            // unblocks the acceptor, and the workers finish everything
            // already admitted (this response included — it is written by
            // the caller after `route` returns).
            ServerHandle {
                shared: Arc::clone(shared),
            }
            .shutdown();
            HttpResponse::json(
                200,
                &Json::object(vec![("status", Json::string("draining"))]),
            )
        }
        (_, "/healthz") | (_, "/metrics") => method_not_allowed("GET"),
        (_, "/v1/synth") | (_, "/v1/check") | (_, "/v1/batch") | (_, "/shutdown") => {
            method_not_allowed("POST")
        }
        _ => HttpResponse::json(
            404,
            &Json::object(vec![
                ("error", Json::string("not-found")),
                (
                    "message",
                    Json::string(format!("no such endpoint `{path}`")),
                ),
            ]),
        ),
    }
}

fn method_not_allowed(allow: &str) -> HttpResponse {
    HttpResponse::json(
        405,
        &Json::object(vec![
            ("error", Json::string("method-not-allowed")),
            ("message", Json::string(format!("use {allow}"))),
        ]),
    )
    .with_header("allow", allow)
}

/// Wraps a handler with its endpoint counter and latency tally.
fn timed(
    counter: &std::sync::atomic::AtomicU64,
    latency: &std::sync::atomic::AtomicU64,
    handler: impl FnOnce() -> HttpResponse,
) -> HttpResponse {
    Metrics::incr(counter);
    let start = Instant::now();
    let response = handler();
    Metrics::add(latency, start.elapsed().as_micros() as u64);
    response
}

/// `POST /v1/synth` and `POST /v1/check`: one request, served through the
/// result cache. The body is a `SynthesisRequest` JSON object; a missing
/// `mode` field defaults to the endpoint's mode.
fn handle_single(shared: &Shared, request: &HttpRequest, default_mode: Mode) -> HttpResponse {
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(error) => return bad_request(&error.reason()),
    };
    let json = match Json::parse(body) {
        Ok(json) => json,
        Err(error) => return api_error_response(&ApiError::from(error)),
    };
    let synthesis = match request_from_json(json, default_mode) {
        Ok(request) => request,
        Err(error) => return api_error_response(&error),
    };
    let (outcome, cached) = serve_cached(shared, &synthesis);
    match outcome {
        Ok(report) => HttpResponse::json(200, &report.to_json())
            .with_header("x-polyinv-cache", if cached { "hit" } else { "miss" }),
        Err(error) => api_error_response(&error),
    }
}

/// `POST /v1/batch`: a JSON array of requests (or `{"requests": [...]}`),
/// answered as an array of `{"ok": report, "cached": bool}` /
/// `{"err": error}` wrappers in request order. Cache misses fan out over
/// [`Engine::run_batch`].
fn handle_batch(shared: &Shared, request: &HttpRequest) -> HttpResponse {
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(error) => return bad_request(&error.reason()),
    };
    let doc = match Json::parse(body) {
        Ok(json) => json,
        Err(error) => return api_error_response(&ApiError::from(error)),
    };
    let items = match doc
        .as_array()
        .or_else(|| doc.get("requests").and_then(Json::as_array))
    {
        Some(items) => items,
        None => {
            return bad_request(
                "batch body must be a JSON array of requests (or {\"requests\": [...]})",
            )
        }
    };
    let requests: Vec<Result<SynthesisRequest, ApiError>> =
        items.iter().map(SynthesisRequest::from_json).collect();
    Metrics::add(&shared.metrics.batch_items, requests.len() as u64);

    // First pass: answer well-formed items from the cache.
    let mut entries: Vec<Option<(Json, bool)>> = Vec::with_capacity(requests.len());
    let mut misses: Vec<usize> = Vec::new();
    let mut fingerprints: Vec<Option<RequestFingerprint>> = Vec::with_capacity(requests.len());
    {
        let mut cache = shared.cache.lock().expect("cache lock");
        for (index, request) in requests.iter().enumerate() {
            match request {
                Ok(request) => {
                    let fingerprint = RequestFingerprint::of(request);
                    match cache.get(&fingerprint) {
                        Some(report) => {
                            entries.push(Some(batch_ok(report, true)));
                        }
                        None => {
                            entries.push(None);
                            misses.push(index);
                        }
                    }
                    fingerprints.push(Some(fingerprint));
                }
                Err(error) => {
                    entries.push(Some((Json::object(vec![("err", error.to_json())]), false)));
                    fingerprints.push(None);
                }
            }
        }
    }

    // Second pass: run the misses in parallel, then fill the cache.
    let miss_requests: Vec<SynthesisRequest> = misses
        .iter()
        .map(|&index| {
            requests[index]
                .as_ref()
                .expect("miss is well-formed")
                .clone()
        })
        .collect();
    let outcomes = shared.engine.run_batch(&miss_requests);
    {
        let mut cache = shared.cache.lock().expect("cache lock");
        for (&index, outcome) in misses.iter().zip(outcomes) {
            let entry = match outcome {
                Ok(report) => {
                    if let Some(fingerprint) = &fingerprints[index] {
                        cache.insert(fingerprint, report.clone());
                    }
                    batch_ok(report, false)
                }
                Err(error) => (Json::object(vec![("err", error.to_json())]), false),
            };
            entries[index] = Some(entry);
        }
    }

    let hits = entries
        .iter()
        .filter(|entry| matches!(entry, Some((_, true))))
        .count();
    let body = Json::Array(
        entries
            .into_iter()
            .map(|entry| entry.expect("every item answered").0)
            .collect(),
    );
    HttpResponse::json(200, &body).with_header(
        "x-polyinv-cache",
        format!("hits={hits};misses={}", requests.len() - hits),
    )
}

fn batch_ok(report: SynthesisReport, cached: bool) -> (Json, bool) {
    (
        Json::object(vec![
            ("ok", report.to_json()),
            ("cached", Json::Bool(cached)),
        ]),
        cached,
    )
}

/// Serves one request through the result cache: hit → stored report;
/// miss → Engine run, successful reports cached.
fn serve_cached(
    shared: &Shared,
    request: &SynthesisRequest,
) -> (Result<SynthesisReport, ApiError>, bool) {
    let fingerprint = RequestFingerprint::of(request);
    if let Some(report) = shared.cache.lock().expect("cache lock").get(&fingerprint) {
        return (Ok(report), true);
    }
    let outcome = shared.engine.run(request);
    if let Ok(report) = &outcome {
        shared
            .cache
            .lock()
            .expect("cache lock")
            .insert(&fingerprint, report.clone());
    }
    (outcome, false)
}

/// Builds a request from its JSON form, defaulting a missing `mode` field
/// to the endpoint's mode.
fn request_from_json(mut json: Json, default_mode: Mode) -> Result<SynthesisRequest, ApiError> {
    if json.get("mode").is_none() {
        if let Json::Object(fields) = &mut json {
            fields.push(("mode".to_string(), Json::string(default_mode.as_str())));
        }
    }
    SynthesisRequest::from_json(&json)
}

fn bad_request(message: &str) -> HttpResponse {
    HttpResponse::json(
        400,
        &Json::object(vec![
            ("error", Json::string("invalid-request")),
            ("message", Json::string(message)),
        ]),
    )
}

/// The structured 4xx/5xx body of an [`ApiError`], with the error's spans
/// travelling verbatim in the existing JSON form.
fn api_error_response(error: &ApiError) -> HttpResponse {
    HttpResponse::json(http_status(error), &error.to_json())
}

/// The HTTP status an [`ApiError`] maps to: wire/shape problems are `400`,
/// semantically invalid programs and assertions are `422`, local IO is
/// `500`.
fn http_status(error: &ApiError) -> u16 {
    match error {
        ApiError::Json { .. }
        | ApiError::InvalidRequest { .. }
        | ApiError::UnknownBackend { .. } => 400,
        ApiError::Parse { .. }
        | ApiError::Assertion { .. }
        | ApiError::UnknownLabel { .. }
        | ApiError::RecursionRequired { .. }
        | ApiError::Inapplicable { .. } => 422,
        ApiError::Unsolved { .. } | ApiError::Uncertified { .. } => 200,
        ApiError::Io { .. } => 500,
    }
}
