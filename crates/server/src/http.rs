//! A minimal, robust HTTP/1.1 wire layer over blocking `TcpStream`s.
//!
//! The server speaks exactly the slice of HTTP/1.1 its JSON API needs:
//! request line + headers + optional `Content-Length` body in; status
//! line, headers and body out; one request per connection
//! (`Connection: close` on every response). Robustness is the point of
//! hand-rolling it:
//!
//! * the header section is capped ([`MAX_HEAD_BYTES`]) — a client streaming
//!   endless headers gets `431`, not unbounded memory;
//! * the body is capped by the server's configured `Content-Length` limit —
//!   oversized uploads get `413` *before* any body byte is read;
//! * reads run under the stream's read timeout — a stalled client gets
//!   `408` and frees its worker;
//! * anything that does not parse as HTTP gets `400` with a reason.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers (bytes). Generous for hand-written
/// clients, small enough that a worker never buffers unbounded garbage.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// The method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target, query string included, verbatim.
    pub path: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }

    /// The body decoded as UTF-8.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("request body is not valid UTF-8".to_string()))
    }
}

/// Everything that can go wrong reading a request off the wire, each with a
/// definite HTTP status to answer with.
#[derive(Debug)]
pub enum HttpError {
    /// The client closed the connection before sending a full request
    /// (including: before sending anything). Not answered — there is no one
    /// left to answer.
    Closed,
    /// A read or write hit the stream's timeout → `408`.
    Timeout,
    /// The request line or a header did not parse → `400`.
    Malformed(String),
    /// The header section exceeded [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// The declared `Content-Length` exceeded the server's cap → `413`.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The server's cap.
        limit: usize,
    },
    /// Any other socket error. Not answered; the connection is dropped.
    Io(io::Error),
}

impl HttpError {
    /// The status code this error is answered with (`None`: just drop the
    /// connection).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::Timeout => Some(408),
            HttpError::Malformed(_) => Some(400),
            HttpError::HeadTooLarge => Some(431),
            HttpError::BodyTooLarge { .. } => Some(413),
        }
    }

    /// A human-readable reason for the error response body.
    pub fn reason(&self) -> String {
        match self {
            HttpError::Closed => "connection closed".to_string(),
            HttpError::Io(error) => format!("socket error: {error}"),
            HttpError::Timeout => "timed out reading the request".to_string(),
            HttpError::Malformed(reason) => reason.clone(),
            HttpError::HeadTooLarge => {
                format!("request headers exceed {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                format!("request body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

fn classify_io(error: io::Error) -> HttpError {
    match error.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => HttpError::Closed,
        _ => HttpError::Io(error),
    }
}

/// Reads one request: head (bounded), then exactly `Content-Length` body
/// bytes (bounded by `max_body`).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, HttpError> {
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(classify_io)?;
        if n == 0 {
            return Err(HttpError::Closed);
        }
        buffer.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buffer[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| {
            value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("invalid Content-Length `{value}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }

    // Body bytes already read past the head, then the remainder.
    let mut body = buffer[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(classify_io)?;
        if n == 0 {
            return Err(HttpError::Closed);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|window| window == b"\r\n\r\n")
}

/// One response under construction.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Extra headers beyond the always-present set.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: &polyinv_api::Json) -> Self {
        let mut text = body.to_string();
        text.push('\n');
        HttpResponse {
            status,
            headers: vec![("content-type".to_string(), "application/json".to_string())],
            body: text.into_bytes(),
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes and writes the response; the caller closes the stream.
    pub fn write(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        head.push_str("connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The reason phrase of the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn error_statuses_are_stable() {
        assert_eq!(HttpError::Timeout.status(), Some(408));
        assert_eq!(HttpError::HeadTooLarge.status(), Some(431));
        assert_eq!(
            HttpError::BodyTooLarge {
                declared: 10,
                limit: 5
            }
            .status(),
            Some(413)
        );
        assert_eq!(HttpError::Closed.status(), None);
        assert!(HttpError::BodyTooLarge {
            declared: 10,
            limit: 5
        }
        .reason()
        .contains("5-byte limit"));
    }
}
