//! # polyinv-server — the synthesis engine as a batch service
//!
//! A hand-rolled HTTP/1.1 server (plain `std::net`, no async runtime — the
//! workspace builds offline with no external dependencies) that exposes the
//! [`polyinv_api::Engine`] over five endpoints:
//!
//! | Endpoint          | Method | Body                                     |
//! |-------------------|--------|------------------------------------------|
//! | `/v1/synth`       | POST   | one `SynthesisRequest` (default mode `weak`) |
//! | `/v1/check`       | POST   | one `SynthesisRequest` (default mode `check`) |
//! | `/v1/batch`       | POST   | array of requests, or `{"requests": [...]}` |
//! | `/healthz`        | GET    | —                                        |
//! | `/metrics`        | GET    | —                                        |
//! | `/shutdown`       | POST   | — (begins the graceful drain)            |
//!
//! Request and response JSON are exactly the `polyinv_api::json` forms the
//! CLI already speaks: a served report is byte-identical to the one
//! `polyinv run` would print for the same request.
//!
//! The interesting parts, in their modules:
//!
//! * [`http`] — the bounded wire layer: capped head, capped body,
//!   timeouts, one request per connection;
//! * [`server`] — acceptor + bounded queue + worker pool, result caching
//!   keyed by [`polyinv_api::RequestFingerprint`], `429` backpressure,
//!   graceful drain;
//! * [`metrics`] — lock-free counters behind `GET /metrics`;
//! * [`client`] — the small blocking client the loadgen bench and the
//!   integration tests drive the server with.
//!
//! ```no_run
//! use polyinv_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! println!("listening on {}", server.local_addr());
//! let summary = server.run(); // blocks until POST /shutdown
//! eprintln!("{}", summary.summary_line());
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod http;
pub mod metrics;
pub mod server;

pub use client::{http_request, ClientResponse};
pub use http::{HttpError, HttpRequest, HttpResponse};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{Server, ServerConfig, ServerHandle};
