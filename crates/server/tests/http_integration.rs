//! End-to-end tests over real sockets: each test binds an ephemeral port,
//! runs the server on a background thread and drives it with the crate's
//! own blocking client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use polyinv_api::{Json, SynthesisReport, SynthesisRequest};
use polyinv_server::{
    http_request, ClientResponse, MetricsSnapshot, Server, ServerConfig, ServerHandle,
};

const TIMEOUT: Duration = Duration::from_secs(30);

/// A simple non-recursive program every test can synthesize quickly.
const TICK: &str = r#"
    tick(x) {
        @pre(x >= 0);
        while x <= 2 do
            x := x + 1
        od;
        return x
    }
"#;

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<MetricsSnapshot>,
}

impl TestServer {
    fn start(mut config: ServerConfig) -> TestServer {
        config.addr = "127.0.0.1:0".to_string();
        let server = Server::bind(config).expect("bind ephemeral port");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread,
        }
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
        http_request(self.addr, method, path, body, TIMEOUT).expect("request")
    }

    fn stop(self) -> MetricsSnapshot {
        self.handle.shutdown();
        self.thread.join().expect("server thread")
    }
}

fn generate_only_body(source: &str) -> String {
    SynthesisRequest::generate_only(source)
        .with_id("test")
        .to_json()
        .to_string()
}

#[test]
fn healthz_reports_ok_and_metrics_are_flat_json() {
    let server = TestServer::start(ServerConfig::default());
    let health = server.request("GET", "/healthz", None);
    assert_eq!(health.status, 200);
    let health_json = Json::parse(&health.body).expect("healthz JSON");
    assert_eq!(health_json.get("status").and_then(Json::as_str), Some("ok"));

    let metrics = server.request("GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    let metrics_json = Json::parse(&metrics.body).expect("metrics JSON");
    for (name, value) in metrics_json.as_object().expect("object") {
        assert!(value.as_f64().is_some(), "metric `{name}` is not flat");
    }
    assert!(metrics_json.get("requests_total").is_some());

    let summary = server.stop();
    assert_eq!(summary.healthz_requests, 1);
    assert_eq!(summary.metrics_requests, 1);
}

#[test]
fn synth_round_trips_canonical_report_json_and_caches_repeats() {
    let server = TestServer::start(ServerConfig::default());
    let body = generate_only_body(TICK);

    let first = server.request("POST", "/v1/synth", Some(&body));
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-polyinv-cache"), Some("miss"));
    let trimmed = first.body.trim_end_matches('\n');
    let report = SynthesisReport::from_json_str(trimmed).expect("canonical report");
    assert_eq!(report.to_json_string(), trimmed, "body is canonical JSON");
    assert_eq!(report.id, "test");

    // Identical request → served from the result cache, byte-identical body.
    let second = server.request("POST", "/v1/synth", Some(&body));
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-polyinv-cache"), Some("hit"));
    assert_eq!(second.body, first.body);

    // A different id is still the same computation → still a hit.
    let other_id = SynthesisRequest::generate_only(TICK)
        .with_id("other")
        .to_json()
        .to_string();
    let third = server.request("POST", "/v1/synth", Some(&other_id));
    assert_eq!(third.header("x-polyinv-cache"), Some("hit"));

    let summary = server.stop();
    assert_eq!(summary.synth_requests, 3);
    assert_eq!(summary.cache_hits, 2);
    assert_eq!(summary.cache_misses, 1);
    assert_eq!(summary.cache_entries, 1);
}

#[test]
fn check_endpoint_defaults_to_check_mode() {
    let server = TestServer::start(ServerConfig::default());
    // No "mode" in the body: /v1/check must default it to `check`.
    let body = format!(
        "{{\"source\": {}, \"assertions\": [{{\"label\": null, \"function\": null, \"text\": \"1 > 0\"}}]}}",
        Json::string(TICK)
    );
    let response = server.request("POST", "/v1/check", Some(&body));
    assert_eq!(response.status, 200, "{}", response.body);
    let report = Json::parse(&response.body).expect("report JSON");
    assert_eq!(report.get("mode").and_then(Json::as_str), Some("check"));
    server.stop();
}

#[test]
fn malformed_json_is_a_structured_400() {
    let server = TestServer::start(ServerConfig::default());
    let response = server.request("POST", "/v1/synth", Some("{not json"));
    assert_eq!(response.status, 400);
    let error = Json::parse(&response.body).expect("error JSON");
    assert_eq!(error.get("error").and_then(Json::as_str), Some("json"));
    assert!(error.get("message").is_some());

    // Valid JSON, invalid program → 422 with the parse error's span info.
    let bad_program = generate_only_body("f(x) { x := ; return x }");
    let response = server.request("POST", "/v1/synth", Some(&bad_program));
    assert_eq!(response.status, 422, "{}", response.body);
    let error = Json::parse(&response.body).expect("error JSON");
    assert_eq!(error.get("error").and_then(Json::as_str), Some("parse"));
    server.stop();
}

#[test]
fn oversized_bodies_are_rejected_before_reading() {
    let server = TestServer::start(ServerConfig {
        max_body_bytes: 64,
        ..ServerConfig::default()
    });
    let huge = generate_only_body(TICK); // > 64 bytes
    assert!(huge.len() > 64);
    let response = server.request("POST", "/v1/synth", Some(&huge));
    assert_eq!(response.status, 413);
    let error = Json::parse(&response.body).expect("error JSON");
    assert!(error
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("64-byte limit"));
    server.stop();
}

#[test]
fn unknown_paths_and_wrong_methods_are_answered() {
    let server = TestServer::start(ServerConfig::default());
    assert_eq!(server.request("GET", "/nope", None).status, 404);
    let wrong = server.request("GET", "/v1/synth", None);
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("allow"), Some("POST"));
    assert_eq!(server.request("POST", "/healthz", None).status, 405);
    server.stop();
}

#[test]
fn batch_answers_in_order_and_marks_cached_items() {
    let server = TestServer::start(ServerConfig::default());
    let double = r#"
        double(n) {
            @pre(n >= 0);
            x := 0;
            i := 0;
            while i < n do
                x := x + 2;
                i := i + 1
            od;
            return x
        }
    "#;
    let items = format!(
        "[{}, {}, {}]",
        generate_only_body(TICK),
        generate_only_body(double),
        generate_only_body(TICK) // duplicate of item 0 → cached by the batch
    );
    let response = server.request("POST", "/v1/batch", Some(&items));
    assert_eq!(response.status, 200, "{}", response.body);
    let entries = Json::parse(&response.body).expect("batch JSON");
    let entries = entries.as_array().expect("array");
    assert_eq!(entries.len(), 3);
    for entry in entries {
        assert!(entry.get("ok").is_some(), "{entry:?}");
    }
    // Items 0 and 2 are identical; with both missing the cache up front
    // they are both computed, but a *repeat* of the batch is all-cached.
    let again = server.request("POST", "/v1/batch", Some(&items));
    let entries = Json::parse(&again.body).expect("batch JSON");
    for entry in entries.as_array().expect("array") {
        assert_eq!(entry.get("cached").and_then(Json::as_bool), Some(true));
    }
    assert_eq!(again.header("x-polyinv-cache"), Some("hits=3;misses=0"));

    // A batch mixing a well-formed and a malformed item answers both.
    let mixed = format!("{{\"requests\": [{}, {{}}]}}", generate_only_body(TICK));
    let mixed = server.request("POST", "/v1/batch", Some(&mixed));
    let entries = Json::parse(&mixed.body).expect("batch JSON");
    let entries = entries.as_array().expect("array");
    assert!(entries[0].get("ok").is_some());
    assert!(entries[1].get("err").is_some());
    server.stop();
}

#[test]
fn saturation_answers_429_with_retry_after_instead_of_hanging() {
    let server = TestServer::start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    });

    // Occupy the single worker: connect and send half a request, so the
    // worker blocks in read_request until we finish or close.
    let mut busy = TcpStream::connect(server.addr).expect("connect");
    busy.write_all(b"POST /v1/synth HTTP/1.1\r\n")
        .expect("write");
    busy.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(300));

    // Fill the one queue slot with an idle connection.
    let queued = TcpStream::connect(server.addr).expect("connect");
    std::thread::sleep(Duration::from_millis(300));

    // The next connection must be rejected by the acceptor, fast.
    let started = Instant::now();
    let mut rejected = TcpStream::connect(server.addr).expect("connect");
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut raw = Vec::new();
    rejected.read_to_end(&mut raw).expect("read 429");
    let response = polyinv_server::client::parse_response(&raw).expect("parse 429");
    assert_eq!(response.status, 429);
    assert_eq!(response.header("retry-after"), Some("1"));
    let error = Json::parse(&response.body).expect("429 body");
    assert_eq!(error.get("error").and_then(Json::as_str), Some("saturated"));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "rejection must be immediate, not queued behind the busy worker"
    );

    // Free the worker and the queue slot.
    drop(busy);
    drop(queued);
    let summary = server.stop();
    assert_eq!(summary.rejected, 1);
}

#[test]
fn shutdown_drains_queued_requests_before_exiting() {
    let server = TestServer::start(ServerConfig {
        workers: 1,
        read_timeout: Duration::from_secs(20),
        ..ServerConfig::default()
    });
    let addr = server.addr;
    let body = generate_only_body(TICK);

    // Occupy the worker with a half-sent request…
    let mut busy = TcpStream::connect(addr).expect("connect");
    busy.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    let head = format!(
        "POST /v1/synth HTTP/1.1\r\ncontent-length: {}\r\n",
        body.len()
    );
    busy.write_all(head.as_bytes()).expect("write head");
    busy.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(300));

    // …queue a complete request behind it…
    let mut waiting = TcpStream::connect(addr).expect("connect");
    waiting.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    let full = format!(
        "POST /v1/synth HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    waiting.write_all(full.as_bytes()).expect("write full");
    waiting.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(300));

    // …begin the drain while both are outstanding…
    server.handle.shutdown();

    // …then finish the half-sent request. Both must still be served.
    busy.write_all(format!("\r\n{body}").as_bytes())
        .expect("finish request");
    busy.flush().expect("flush");

    let mut raw = Vec::new();
    busy.read_to_end(&mut raw).expect("read busy response");
    assert_eq!(
        polyinv_server::client::parse_response(&raw)
            .expect("busy")
            .status,
        200
    );
    let mut raw = Vec::new();
    waiting.read_to_end(&mut raw).expect("read queued response");
    assert_eq!(
        polyinv_server::client::parse_response(&raw)
            .expect("queued")
            .status,
        200
    );

    let summary = server.thread.join().expect("server thread");
    assert_eq!(summary.requests_total, 2);
    assert_eq!(summary.responses_2xx, 2);

    // The listener is gone: new connections are refused (or at best
    // connect and see the socket close without a response).
    match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
        Err(_) => {}
        Ok(mut stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            let mut buffer = Vec::new();
            let outcome = stream.read_to_end(&mut buffer);
            assert!(
                outcome.is_err() || buffer.is_empty(),
                "a drained server must not serve new requests"
            );
        }
    }
}

#[test]
fn shutdown_endpoint_acknowledges_then_drains() {
    let server = TestServer::start(ServerConfig::default());
    let response = server.request("POST", "/shutdown", None);
    assert_eq!(response.status, 200);
    let body = Json::parse(&response.body).expect("JSON");
    assert_eq!(body.get("status").and_then(Json::as_str), Some("draining"));
    let summary = server.thread.join().expect("server thread");
    assert_eq!(summary.requests_total, 1);
}
