//! Property tests: arbitrary reports and requests survive a JSON
//! write→parse round trip bit-for-bit.

use polyinv_api::{
    AssertionSpec, Json, Mode, ReportStatus, SynthesisOptions, SynthesisReport, SynthesisRequest,
};
use proptest::prelude::*;

/// Strings over a deliberately nasty alphabet: quotes, backslashes, control
/// characters, multi-byte UTF-8 and astral-plane symbols.
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..12, 0..10).prop_map(|picks| {
        const ALPHABET: [&str; 12] = [
            "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "ℓ₅", "ϒ", "😀", "∧",
        ];
        picks.iter().map(|&i| ALPHABET[i]).collect()
    })
}

fn arb_mode() -> impl Strategy<Value = Mode> {
    (0usize..4).prop_map(|i| [Mode::Weak, Mode::Strong, Mode::Check, Mode::GenerateOnly][i])
}

fn arb_status() -> impl Strategy<Value = ReportStatus> {
    (0usize..5).prop_map(|i| {
        [
            ReportStatus::Synthesized,
            ReportStatus::Failed,
            ReportStatus::Certified,
            ReportStatus::NotCertified,
            ReportStatus::Generated,
        ][i]
    })
}

fn arb_report() -> impl Strategy<Value = SynthesisReport> {
    (
        (arb_string(), arb_mode(), arb_status(), arb_string()),
        (
            (0usize..100_000, 0usize..100_000, -1.0e9..1.0e9),
            (0usize..50, 0usize..50),
            prop::collection::vec(arb_string(), 0..6),
            prop::collection::vec((arb_string(), 0.0..3600.0), 0..5),
        ),
    )
        .prop_map(
            |(
                (id, mode, status, backend),
                (
                    (system_size, num_unknowns, violation),
                    (pairs_total, pairs_certified),
                    lines,
                    timings,
                ),
            )| {
                let orchestrator = if pairs_certified % 3 == 0 {
                    None
                } else {
                    Some(polyinv_api::OrchestratorRecord {
                        attempts: pairs_total,
                        rungs_tried: pairs_certified.max(1),
                        rung_reached: (pairs_certified % 5) as u32,
                        winning_backend: backend.clone(),
                        certified: pairs_certified % 2 == 0,
                        certificate_violation: violation.abs() * 1e-7,
                        history: vec![polyinv_api::AttemptRecord {
                            upsilon: (pairs_total % 3) as u32,
                            backend: backend.clone(),
                            feasible: pairs_total % 2 == 0,
                            violation: violation.abs() * 1e-5,
                            seconds: violation.abs() * 1e-9,
                        }],
                    })
                };
                SynthesisReport {
                    id,
                    mode,
                    status,
                    backend,
                    system_size,
                    num_unknowns,
                    violation,
                    pairs_total,
                    pairs_certified,
                    invariants: lines.clone(),
                    postconditions: lines.clone(),
                    timings,
                    diagnostics: lines,
                    validate: if pairs_total % 3 == 0 {
                        None
                    } else {
                        Some(polyinv_api::ValidationRecord {
                            trace_runs: pairs_total,
                            trace_states: num_unknowns,
                            trace_violations: pairs_certified,
                            exact: (pairs_total % 3 == 1).then(|| polyinv_api::ExactRecord {
                                constraints: system_size,
                                worst_violation: format!("{}/1000000", pairs_certified),
                                worst_violation_f64: pairs_certified as f64 * 1e-6,
                                tolerance: "1/1000".to_string(),
                                passed: pairs_certified == 0,
                            }),
                            passed: pairs_certified == 0,
                        })
                    },
                    solver: if pairs_certified % 2 == 0 {
                        None
                    } else {
                        Some(polyinv_api::SolverRecord {
                            iterations: pairs_total,
                            restarts: pairs_certified,
                            final_residual: violation * violation,
                            nnz_jacobian: system_size,
                            nnz_factor: num_unknowns,
                            factorizations: pairs_total + pairs_certified,
                            factor_seconds: violation.abs() * 1e-9,
                            solve_seconds: violation.abs() * 1e-10,
                            eval_seconds: violation.abs() * 1e-11,
                            threads: pairs_total % 9,
                        })
                    },
                    orchestrator,
                    presolve: if pairs_total % 2 == 0 {
                        None
                    } else {
                        Some(polyinv_api::PresolveRecord {
                            size_before: system_size,
                            size_after: system_size / 2,
                            unknowns_before: num_unknowns,
                            unknowns_after: num_unknowns / 2,
                            rounds: pairs_total,
                            pinned: pairs_certified,
                            fixed: pairs_total,
                            affine: pairs_certified,
                            solved: pairs_total / 2,
                            freed: pairs_certified / 2,
                            rectified: pairs_total / 3,
                            dropped: system_size.saturating_sub(system_size / 2),
                            duplicates: pairs_certified / 3,
                            seconds: violation.abs() * 1e-8,
                        })
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reports_round_trip_through_json(report in arb_report()) {
        let text = report.to_json_string();
        let reparsed = SynthesisReport::from_json_str(&text).unwrap();
        prop_assert_eq!(&reparsed, &report);
        // Serialization is deterministic: the same report gives the same
        // bytes, and re-serializing the reparsed report changes nothing.
        prop_assert_eq!(reparsed.to_json_string(), text);
    }

    #[test]
    fn json_documents_round_trip_through_the_writer(
        strings in prop::collection::vec(arb_string(), 1..5),
        number in -1.0e12..1.0e12,
    ) {
        let doc = Json::Object(
            strings
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    (format!("k{i}"), match i % 3 {
                        0 => Json::Str(s.clone()),
                        1 => Json::Number(number + i as f64),
                        _ => Json::Array(vec![Json::Str(s.clone()), Json::Bool(i % 2 == 0)]),
                    })
                })
                .collect(),
        );
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        prop_assert_eq!(reparsed, doc);
    }
}

#[test]
fn requests_round_trip_including_options() {
    let request = SynthesisRequest::weak("sum(n) {\n    @pre(n >= 1);\n    return n\n}")
        .with_id("table-2/row-3")
        .with_options(SynthesisOptions::with_degree_and_size(2, 2).with_upsilon(4))
        .with_target("0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0")
        .with_assertion(AssertionSpec::at(3, "n > 0"))
        .with_backend("penalty")
        .with_attempts(9);
    let json = request.to_json().to_string();
    let reparsed = SynthesisRequest::from_json_str(&json).unwrap();
    assert_eq!(reparsed.id, request.id);
    assert_eq!(reparsed.source, request.source);
    assert_eq!(reparsed.mode, request.mode);
    assert_eq!(reparsed.assertions, request.assertions);
    assert_eq!(reparsed.backend, request.backend);
    assert_eq!(reparsed.attempts, request.attempts);
    assert_eq!(reparsed.options.degree, 2);
    assert_eq!(reparsed.options.size, 2);
    assert_eq!(reparsed.options.upsilon, 4);
    // And the serialized form itself is stable.
    assert_eq!(reparsed.to_json().to_string(), json);
}
