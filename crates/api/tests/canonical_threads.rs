//! Canonical reports must be byte-identical across worker-thread counts.
//!
//! The chunked parallel evaluator and the subtree-parallel LDLᵀ promise
//! bitwise-identical numerics at any `POLYINV_THREADS`, and
//! `SynthesisReport::canonical` normalizes the two report fields that
//! legitimately vary with the environment (wall-clock timings and the
//! recorded worker count). Together that makes the canonical JSON a stable
//! fingerprint of a solve — which is exactly what the CI determinism gate
//! compares between `POLYINV_THREADS=1` and `POLYINV_THREADS=8` runs.

use polyinv_api::{Engine, ReportStatus, SynthesisRequest};

const SOURCE: &str = r#"
inc(x) {
    @pre(x >= 0);
    while x <= 10 do
        x := x + 1
    od;
    return x
}
"#;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with `cargo test --release`"
)]
fn canonical_reports_are_byte_identical_across_polyinv_threads() {
    let request = SynthesisRequest::weak(SOURCE)
        .with_id("canonical-threads")
        .with_degree(1)
        .with_target("x + 1 > 0");
    let mut snapshots: Vec<(String, String)> = Vec::new();
    for threads in ["1", "4", "8"] {
        // The env var is read once per solve; each run gets a fresh Engine
        // so no cached state leaks between thread configurations.
        std::env::set_var("POLYINV_THREADS", threads);
        let report = Engine::new().run(&request).unwrap();
        assert_eq!(report.status, ReportStatus::Synthesized);
        snapshots.push((
            threads.to_string(),
            report.canonical().to_json().pretty(),
        ));
    }
    std::env::remove_var("POLYINV_THREADS");
    let (_, reference) = &snapshots[0];
    for (threads, snapshot) in &snapshots[1..] {
        assert_eq!(
            snapshot, reference,
            "canonical report diverged at POLYINV_THREADS={threads}"
        );
    }
}
