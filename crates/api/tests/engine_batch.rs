//! Engine batch semantics: parallel execution with deterministic,
//! request-ordered output.

use polyinv_api::{ApiError, Engine, Mode, ReportStatus, SynthesisRequest};

const TICK: &str = r#"
    tick(x) {
        @pre(x >= 0);
        while x <= 2 do
            x := x + 1
        od;
        return x
    }
"#;

const DOUBLE: &str = r#"
    double(n) {
        @pre(n >= 0);
        x := 0;
        i := 0;
        while i < n do
            x := x + 2;
            i := i + 1
        od;
        return x
    }
"#;

/// A mixed batch: four generation runs over two distinct programs and two
/// option sets, plus a cheap certificate check and one failing request.
fn batch() -> Vec<SynthesisRequest> {
    vec![
        SynthesisRequest::generate_only(TICK).with_id("tick/d2"),
        SynthesisRequest::generate_only(TICK)
            .with_id("tick/d1")
            .with_degree(1),
        SynthesisRequest::generate_only(DOUBLE).with_id("double/d2"),
        SynthesisRequest::generate_only(DOUBLE)
            .with_id("double/d1")
            .with_degree(1)
            .with_upsilon(0),
        SynthesisRequest::check(TICK)
            .with_id("tick/check")
            .with_target("1 > 0"),
        SynthesisRequest::generate_only("f(x) { x := ; return x }").with_id("broken"),
    ]
}

#[test]
fn batches_run_at_least_four_requests_with_request_ordered_output() {
    let engine = Engine::new();
    let requests = batch();
    assert!(requests.len() >= 4);
    let outcomes = engine.run_batch(&requests);
    assert_eq!(outcomes.len(), requests.len());

    // Output order is request order, whatever the completion order was.
    for (request, outcome) in requests.iter().zip(&outcomes) {
        match outcome {
            Ok(report) => assert_eq!(report.id, request.id),
            Err(error) => {
                assert_eq!(request.id, "broken");
                assert!(matches!(error, ApiError::Parse { .. }));
            }
        }
    }
    let statuses: Vec<ReportStatus> = outcomes
        .iter()
        .filter_map(|o| o.as_ref().ok().map(|r| r.status))
        .collect();
    assert_eq!(
        statuses,
        vec![
            ReportStatus::Generated,
            ReportStatus::Generated,
            ReportStatus::Generated,
            ReportStatus::Generated,
            ReportStatus::Certified,
        ]
    );

    // The degree-1 reduction is strictly smaller than the degree-2 one.
    let size = |index: usize| outcomes[index].as_ref().unwrap().system_size;
    assert!(size(1) < size(0));
    assert!(size(3) < size(2));

    // Two sources were parsed despite six requests: the cache deduplicates
    // per-source (the broken request never caches).
    assert_eq!(engine.cached_programs(), 2);
}

#[test]
fn identical_batches_serialize_to_identical_json() {
    let engine = Engine::new();
    let requests = batch();

    let serialize = |outcomes: Vec<Result<polyinv_api::SynthesisReport, ApiError>>| -> String {
        outcomes
            .into_iter()
            .map(|outcome| match outcome {
                // `canonical()` zeroes the wall-clock timings — the one
                // field two identical runs legitimately disagree on.
                Ok(report) => report.canonical().to_json_string(),
                Err(error) => error.to_json().to_string(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };

    let first = serialize(engine.run_batch(&requests));
    let second = serialize(engine.run_batch(&requests));
    assert_eq!(first, second, "batch output must be byte-identical");

    // A fresh engine (cold cache) also produces the same bytes.
    let third = serialize(Engine::new().run_batch(&requests));
    assert_eq!(first, third);
}

#[test]
fn identical_requests_produce_byte_identical_reports_through_the_interned_core() {
    // The interned monomial core allocates MonoIds in discovery order; two
    // runs of the same request must still serialize identically (canonical
    // graded-lexicographic order is restored at every conversion boundary).
    // The recursive benchmark exercises the call/post-condition paths.
    let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
    let request = SynthesisRequest::generate_only(benchmark.source).with_id("det");
    let engine = Engine::new();
    let first = engine.run(&request).unwrap().canonical().to_json_string();
    let second = engine.run(&request).unwrap().canonical().to_json_string();
    assert_eq!(first, second);
    // A fresh engine (cold parse cache, fresh monomial table) too.
    let third = Engine::new()
        .run(&request)
        .unwrap()
        .canonical()
        .to_json_string();
    assert_eq!(first, third);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "solver-bound; run with `cargo test --release`"
)]
fn sparse_weak_solves_produce_byte_identical_canonical_reports() {
    // The sparse LM back-end fans its restarts out over worker threads but
    // keeps the restart-winner policy deterministic, so two full weak-mode
    // solves of the same golden scenario must serialize to the same
    // canonical JSON — solver statistics included (their wall-clock split
    // is the one non-deterministic part and is zeroed by `canonical()`).
    let source = include_str!("../../../programs/inc.poly");
    let request = SynthesisRequest::weak(source)
        .with_id("det-solve")
        .with_degree(1)
        .with_target("x + 1 > 0");
    let engine = Engine::new();
    let first = engine.run(&request).unwrap();
    assert_eq!(first.status, ReportStatus::Synthesized);
    let solver = first.solver.as_ref().expect("weak runs report stats");
    assert!(solver.iterations > 0);
    // Sparse-factorization counters only exist on the LM lane; the penalty
    // lane can legitimately win the portfolio race with dense statistics.
    if first.backend == "lm" {
        assert!(solver.nnz_jacobian > 0);
        assert!(solver.nnz_factor > 0);
    }
    let first = first.canonical().to_json_string();
    let second = engine.run(&request).unwrap().canonical().to_json_string();
    assert_eq!(first, second);
    // A fresh engine (cold caches, new restart threads) too.
    let third = Engine::new()
        .run(&request)
        .unwrap()
        .canonical()
        .to_json_string();
    assert_eq!(first, third);
}

#[test]
fn batch_requests_can_pick_their_own_backend() {
    let engine = Engine::new();
    let requests = vec![
        SynthesisRequest::generate_only(TICK).with_id("default"),
        SynthesisRequest::generate_only(TICK)
            .with_id("penalty")
            .with_backend("penalty"),
        SynthesisRequest::generate_only(TICK)
            .with_id("bogus")
            .with_backend("loqo"),
    ];
    let outcomes = engine.run_batch(&requests);
    assert!(outcomes[0].is_ok());
    assert!(outcomes[1].is_ok());
    assert!(matches!(
        outcomes[2],
        Err(ApiError::UnknownBackend { ref name }) if name == "loqo"
    ));
    assert_eq!(engine.backend_name(), "lm");
}

#[test]
fn strong_and_check_requests_reject_backend_overrides() {
    let engine = Engine::new();
    for request in [
        SynthesisRequest::strong(TICK).with_backend("penalty"),
        SynthesisRequest::check(TICK)
            .with_target("1 > 0")
            .with_backend("lm"),
    ] {
        assert!(matches!(
            engine.run(&request),
            Err(ApiError::InvalidRequest { .. })
        ));
    }
}

#[test]
fn one_shared_engine_serves_eight_threads_deterministically() {
    // The serving layer drives one `Arc<Engine>` from a worker pool; the
    // sharded parse cache must neither corrupt programs nor perturb output.
    // Eight threads race a mixed request set and every canonical report must
    // be byte-identical to a sequential run of the same request.
    use std::sync::Arc;

    let requests: Vec<SynthesisRequest> = (0..4)
        .flat_map(|k| {
            [
                SynthesisRequest::generate_only(TICK)
                    .with_id(format!("tick/{k}"))
                    .with_degree(1 + (k % 2) as u32),
                SynthesisRequest::generate_only(DOUBLE)
                    .with_id(format!("double/{k}"))
                    .with_upsilon((k % 3) as u32),
                SynthesisRequest::check(TICK)
                    .with_id(format!("check/{k}"))
                    .with_target("1 > 0"),
            ]
        })
        .collect();

    let sequential: Vec<String> = {
        let engine = Engine::new();
        requests
            .iter()
            .map(|request| engine.run(request).unwrap().canonical().to_json_string())
            .collect()
    };

    let engine = Arc::new(Engine::new());
    let threads = 8;
    let handles: Vec<_> = (0..threads)
        .map(|thread| {
            let engine = Arc::clone(&engine);
            let requests = requests.clone();
            std::thread::spawn(move || {
                // Each thread walks the request list from a different
                // offset, so distinct sources hit distinct cache shards at
                // the same time.
                (0..requests.len())
                    .map(|step| {
                        let index = (step + thread * 5) % requests.len();
                        let report = engine.run(&requests[index]).unwrap();
                        (index, report.canonical().to_json_string())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        for (index, json) in handle.join().unwrap() {
            assert_eq!(
                json, sequential[index],
                "concurrent report diverged from the sequential run (request {index})"
            );
        }
    }
    // Two distinct sources were parsed, however many threads raced.
    assert_eq!(engine.cached_programs(), 2);
}

#[test]
fn empty_batches_are_fine() {
    let engine = Engine::new();
    assert!(engine.run_batch(&[]).is_empty());
}

#[test]
fn modes_echo_through_reports() {
    let engine = Engine::new();
    let report = engine.run(&SynthesisRequest::generate_only(TICK)).unwrap();
    assert_eq!(report.mode, Mode::GenerateOnly);
}
