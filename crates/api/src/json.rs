//! A hand-rolled JSON document model, writer and reader.
//!
//! The workspace is vendored for offline builds, so instead of pulling in
//! `serde`/`serde_json` the API crate carries the small slice of JSON it
//! needs: a [`Json`] value tree, a deterministic writer (object keys keep
//! insertion order, `f64`s print in Rust's shortest round-trip form) and a
//! recursive-descent reader with byte-offset error reporting. Everything the
//! Engine returns round-trips through this module; see the
//! `json_roundtrip` property tests.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (they are association lists, not maps),
/// which keeps the writer deterministic: the same report always serializes
/// to the same bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite values cannot be represented in JSON and
    /// are written as `null`.
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as an insertion-ordered association list.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn string(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Looks a key up in an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes the value into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes the value with two-space indentation (for human eyes; the
    /// compact [`Display`](fmt::Display) form is the canonical one).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_string(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document. The whole input must be consumed (trailing
    /// whitespace is allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparseable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n != 0.0 && n.abs() < 9.0e15 {
        // Integral values within the exactly-representable i64 range print
        // as integers. The range guard matters: `n as i64` saturates for
        // |n| ≥ 2^63 and loses precision beyond 2^53, either of which would
        // break byte-for-byte round-tripping of large timing/metric values.
        // Zero is excluded so `-0.0` keeps its sign through the float
        // formatter instead of collapsing to `0`.
        out.push_str(&(n as i64).to_string());
    } else {
        // Rust's Display for f64 is the shortest string that round-trips,
        // which keeps the writer deterministic (`0` and `-0` included).
        out.push_str(&n.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An error produced while reading a JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect_byte(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.error("expected `null`"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.error("expected `true`"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.error("expected `false`"))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if *b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", *b as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; compensate
                            // for the +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character (the input came
                    // from a &str, so the encoding is valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by match");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let value =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_documents_deterministically() {
        let doc = Json::object(vec![
            ("name", Json::string("running\nexample")),
            ("size", Json::Number(2348.0)),
            ("ratio", Json::Number(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Array(vec![Json::Number(1.0), Json::Number(-2.0)]),
            ),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"running\nexample","size":2348,"ratio":0.5,"ok":true,"none":null,"items":[1,-2]}"#
        );
        // Writing twice gives the same bytes.
        assert_eq!(doc.to_string(), doc.to_string());
    }

    #[test]
    fn parses_what_it_writes() {
        let doc = Json::object(vec![
            ("text", Json::string("quotes \" and \\ and \t tabs")),
            ("nested", Json::object(vec![("k", Json::Array(vec![]))])),
            ("big", Json::Number(1.25e300)),
            ("neg", Json::Number(-17.0)),
        ]);
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed, doc);
        let pretty = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(pretty, doc);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(Json::parse(r#""é€""#).unwrap(), Json::Str("é€".to_string()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for (text, offset_at_least) in [
            ("{", 1),
            ("[1,]", 3),
            ("{\"a\" 1}", 5),
            ("tru", 0),
            ("1 2", 2),
            ("\"abc", 4),
        ] {
            let error = Json::parse(text).unwrap_err();
            assert!(
                error.offset >= offset_at_least,
                "{text}: offset {} message {}",
                error.offset,
                error.message
            );
        }
    }

    #[test]
    fn large_integral_numbers_round_trip_byte_for_byte() {
        // |n| ≥ 2^63 used to saturate through the `n as i64` fast path;
        // the range guard must route them through the float formatter.
        let big = 2f64.powi(63); // 9223372036854775808
        let huge = 2f64.powi(64) * 3.0;
        let above_2_53 = 9.3e15; // integral, not exactly i64-precise
        for value in [
            big,
            -big,
            huge,
            above_2_53,
            -above_2_53,
            1.0e300,
            -0.0,
            0.0,
            42.0,
            -42.0,
        ] {
            let mut text = String::new();
            Json::Number(value).write(&mut text);
            let reparsed = Json::parse(&text).unwrap();
            // Value round-trips exactly...
            assert_eq!(
                reparsed.as_f64().unwrap().to_bits(),
                value.to_bits(),
                "{text}"
            );
            // ...and re-serializing yields the same bytes.
            let mut again = String::new();
            reparsed.write(&mut again);
            assert_eq!(again, text);
        }
        // The integer fast path still produces integer tokens.
        let mut text = String::new();
        Json::Number(2348.0).write(&mut text);
        assert_eq!(text, "2348");
        // Negative zero keeps its sign (the old cast collapsed it to `0`,
        // breaking byte-for-byte round-trips of documents containing `-0`).
        let mut neg_zero = String::new();
        Json::Number(-0.0).write(&mut neg_zero);
        assert_eq!(neg_zero, "-0");
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        let mut out = String::new();
        Json::Number(f64::NAN).write(&mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, true, "x"]}}"#).unwrap();
        let inner = doc.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(inner[0].as_usize(), Some(1));
        assert_eq!(inner[1].as_bool(), Some(true));
        assert_eq!(inner[2].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
