//! The one exhaustive error type of the API surface.
//!
//! Every failure mode of the Engine — front-end parse errors (with source
//! spans), unresolvable requests, unknown back-ends, baseline
//! inapplicability, solver non-convergence and JSON/IO problems — is a
//! variant of [`ApiError`]. Callers below the API keep their precise error
//! types (`polyinv_lang::Error`, `polyinv_farkas::Inapplicability`); the
//! conversions here are the single place where they meet.

use std::fmt;

use crate::json::{Json, JsonError};

/// Everything that can go wrong when serving a
/// [`SynthesisRequest`](crate::SynthesisRequest).
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The program source did not lex, parse or resolve.
    Parse {
        /// The front-end's message.
        message: String,
        /// 1-based source line, when known.
        line: Option<usize>,
        /// 1-based source column, when known.
        column: Option<usize>,
    },
    /// A target / invariant assertion did not parse in the scope of the
    /// program's main function.
    Assertion {
        /// The assertion text as given in the request.
        text: String,
        /// The front-end's message.
        message: String,
        /// 1-based line within the assertion text, when known.
        line: Option<usize>,
        /// 1-based column within the assertion text, when known.
        column: Option<usize>,
    },
    /// The request named a solver back-end the Engine does not know.
    UnknownBackend {
        /// The unrecognized name.
        name: String,
    },
    /// An assertion referenced a label index outside the main function.
    UnknownLabel {
        /// The requested label index.
        index: usize,
        /// The number of labels the main function has.
        available: usize,
    },
    /// The request is structurally invalid (wrong mode/field combination,
    /// target degree above the template degree, …).
    InvalidRequest {
        /// What is wrong.
        message: String,
    },
    /// The program contains function calls but the run was configured
    /// without the recursive variants of the algorithm, so the call has no
    /// post-condition template to abstract with. Carries the call's source
    /// span.
    RecursionRequired {
        /// The callee of the offending call.
        callee: String,
        /// The label of the call statement.
        label: String,
        /// 1-based source line of the call statement, when known.
        line: Option<usize>,
    },
    /// A baseline or algorithm rejected the program as out of scope (e.g.
    /// the Farkas baseline on a non-linear program).
    Inapplicable {
        /// The reason reported by the rejecting component.
        reason: String,
    },
    /// The solver ran but did not reach feasibility; the attempt's best
    /// violation and back-end identify the failure.
    Unsolved {
        /// Worst constraint violation of the returned point.
        violation: f64,
        /// The back-end that made the attempt.
        backend: String,
    },
    /// The certificate checker could not certify every constraint pair.
    Uncertified {
        /// Number of pairs without a certificate.
        failed: usize,
        /// Total number of constraint pairs.
        total: usize,
    },
    /// A JSON document (batch file, serialized request/report) was invalid.
    Json {
        /// What is wrong.
        message: String,
        /// Byte offset into the document.
        offset: usize,
    },
    /// A file could not be read or written (CLI only).
    Io {
        /// The offending path.
        path: String,
        /// The OS error message.
        message: String,
    },
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Parse {
                message,
                line,
                column,
            } => {
                write!(f, "parse error")?;
                write_span(f, *line, *column)?;
                write!(f, ": {message}")
            }
            ApiError::Assertion {
                text,
                message,
                line,
                column,
            } => {
                write!(f, "invalid assertion `{text}`")?;
                write_span(f, *line, *column)?;
                write!(f, ": {message}")
            }
            ApiError::UnknownBackend { name } => {
                write!(
                    f,
                    "unknown solver back-end `{name}` (expected `lm` or `penalty`)"
                )
            }
            ApiError::UnknownLabel { index, available } => write!(
                f,
                "label index {index} out of range (the main function has {available} labels)"
            ),
            ApiError::InvalidRequest { message } => write!(f, "invalid request: {message}"),
            ApiError::RecursionRequired {
                callee,
                label,
                line,
            } => {
                write!(f, "call to `{callee}` at {label}")?;
                write_span(f, *line, None)?;
                write!(
                    f,
                    " requires recursive synthesis; the run was configured without it"
                )
            }
            ApiError::Inapplicable { reason } => write!(f, "not applicable: {reason}"),
            ApiError::Unsolved { violation, backend } => write!(
                f,
                "solver `{backend}` did not reach feasibility (violation {violation:.3e})"
            ),
            ApiError::Uncertified { failed, total } => write!(
                f,
                "{failed} of {total} constraint pairs could not be certified"
            ),
            ApiError::Json { message, offset } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            ApiError::Io { path, message } => write!(f, "cannot access `{path}`: {message}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<polyinv_lang::Error> for ApiError {
    fn from(error: polyinv_lang::Error) -> Self {
        ApiError::Parse {
            line: error.line(),
            column: error.column(),
            message: error.message().to_string(),
        }
    }
}

impl From<polyinv_constraints::ConstraintError> for ApiError {
    fn from(error: polyinv_constraints::ConstraintError) -> Self {
        match &error {
            polyinv_constraints::ConstraintError::CallsRequireRecursiveMode {
                label,
                callee,
                line,
            } => ApiError::RecursionRequired {
                callee: callee.clone(),
                label: label.to_string(),
                line: *line,
            },
            other => ApiError::InvalidRequest {
                message: other.to_string(),
            },
        }
    }
}

impl From<polyinv_farkas::Inapplicability> for ApiError {
    fn from(reason: polyinv_farkas::Inapplicability) -> Self {
        ApiError::Inapplicable {
            reason: reason.to_string(),
        }
    }
}

impl From<JsonError> for ApiError {
    fn from(error: JsonError) -> Self {
        ApiError::Json {
            message: error.message,
            offset: error.offset,
        }
    }
}

impl ApiError {
    /// A short stable identifier for the variant (used as the `error` field
    /// of the JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::Parse { .. } => "parse",
            ApiError::Assertion { .. } => "assertion",
            ApiError::UnknownBackend { .. } => "unknown-backend",
            ApiError::UnknownLabel { .. } => "unknown-label",
            ApiError::InvalidRequest { .. } => "invalid-request",
            ApiError::RecursionRequired { .. } => "recursion-required",
            ApiError::Inapplicable { .. } => "inapplicable",
            ApiError::Unsolved { .. } => "unsolved",
            ApiError::Uncertified { .. } => "uncertified",
            ApiError::Json { .. } => "json",
            ApiError::Io { .. } => "io",
        }
    }

    /// Serializes the error as a JSON object (`{"error": kind, "message":
    /// human-readable}` plus the variant's structured fields).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("error".to_string(), Json::string(self.kind())),
            ("message".to_string(), Json::string(self.to_string())),
        ];
        match self {
            ApiError::Parse { line, column, .. } | ApiError::Assertion { line, column, .. } => {
                fields.push(("line".to_string(), opt_number(*line)));
                fields.push(("column".to_string(), opt_number(*column)));
            }
            ApiError::UnknownLabel { index, available } => {
                fields.push(("index".to_string(), Json::Number(*index as f64)));
                fields.push(("available".to_string(), Json::Number(*available as f64)));
            }
            ApiError::Unsolved { violation, backend } => {
                fields.push(("violation".to_string(), Json::Number(*violation)));
                fields.push(("backend".to_string(), Json::string(backend.clone())));
            }
            ApiError::Uncertified { failed, total } => {
                fields.push(("failed".to_string(), Json::Number(*failed as f64)));
                fields.push(("total".to_string(), Json::Number(*total as f64)));
            }
            ApiError::RecursionRequired {
                callee,
                label,
                line,
            } => {
                fields.push(("callee".to_string(), Json::string(callee.clone())));
                fields.push(("label".to_string(), Json::string(label.clone())));
                fields.push(("line".to_string(), opt_number(*line)));
            }
            _ => {}
        }
        Json::Object(fields)
    }
}

fn write_span(
    f: &mut fmt::Formatter<'_>,
    line: Option<usize>,
    column: Option<usize>,
) -> fmt::Result {
    match (line, column) {
        (Some(l), Some(c)) => write!(f, " at line {l}, column {c}"),
        (Some(l), None) => write!(f, " at line {l}"),
        _ => Ok(()),
    }
}

fn opt_number(value: Option<usize>) -> Json {
    match value {
        Some(v) => Json::Number(v as f64),
        None => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_spans_when_known() {
        let error = ApiError::from(polyinv_lang::Error::at("expected `)`", 3, 14));
        assert_eq!(
            error.to_string(),
            "parse error at line 3, column 14: expected `)`"
        );
        let error = ApiError::from(polyinv_lang::Error::new("empty program"));
        assert_eq!(error.to_string(), "parse error: empty program");
    }

    #[test]
    fn implements_std_error_end_to_end() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        let error = ApiError::UnknownBackend {
            name: "loqo".to_string(),
        };
        assert_error(&error);
        assert_eq!(error.kind(), "unknown-backend");
    }

    #[test]
    fn constraint_errors_convert_with_the_call_span() {
        let error: ApiError = polyinv_constraints::ConstraintError::CallsRequireRecursiveMode {
            label: polyinv_lang::Label::new(4),
            callee: "rsum".to_string(),
            line: Some(7),
        }
        .into();
        match &error {
            ApiError::RecursionRequired {
                callee,
                label,
                line,
            } => {
                assert_eq!(callee, "rsum");
                assert_eq!(label, "l4");
                assert_eq!(*line, Some(7));
            }
            other => panic!("expected RecursionRequired, got {other:?}"),
        }
        assert_eq!(error.kind(), "recursion-required");
        assert!(error.to_string().contains("line 7"));
        let json = error.to_json();
        assert_eq!(json.get("callee").unwrap().as_str(), Some("rsum"));
        assert_eq!(json.get("line").unwrap().as_usize(), Some(7));
    }

    #[test]
    fn inapplicability_converts() {
        let reason = polyinv_farkas::Inapplicability::Recursive;
        let error: ApiError = reason.into();
        assert!(matches!(error, ApiError::Inapplicable { .. }));
        assert!(error.to_string().contains("recursive"));
    }

    #[test]
    fn json_form_carries_structured_fields() {
        let error = ApiError::Unsolved {
            violation: 1.5e-3,
            backend: "lm".to_string(),
        };
        let json = error.to_json();
        assert_eq!(json.get("error").unwrap().as_str(), Some("unsolved"));
        assert_eq!(json.get("violation").unwrap().as_f64(), Some(1.5e-3));
    }
}
