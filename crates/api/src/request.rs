//! The serializable request side of the API.

use polyinv_arith::Rational;
use polyinv_constraints::{SosEncoding, SynthesisOptions};

use crate::error::ApiError;
use crate::json::Json;

/// What the Engine should do with a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `WeakInvSynth` / `RecWeakInvSynth`: synthesize one inductive
    /// invariant containing the request's target assertions.
    Weak,
    /// `StrongInvSynth` / `RecStrongInvSynth`: enumerate a representative
    /// set of distinct inductive invariants.
    Strong,
    /// Certify a *given* candidate invariant (the request's assertions) by
    /// searching for the sum-of-squares certificate of every constraint
    /// pair.
    Check,
    /// Run Steps 1–3 only and report the generated system's metrics.
    GenerateOnly,
}

impl Mode {
    /// The stable string form used in JSON and on the CLI.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Weak => "weak",
            Mode::Strong => "strong",
            Mode::Check => "check",
            Mode::GenerateOnly => "generate-only",
        }
    }
}

impl std::str::FromStr for Mode {
    type Err = ApiError;

    fn from_str(text: &str) -> Result<Mode, ApiError> {
        match text {
            "weak" => Ok(Mode::Weak),
            "strong" => Ok(Mode::Strong),
            "check" => Ok(Mode::Check),
            "generate-only" => Ok(Mode::GenerateOnly),
            other => Err(ApiError::InvalidRequest {
                message: format!(
                    "unknown mode `{other}` (expected weak|strong|check|generate-only)"
                ),
            }),
        }
    }
}

/// A polynomial assertion (`text` parses to `p > 0` / `p ≥ 0`) attached to a
/// program point.
///
/// In [`Mode::Weak`] these are the target assertions the synthesized
/// invariant must contain; in [`Mode::Check`] they form the candidate
/// invariant (and, via [`AssertionSpec::postcondition`], the candidate
/// post-conditions of recursive programs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionSpec {
    /// Index into the main function's label list; `None` means the exit
    /// label.
    pub label: Option<usize>,
    /// For recursive checking: attach the assertion to this function's
    /// post-condition instead of a label.
    pub function: Option<String>,
    /// The assertion text, e.g. `"0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0"`.
    pub text: String,
}

impl AssertionSpec {
    /// An assertion at the main function's exit label.
    pub fn at_exit(text: impl Into<String>) -> Self {
        AssertionSpec {
            label: None,
            function: None,
            text: text.into(),
        }
    }

    /// An assertion at the label with the given index (into the main
    /// function's label list).
    pub fn at(label: usize, text: impl Into<String>) -> Self {
        AssertionSpec {
            label: Some(label),
            function: None,
            text: text.into(),
        }
    }

    /// A post-condition assertion for `function` (checking recursive
    /// programs).
    pub fn postcondition(function: impl Into<String>, text: impl Into<String>) -> Self {
        AssertionSpec {
            label: None,
            function: Some(function.into()),
            text: text.into(),
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "label",
                match self.label {
                    Some(index) => Json::Number(index as f64),
                    None => Json::Null,
                },
            ),
            (
                "function",
                match &self.function {
                    Some(name) => Json::string(name.clone()),
                    None => Json::Null,
                },
            ),
            ("text", Json::string(self.text.clone())),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, ApiError> {
        Ok(AssertionSpec {
            label: match json.get("label") {
                Some(Json::Null) | None => None,
                Some(value) => Some(value.as_usize().ok_or_else(|| invalid("label"))?),
            },
            function: match json.get("function") {
                Some(Json::Null) | None => None,
                Some(value) => Some(
                    value
                        .as_str()
                        .ok_or_else(|| invalid("function"))?
                        .to_string(),
                ),
            },
            text: json
                .get("text")
                .and_then(Json::as_str)
                .ok_or_else(|| invalid("text"))?
                .to_string(),
        })
    }
}

/// One unit of work for the [`Engine`](crate::Engine): a program source, a
/// mode, reduction options and the mode's assertions.
#[derive(Debug, Clone)]
pub struct SynthesisRequest {
    /// Caller-chosen identifier, echoed into the report (useful for batch
    /// requests).
    pub id: String,
    /// The program in the paper's mini-language.
    pub source: String,
    /// What to do.
    pub mode: Mode,
    /// Reduction options (degree, conjuncts, ϒ, encoding, …).
    pub options: SynthesisOptions,
    /// Target assertions ([`Mode::Weak`]) or candidate invariant atoms
    /// ([`Mode::Check`]).
    pub assertions: Vec<AssertionSpec>,
    /// Solver back-end by stable name (`"lm"`, `"penalty"`); `None` uses the
    /// Engine's default.
    pub backend: Option<String>,
    /// Number of multi-start attempts for [`Mode::Strong`]; `None` uses the
    /// enumeration default.
    pub attempts: Option<usize>,
    /// Wall-clock budget for the whole solve ([`Mode::Weak`] only), in
    /// seconds. `0.0` (the default) means unbudgeted: the orchestrator runs
    /// its full ladder. A positive budget still always attempts the first
    /// rung, so every request produces a real verdict.
    pub solve_budget_seconds: f64,
}

impl SynthesisRequest {
    /// A request with the given mode and program source and default options.
    pub fn new(mode: Mode, source: impl Into<String>) -> Self {
        SynthesisRequest {
            id: String::new(),
            source: source.into(),
            mode,
            options: SynthesisOptions::default(),
            assertions: Vec::new(),
            backend: None,
            attempts: None,
            solve_budget_seconds: 0.0,
        }
    }

    /// A weak-synthesis request.
    pub fn weak(source: impl Into<String>) -> Self {
        SynthesisRequest::new(Mode::Weak, source)
    }

    /// A strong-synthesis (enumeration) request.
    pub fn strong(source: impl Into<String>) -> Self {
        SynthesisRequest::new(Mode::Strong, source)
    }

    /// A certificate-check request.
    pub fn check(source: impl Into<String>) -> Self {
        SynthesisRequest::new(Mode::Check, source)
    }

    /// A generation-only (Steps 1–3) request.
    pub fn generate_only(source: impl Into<String>) -> Self {
        SynthesisRequest::new(Mode::GenerateOnly, source)
    }

    /// Sets the request id (builder style).
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = id.into();
        self
    }

    /// Adds a target/invariant assertion at the exit label (builder style).
    pub fn with_target(mut self, text: impl Into<String>) -> Self {
        self.assertions.push(AssertionSpec::at_exit(text));
        self
    }

    /// Adds a target/invariant assertion at a label index (builder style).
    pub fn with_target_at(mut self, label: usize, text: impl Into<String>) -> Self {
        self.assertions.push(AssertionSpec::at(label, text));
        self
    }

    /// Adds an assertion spec (builder style).
    pub fn with_assertion(mut self, spec: AssertionSpec) -> Self {
        self.assertions.push(spec);
        self
    }

    /// Replaces the reduction options (builder style).
    pub fn with_options(mut self, options: SynthesisOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the template degree (builder style).
    pub fn with_degree(mut self, degree: u32) -> Self {
        self.options = self.options.with_degree(degree);
        self
    }

    /// Sets the technical parameter ϒ (builder style).
    pub fn with_upsilon(mut self, upsilon: u32) -> Self {
        self.options = self.options.with_upsilon(upsilon);
        self
    }

    /// Selects the solver back-end by stable name (builder style).
    pub fn with_backend(mut self, name: impl Into<String>) -> Self {
        self.backend = Some(name.into());
        self
    }

    /// Sets the number of strong-synthesis attempts (builder style).
    pub fn with_attempts(mut self, attempts: usize) -> Self {
        self.attempts = Some(attempts);
        self
    }

    /// Sets the wall-clock solve budget in seconds (builder style).
    /// Non-positive or non-finite values mean unbudgeted.
    pub fn with_solve_budget(mut self, seconds: f64) -> Self {
        self.solve_budget_seconds = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        self
    }

    /// Serializes the request as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::string(self.id.clone())),
            ("mode", Json::string(self.mode.as_str())),
            ("source", Json::string(self.source.clone())),
            ("options", options_to_json(&self.options)),
            (
                "assertions",
                Json::Array(self.assertions.iter().map(AssertionSpec::to_json).collect()),
            ),
            (
                "backend",
                match &self.backend {
                    Some(name) => Json::string(name.clone()),
                    None => Json::Null,
                },
            ),
            (
                "attempts",
                match self.attempts {
                    Some(n) => Json::Number(n as f64),
                    None => Json::Null,
                },
            ),
            (
                "solve_budget_seconds",
                if self.solve_budget_seconds > 0.0 {
                    Json::Number(self.solve_budget_seconds)
                } else {
                    Json::Null
                },
            ),
        ])
    }

    /// Reads a request back from its JSON object form.
    pub fn from_json(json: &Json) -> Result<Self, ApiError> {
        let mode: Mode = json
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("mode"))?
            .parse()?;
        let source = json
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("source"))?
            .to_string();
        let mut request = SynthesisRequest::new(mode, source);
        if let Some(id) = json.get("id").and_then(Json::as_str) {
            request.id = id.to_string();
        }
        if let Some(options) = json.get("options") {
            if !options.is_null() {
                request.options = options_from_json(options)?;
            }
        }
        if let Some(assertions) = json.get("assertions").and_then(Json::as_array) {
            request.assertions = assertions
                .iter()
                .map(AssertionSpec::from_json)
                .collect::<Result<_, _>>()?;
        }
        if let Some(backend) = json.get("backend") {
            if !backend.is_null() {
                request.backend = Some(
                    backend
                        .as_str()
                        .ok_or_else(|| invalid("backend"))?
                        .to_string(),
                );
            }
        }
        if let Some(attempts) = json.get("attempts") {
            if !attempts.is_null() {
                request.attempts = Some(attempts.as_usize().ok_or_else(|| invalid("attempts"))?);
            }
        }
        // Absent or null means unbudgeted — old request snapshots predate
        // the solve budget.
        if let Some(budget) = json.get("solve_budget_seconds") {
            if !budget.is_null() {
                request = request.with_solve_budget(
                    budget
                        .as_f64()
                        .ok_or_else(|| invalid("solve_budget_seconds"))?,
                );
            }
        }
        Ok(request)
    }

    /// Parses a request from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ApiError> {
        SynthesisRequest::from_json(&Json::parse(text)?)
    }
}

fn invalid(field: &str) -> ApiError {
    ApiError::InvalidRequest {
        message: format!("missing or ill-typed field `{field}`"),
    }
}

fn rational_to_json(value: &Rational) -> Json {
    // i128 numerators/denominators do not fit in a JSON number, so both
    // parts travel as decimal strings.
    Json::object(vec![
        ("numer", Json::string(value.numer().to_string())),
        ("denom", Json::string(value.denom().to_string())),
    ])
}

fn rational_from_json(json: &Json) -> Result<Rational, ApiError> {
    let part = |field: &str| -> Result<i128, ApiError> {
        json.get(field)
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<i128>().ok())
            .ok_or_else(|| invalid(field))
    };
    Ok(Rational::new(part("numer")?, part("denom")?))
}

/// Serializes [`SynthesisOptions`] (shared by requests and reports).
pub(crate) fn options_to_json(options: &SynthesisOptions) -> Json {
    Json::object(vec![
        ("degree", Json::Number(options.degree as f64)),
        ("size", Json::Number(options.size as f64)),
        ("upsilon", Json::Number(options.upsilon as f64)),
        (
            "encoding",
            Json::string(match options.encoding {
                SosEncoding::Cholesky => "cholesky",
                SosEncoding::Gram => "gram",
            }),
        ),
        (
            "bounded_reals",
            match &options.bounded_reals {
                Some(bound) => rational_to_json(bound),
                None => Json::Null,
            },
        ),
        ("epsilon_lower", rational_to_json(&options.epsilon_lower)),
        ("force_recursive", Json::Bool(options.force_recursive)),
        ("presolve", Json::Bool(options.presolve)),
    ])
}

/// Reads [`SynthesisOptions`] back from JSON; absent fields keep defaults.
pub(crate) fn options_from_json(json: &Json) -> Result<SynthesisOptions, ApiError> {
    let mut options = SynthesisOptions::default();
    if let Some(degree) = json.get("degree") {
        options.degree = degree.as_usize().ok_or_else(|| invalid("degree"))? as u32;
    }
    if let Some(size) = json.get("size") {
        options.size = size.as_usize().ok_or_else(|| invalid("size"))?;
    }
    if let Some(upsilon) = json.get("upsilon") {
        options.upsilon = upsilon.as_usize().ok_or_else(|| invalid("upsilon"))? as u32;
    }
    if let Some(encoding) = json.get("encoding").and_then(Json::as_str) {
        options.encoding = match encoding {
            "cholesky" => SosEncoding::Cholesky,
            "gram" => SosEncoding::Gram,
            other => {
                return Err(ApiError::InvalidRequest {
                    message: format!("unknown encoding `{other}` (expected cholesky|gram)"),
                })
            }
        };
    }
    if let Some(bound) = json.get("bounded_reals") {
        if !bound.is_null() {
            options.bounded_reals = Some(rational_from_json(bound)?);
        }
    }
    if let Some(epsilon) = json.get("epsilon_lower") {
        if !epsilon.is_null() {
            options.epsilon_lower = rational_from_json(epsilon)?;
        }
    }
    if let Some(force) = json.get("force_recursive") {
        options.force_recursive = force.as_bool().ok_or_else(|| invalid("force_recursive"))?;
    }
    // Absent means the default (enabled): old request snapshots predate the
    // presolve and ran the raw system through exactly this code path.
    if let Some(presolve) = json.get("presolve") {
        options.presolve = presolve.as_bool().ok_or_else(|| invalid("presolve"))?;
    }
    Ok(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let request = SynthesisRequest::weak("f(x) { return x }")
            .with_id("r1")
            .with_degree(1)
            .with_upsilon(0)
            .with_target("x + 1 > 0")
            .with_backend("penalty");
        assert_eq!(request.id, "r1");
        assert_eq!(request.options.degree, 1);
        assert_eq!(request.options.upsilon, 0);
        assert_eq!(request.assertions.len(), 1);
        assert_eq!(request.backend.as_deref(), Some("penalty"));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let request = SynthesisRequest::check("f(x) { return x }")
            .with_id("chk")
            .with_target_at(3, "x > 0")
            .with_assertion(AssertionSpec::postcondition("f", "ret >= 0"))
            .with_options(
                SynthesisOptions::with_degree_and_size(3, 2)
                    .with_bounded_reals(Rational::new(1000, 1))
                    .with_epsilon_lower(Rational::new(1, 7)),
            )
            .with_attempts(5)
            .with_solve_budget(90.0);
        let text = request.to_json().to_string();
        let reparsed = SynthesisRequest::from_json_str(&text).unwrap();
        assert_eq!(reparsed.solve_budget_seconds, 90.0);
        assert_eq!(reparsed.id, request.id);
        assert_eq!(reparsed.mode, request.mode);
        assert_eq!(reparsed.source, request.source);
        assert_eq!(reparsed.assertions, request.assertions);
        assert_eq!(reparsed.attempts, request.attempts);
        assert_eq!(reparsed.options.degree, 3);
        assert_eq!(reparsed.options.size, 2);
        assert_eq!(reparsed.options.bounded_reals, Some(Rational::new(1000, 1)));
        assert_eq!(reparsed.options.epsilon_lower, Rational::new(1, 7));
    }

    #[test]
    fn presolve_round_trips_and_defaults_on_for_old_snapshots() {
        let request = SynthesisRequest::weak("f(x) { return x }")
            .with_options(SynthesisOptions::default().with_presolve(false));
        let reparsed = SynthesisRequest::from_json_str(&request.to_json().to_string()).unwrap();
        assert!(!reparsed.options.presolve);
        // A pre-presolve snapshot without the field keeps the default.
        let old = r#"{"mode":"weak","source":"f(x) { return x }","options":{"degree":1}}"#;
        assert!(
            SynthesisRequest::from_json_str(old)
                .unwrap()
                .options
                .presolve
        );
    }

    #[test]
    fn mode_strings_are_stable() {
        for mode in [Mode::Weak, Mode::Strong, Mode::Check, Mode::GenerateOnly] {
            assert_eq!(mode.as_str().parse::<Mode>().unwrap(), mode);
        }
        assert!("loqo".parse::<Mode>().is_err());
    }
}
