//! # polyinv-api — the stable request/response surface of the reproduction
//!
//! The algorithm crates expose precise but heterogeneous entry points
//! (pipelines, per-algorithm drivers, checkers). This crate is the single
//! front door on top of them, shaped like a service API:
//!
//! * [`SynthesisRequest`] — program source + [`Mode`] (weak / strong / check
//!   / generate-only) + [`SynthesisOptions`](polyinv_constraints::SynthesisOptions)
//!   + assertions as text;
//! * [`Engine`] — owns the solver back-end, caches parsed programs keyed by
//!   source hash, and serves requests one at a time ([`Engine::run`]) or in
//!   parallel with deterministic request-ordered output
//!   ([`Engine::run_batch`]);
//! * [`SynthesisReport`] — status, pretty-printed invariants, per-stage
//!   timings, `|S|`/unknown counts and diagnostics;
//! * [`ApiError`] — the one exhaustive error enum of the surface, with
//!   source spans where the front-end provides them;
//! * [`json`] — a hand-rolled JSON writer/reader (the workspace builds
//!   offline), through which requests and reports round-trip byte-for-byte.
//!
//! ```
//! use polyinv_api::{Engine, Mode, SynthesisRequest, SynthesisReport};
//!
//! let engine = Engine::new();
//! let requests: Vec<SynthesisRequest> = (0..4)
//!     .map(|k| {
//!         SynthesisRequest::generate_only(polyinv_lang::program::RUNNING_EXAMPLE_SOURCE)
//!             .with_id(format!("req-{k}"))
//!     })
//!     .collect();
//! let reports = engine.run_batch(&requests);
//! assert_eq!(reports.len(), 4);
//! for (k, report) in reports.into_iter().enumerate() {
//!     let report = report?;
//!     assert_eq!(report.id, format!("req-{k}")); // request-ordered
//!     assert_eq!(report.mode, Mode::GenerateOnly);
//!     // Reports round-trip through the hand-rolled JSON module.
//!     let json = report.to_json_string();
//!     assert_eq!(SynthesisReport::from_json_str(&json)?, report);
//! }
//! # Ok::<(), polyinv_api::ApiError>(())
//! ```

pub mod cache;
pub mod engine;
pub mod error;
pub mod json;
pub mod report;
pub mod request;

pub use cache::{CacheStats, RequestFingerprint, ResultCache};
pub use engine::Engine;
pub use error::ApiError;
pub use json::{Json, JsonError};
pub use report::{
    AttemptRecord, ExactRecord, OrchestratorRecord, PresolveRecord, ReportStatus, SolverRecord,
    SynthesisReport, ValidationRecord,
};
pub use request::{AssertionSpec, Mode, SynthesisRequest};

// Re-export the options type that travels inside requests, so callers of
// the API need only this crate.
pub use polyinv_constraints::{SosEncoding, SynthesisOptions};
