//! Content-addressed result caching for Engine front ends.
//!
//! A serving layer in front of the [`Engine`](crate::Engine) wants to skip
//! whole synthesis runs when an identical request was already served. Two
//! requests are *identical* exactly when their canonical JSON forms (minus
//! the caller-chosen `id`, which never influences the computation) are
//! byte-equal. This module provides:
//!
//! * [`source_hash`] — the Engine's 64-bit FNV-1a source hash, shared with
//!   the parse cache so both layers key programs the same way;
//! * [`RequestFingerprint`] — the content address of a request: the source
//!   hash, a canonical hash of everything else (options, mode, assertions,
//!   back-end, attempts), and the canonical text itself so lookups verify
//!   true equality instead of trusting 64-bit hashes;
//! * [`ResultCache`] — a capacity-capped LRU map from fingerprints to
//!   [`SynthesisReport`]s with hit/miss/eviction counters.
//!
//! The cache is deliberately single-threaded (`&mut self`); callers that
//! share it across workers wrap it in their own lock. Lookups are a hash
//! probe plus one string comparison — microseconds next to the runs they
//! save.

use std::collections::HashMap;

use crate::report::SynthesisReport;
use crate::request::SynthesisRequest;

/// 64-bit FNV-1a: small, dependency-free and good enough to key caches
/// whose entries verify the full content anyway.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The Engine's FNV-1a hash of a program source (the parse-cache key).
pub fn source_hash(source: &str) -> u64 {
    fnv1a(source.as_bytes())
}

/// The content address of a [`SynthesisRequest`]: source hash + canonical
/// configuration hash + the canonical text the hashes stand for.
///
/// The canonical text is the request's deterministic JSON form with the
/// `id` field removed — two requests that differ only in `id` produce the
/// same report and must share a cache entry; two requests that differ in
/// *anything else* (source, mode, options, assertions, back-end, attempts)
/// must not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFingerprint {
    /// FNV-1a hash of the program source (the Engine's parse-cache key).
    pub source_hash: u64,
    /// FNV-1a hash of the canonical id-less request JSON.
    pub config_hash: u64,
    /// The canonical id-less request JSON the hashes were computed from;
    /// stored so cache lookups only hit on true equality.
    pub canonical: String,
}

impl RequestFingerprint {
    /// Computes the fingerprint of a request.
    pub fn of(request: &SynthesisRequest) -> Self {
        let mut json = request.to_json();
        if let crate::json::Json::Object(fields) = &mut json {
            fields.retain(|(key, _)| key != "id");
        }
        let canonical = json.to_string();
        RequestFingerprint {
            source_hash: source_hash(&request.source),
            config_hash: fnv1a(canonical.as_bytes()),
            canonical,
        }
    }

    /// The combined 128-bit-ish map key (both hashes).
    fn key(&self) -> (u64, u64) {
        (self.source_hash, self.config_hash)
    }
}

/// Counters describing the cache's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including hash matches whose canonical text
    /// differed — true collisions).
    pub misses: u64,
    /// Entries evicted to stay under the capacity cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// One cached result: the canonical request text (collision guard), the
/// report, and the recency stamp LRU eviction uses.
#[derive(Debug)]
struct ResultEntry {
    canonical: String,
    report: SynthesisReport,
    last_used: u64,
}

/// A capacity-capped LRU map from request fingerprints to reports.
///
/// Entries are keyed by `(source_hash, config_hash)`; each bucket holds the
/// canonical request text and a lookup only hits when the text matches
/// byte-for-byte, so hash collisions degrade to misses, never to wrong
/// results.
#[derive(Debug)]
pub struct ResultCache {
    buckets: HashMap<(u64, u64), Vec<ResultEntry>>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (zero is treated as one).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            buckets: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The lifetime counters plus the current entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.len(),
        }
    }

    /// Looks a fingerprint up, counting a hit or miss and refreshing the
    /// entry's recency on a hit.
    pub fn get(&mut self, fingerprint: &RequestFingerprint) -> Option<SynthesisReport> {
        self.clock += 1;
        let stamp = self.clock;
        let entry = self.buckets.get_mut(&fingerprint.key()).and_then(|bucket| {
            bucket
                .iter_mut()
                .find(|entry| entry.canonical == fingerprint.canonical)
        });
        match entry {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits += 1;
                Some(entry.report.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a result, evicting least-recently-used
    /// entries to stay under the capacity cap.
    pub fn insert(&mut self, fingerprint: &RequestFingerprint, report: SynthesisReport) {
        self.clock += 1;
        let stamp = self.clock;
        let bucket = self.buckets.entry(fingerprint.key()).or_default();
        match bucket
            .iter_mut()
            .find(|entry| entry.canonical == fingerprint.canonical)
        {
            Some(entry) => {
                entry.report = report;
                entry.last_used = stamp;
            }
            None => bucket.push(ResultEntry {
                canonical: fingerprint.canonical.clone(),
                report,
                last_used: stamp,
            }),
        }
        while self.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let Some((&key, _)) = self.buckets.iter().min_by_key(|(_, bucket)| {
            bucket
                .iter()
                .map(|entry| entry.last_used)
                .min()
                .unwrap_or(u64::MAX)
        }) else {
            return;
        };
        let bucket = self.buckets.get_mut(&key).expect("bucket exists");
        if let Some(pos) = bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(pos, _)| pos)
        {
            bucket.remove(pos);
            self.evictions += 1;
        }
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportStatus;
    use crate::request::Mode;

    fn report(id: &str, size: usize) -> SynthesisReport {
        let mut report = SynthesisReport::skeleton(id, Mode::GenerateOnly, ReportStatus::Generated);
        report.system_size = size;
        report
    }

    #[test]
    fn id_does_not_enter_the_fingerprint() {
        let a = SynthesisRequest::generate_only("f(x) { return x }").with_id("a");
        let b = SynthesisRequest::generate_only("f(x) { return x }").with_id("b");
        assert_eq!(RequestFingerprint::of(&a), RequestFingerprint::of(&b));
    }

    #[test]
    fn options_mode_and_assertions_all_enter_the_fingerprint() {
        let base = SynthesisRequest::weak("f(x) { return x }");
        let fp = RequestFingerprint::of(&base);
        for other in [
            SynthesisRequest::weak("f(y) { return y }"),
            SynthesisRequest::check("f(x) { return x }"),
            base.clone().with_degree(3),
            base.clone().with_target("x + 1 > 0"),
            base.clone().with_backend("penalty"),
            base.clone().with_attempts(7),
        ] {
            assert_ne!(fp, RequestFingerprint::of(&other), "{other:?}");
        }
    }

    #[test]
    fn hits_misses_and_evictions_are_counted() {
        let mut cache = ResultCache::new(2);
        let requests: Vec<SynthesisRequest> = (0..3)
            .map(|k| SynthesisRequest::generate_only(format!("f(x) {{ return x + {k} }}")))
            .collect();
        let fps: Vec<RequestFingerprint> = requests.iter().map(RequestFingerprint::of).collect();
        assert!(cache.get(&fps[0]).is_none());
        cache.insert(&fps[0], report("r0", 10));
        cache.insert(&fps[1], report("r1", 11));
        assert_eq!(cache.get(&fps[0]).unwrap().system_size, 10);
        // Third insert evicts the least recently used (fps[1]).
        cache.insert(&fps[2], report("r2", 12));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&fps[1]).is_none());
        assert!(cache.get(&fps[0]).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn colliding_hashes_verify_the_canonical_text() {
        // Force two distinct requests into the same bucket by faking equal
        // hashes: only the canonical text may decide a hit.
        let a = RequestFingerprint {
            source_hash: 1,
            config_hash: 2,
            canonical: "request-a".to_string(),
        };
        let b = RequestFingerprint {
            source_hash: 1,
            config_hash: 2,
            canonical: "request-b".to_string(),
        };
        let mut cache = ResultCache::new(8);
        cache.insert(&a, report("a", 1));
        cache.insert(&b, report("b", 2));
        assert_eq!(cache.get(&a).unwrap().id, "a");
        assert_eq!(cache.get(&b).unwrap().id, "b");
        assert_eq!(cache.len(), 2);
    }
}
