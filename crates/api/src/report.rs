//! The serializable response side of the API.

use std::fmt;

use crate::error::ApiError;
use crate::json::Json;
use crate::request::Mode;

/// The outcome of serving a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportStatus {
    /// Weak/strong synthesis found (at least) one inductive invariant.
    Synthesized,
    /// The solver ran but did not reach feasibility; the report's invariants
    /// are the best attempt and must not be trusted.
    Failed,
    /// Every constraint pair of the candidate was certified: the candidate
    /// is a proven inductive invariant.
    Certified,
    /// At least one pair could not be certified (inconclusive; see the
    /// report diagnostics).
    NotCertified,
    /// Generation-only run completed (Steps 1–3, no solve attempt).
    Generated,
}

impl ReportStatus {
    /// The stable string form used in JSON and on the CLI.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReportStatus::Synthesized => "synthesized",
            ReportStatus::Failed => "failed",
            ReportStatus::Certified => "certified",
            ReportStatus::NotCertified => "not-certified",
            ReportStatus::Generated => "generated",
        }
    }

    /// `true` for the statuses that mean "the request succeeded".
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            ReportStatus::Synthesized | ReportStatus::Certified | ReportStatus::Generated
        )
    }
}

impl std::str::FromStr for ReportStatus {
    type Err = ApiError;

    fn from_str(text: &str) -> Result<ReportStatus, ApiError> {
        match text {
            "synthesized" => Ok(ReportStatus::Synthesized),
            "failed" => Ok(ReportStatus::Failed),
            "certified" => Ok(ReportStatus::Certified),
            "not-certified" => Ok(ReportStatus::NotCertified),
            "generated" => Ok(ReportStatus::Generated),
            other => Err(ApiError::InvalidRequest {
                message: format!("unknown report status `{other}`"),
            }),
        }
    }
}

impl fmt::Display for ReportStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The serializable solver statistics of a solve-stage run: how the Step-4
/// system was solved (iterations, restarts, final residual) and what the
/// sparse substrate looked like (nnz of the Jacobian and of the LDLᵀ
/// factor, factor/solve wall-clock split). Attached to reports whose mode
/// ran the solver; generation-only reports leave it `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverRecord {
    /// Total inner iterations across restarts.
    pub iterations: usize,
    /// Restarts actually run.
    pub restarts: usize,
    /// Sum-of-squares residual at the returned point.
    pub final_residual: f64,
    /// Stored entries of the sparse Jacobian pattern.
    pub nnz_jacobian: usize,
    /// Entries of the LDLᵀ factor (unit diagonal included).
    pub nnz_factor: usize,
    /// Numeric factorizations performed.
    pub factorizations: usize,
    /// Wall-clock seconds spent factorizing.
    pub factor_seconds: f64,
    /// Wall-clock seconds spent in triangular solves.
    pub solve_seconds: f64,
    /// Wall-clock seconds spent evaluating residuals and accumulating the
    /// normal equations (the chunk-parallel part of an iteration).
    pub eval_seconds: f64,
    /// Worker threads of the iteration core (1 = fully serial; reflects the
    /// `POLYINV_THREADS` budget the row actually ran with).
    pub threads: usize,
}

impl From<&polyinv_qcqp::SolverStats> for SolverRecord {
    /// The one mapping from the solver-side statistics to the serializable
    /// record (`nnz_jtj` is deliberately not serialized — it is derivable
    /// from the pattern and of no trajectory interest).
    fn from(stats: &polyinv_qcqp::SolverStats) -> Self {
        SolverRecord {
            iterations: stats.iterations,
            restarts: stats.restarts,
            final_residual: stats.final_residual,
            nnz_jacobian: stats.nnz_jacobian,
            nnz_factor: stats.nnz_factor,
            factorizations: stats.factorizations,
            factor_seconds: stats.factor_seconds,
            solve_seconds: stats.solve_seconds,
            eval_seconds: stats.eval_seconds,
            threads: stats.threads,
        }
    }
}

impl SolverRecord {
    /// Serializes the record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("iterations", Json::Number(self.iterations as f64)),
            ("restarts", Json::Number(self.restarts as f64)),
            ("final_residual", Json::Number(self.final_residual)),
            ("nnz_jacobian", Json::Number(self.nnz_jacobian as f64)),
            ("nnz_factor", Json::Number(self.nnz_factor as f64)),
            ("factorizations", Json::Number(self.factorizations as f64)),
            ("factor_seconds", Json::Number(self.factor_seconds)),
            ("solve_seconds", Json::Number(self.solve_seconds)),
            ("eval_seconds", Json::Number(self.eval_seconds)),
            ("threads", Json::Number(self.threads as f64)),
        ])
    }

    /// Reads a record back from its JSON object form.
    pub fn from_json(json: &Json) -> Result<Self, ApiError> {
        let number = |name: &str| -> Result<f64, ApiError> {
            json.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: format!("solver field `{name}` must be a number"),
                })
        };
        Ok(SolverRecord {
            iterations: number("iterations")? as usize,
            restarts: number("restarts")? as usize,
            final_residual: number("final_residual")?,
            nnz_jacobian: number("nnz_jacobian")? as usize,
            nnz_factor: number("nnz_factor")? as usize,
            factorizations: number("factorizations")? as usize,
            factor_seconds: number("factor_seconds")?,
            solve_seconds: number("solve_seconds")?,
            // Absent in pre-parallelism snapshots: default rather than fail.
            eval_seconds: json
                .get("eval_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            threads: json.get("threads").and_then(Json::as_usize).unwrap_or(1),
        })
    }
}

/// The serializable statistics of the affine presolve that shrank the
/// Step-3 system before the solve: sizes before/after, fixpoint rounds and
/// the per-rule elimination counts. Attached to reports whose mode ran the
/// solver with presolve enabled; `--no-presolve` runs and generation-only
/// reports leave it `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct PresolveRecord {
    /// `|S|` of the generated system.
    pub size_before: usize,
    /// `|S|` after the presolve fixpoint.
    pub size_after: usize,
    /// Unknowns of the generated system.
    pub unknowns_before: usize,
    /// Unknowns the solver actually sees.
    pub unknowns_after: usize,
    /// Fixpoint rounds run.
    pub rounds: usize,
    /// Unknowns eliminated because the caller pinned them.
    pub pinned: usize,
    /// Unknowns fixed to constants by singleton rows.
    pub fixed: usize,
    /// Unknowns eliminated by two-term affine rows.
    pub affine: usize,
    /// Unknowns eliminated by general (quadratic-RHS) definitions.
    pub solved: usize,
    /// Unknowns freed as exclusive difference-of-squares pairs.
    pub freed: usize,
    /// Surviving unknowns sign-rectified by dropped one-sided bounds.
    pub rectified: usize,
    /// Trivially-satisfied rows dropped.
    pub dropped: usize,
    /// Duplicate rows merged (up to scaling).
    pub duplicates: usize,
    /// Wall-clock seconds spent in the fixpoint.
    pub seconds: f64,
}

impl From<&polyinv_constraints::PresolveStats> for PresolveRecord {
    fn from(stats: &polyinv_constraints::PresolveStats) -> Self {
        PresolveRecord {
            size_before: stats.size_before,
            size_after: stats.size_after,
            unknowns_before: stats.unknowns_before,
            unknowns_after: stats.unknowns_after,
            rounds: stats.rounds,
            pinned: stats.pinned,
            fixed: stats.fixed,
            affine: stats.affine,
            solved: stats.solved,
            freed: stats.freed,
            rectified: stats.rectified,
            dropped: stats.dropped,
            duplicates: stats.duplicates,
            seconds: stats.seconds,
        }
    }
}

impl PresolveRecord {
    /// Fraction of `|S|` removed by the presolve (0 when the input was
    /// empty).
    pub fn size_reduction(&self) -> f64 {
        if self.size_before == 0 {
            0.0
        } else {
            1.0 - self.size_after as f64 / self.size_before as f64
        }
    }

    /// Serializes the record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("size_before", Json::Number(self.size_before as f64)),
            ("size_after", Json::Number(self.size_after as f64)),
            ("unknowns_before", Json::Number(self.unknowns_before as f64)),
            ("unknowns_after", Json::Number(self.unknowns_after as f64)),
            ("rounds", Json::Number(self.rounds as f64)),
            ("pinned", Json::Number(self.pinned as f64)),
            ("fixed", Json::Number(self.fixed as f64)),
            ("affine", Json::Number(self.affine as f64)),
            ("solved", Json::Number(self.solved as f64)),
            ("freed", Json::Number(self.freed as f64)),
            ("rectified", Json::Number(self.rectified as f64)),
            ("dropped", Json::Number(self.dropped as f64)),
            ("duplicates", Json::Number(self.duplicates as f64)),
            ("seconds", Json::Number(self.seconds)),
        ])
    }

    /// Reads a record back from its JSON object form.
    pub fn from_json(json: &Json) -> Result<Self, ApiError> {
        let number = |name: &str| -> Result<f64, ApiError> {
            json.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: format!("presolve field `{name}` must be a number"),
                })
        };
        Ok(PresolveRecord {
            size_before: number("size_before")? as usize,
            size_after: number("size_after")? as usize,
            unknowns_before: number("unknowns_before")? as usize,
            unknowns_after: number("unknowns_after")? as usize,
            rounds: number("rounds")? as usize,
            pinned: number("pinned")? as usize,
            fixed: number("fixed")? as usize,
            affine: number("affine")? as usize,
            solved: number("solved")? as usize,
            freed: number("freed")? as usize,
            rectified: number("rectified")? as usize,
            dropped: number("dropped")? as usize,
            duplicates: number("duplicates")? as usize,
            seconds: number("seconds")?,
        })
    }
}

/// One attempt in the orchestrator's history: a portfolio lane, a polish
/// pass or a certificate check on some ϒ rung.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// The ϒ value of the rung the attempt ran on.
    pub upsilon: u32,
    /// `"lm"`, `"penalty"`, `"polish"` or `"certificate"`.
    pub backend: String,
    /// Whether the attempt met its acceptance bar (solver tolerance for
    /// lanes and polish, exact-rational tolerance for certificates).
    pub feasible: bool,
    /// The attempt's worst violation (exact, as f64, for certificates).
    pub violation: f64,
    /// Wall-clock seconds the attempt took.
    pub seconds: f64,
}

/// The serializable summary of an orchestrated solve: how many attempts
/// ran, which ϒ rung was accepted, which portfolio lane produced the
/// candidate and whether it carries a passing exact-rational certificate.
/// Attached to reports whose solve went through the orchestrator; the
/// per-row `orchestrator` block of the benchmark snapshot is this record.
#[derive(Debug, Clone, PartialEq)]
pub struct OrchestratorRecord {
    /// Total attempts recorded (lanes + polish passes + certificate checks
    /// over all rungs).
    pub attempts: usize,
    /// Number of ϒ-ladder rungs tried.
    pub rungs_tried: usize,
    /// The ϒ value of the accepted (or last) rung.
    pub rung_reached: u32,
    /// The lane that produced the returned candidate.
    pub winning_backend: String,
    /// Whether the candidate passed the exact-rational certificate.
    pub certified: bool,
    /// The exact worst violation of the certificate check (f64 view).
    pub certificate_violation: f64,
    /// The attempt history, in execution order.
    pub history: Vec<AttemptRecord>,
}

impl From<&polyinv::OrchestratorStats> for OrchestratorRecord {
    fn from(stats: &polyinv::OrchestratorStats) -> Self {
        OrchestratorRecord {
            attempts: stats.attempts,
            rungs_tried: stats.rungs_tried,
            rung_reached: stats.rung_reached,
            winning_backend: stats.winning_backend.clone(),
            certified: stats.certified,
            certificate_violation: stats.certificate_violation,
            history: stats
                .history
                .iter()
                .map(|attempt| AttemptRecord {
                    upsilon: attempt.upsilon,
                    backend: attempt.backend.clone(),
                    feasible: attempt.feasible,
                    violation: attempt.violation,
                    seconds: attempt.seconds,
                })
                .collect(),
        }
    }
}

impl OrchestratorRecord {
    /// Serializes the record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("attempts", Json::Number(self.attempts as f64)),
            ("rungs_tried", Json::Number(self.rungs_tried as f64)),
            ("rung_reached", Json::Number(self.rung_reached as f64)),
            (
                "winning_backend",
                Json::string(self.winning_backend.clone()),
            ),
            ("certified", Json::Bool(self.certified)),
            (
                "certificate_violation",
                Json::Number(self.certificate_violation),
            ),
            (
                "history",
                Json::Array(
                    self.history
                        .iter()
                        .map(|attempt| {
                            Json::object(vec![
                                ("upsilon", Json::Number(attempt.upsilon as f64)),
                                ("backend", Json::string(attempt.backend.clone())),
                                ("feasible", Json::Bool(attempt.feasible)),
                                ("violation", Json::Number(attempt.violation)),
                                ("seconds", Json::Number(attempt.seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a record back from its JSON object form.
    pub fn from_json(json: &Json) -> Result<Self, ApiError> {
        let number = |name: &str| -> Result<f64, ApiError> {
            json.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: format!("orchestrator field `{name}` must be a number"),
                })
        };
        let history = match json.get("history") {
            None | Some(Json::Null) => Vec::new(),
            Some(items) => items
                .as_array()
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: "orchestrator field `history` must be an array".to_string(),
                })?
                .iter()
                .map(|item| {
                    Ok(AttemptRecord {
                        upsilon: item.get("upsilon").and_then(Json::as_usize).unwrap_or(0) as u32,
                        backend: item
                            .get("backend")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        feasible: item
                            .get("feasible")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                        violation: item.get("violation").and_then(Json::as_f64).unwrap_or(0.0),
                        seconds: item.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
                    })
                })
                .collect::<Result<Vec<_>, ApiError>>()?,
        };
        Ok(OrchestratorRecord {
            attempts: number("attempts")? as usize,
            rungs_tried: number("rungs_tried")? as usize,
            rung_reached: number("rung_reached")? as u32,
            winning_backend: json
                .get("winning_backend")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            certified: json
                .get("certified")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            certificate_violation: number("certificate_violation")?,
            history,
        })
    }
}

/// The exact-rational inductiveness re-check part of a validation record:
/// the rounded invariant coefficients substituted back into the quadratic
/// system, every constraint evaluated with `Rational` arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactRecord {
    /// Number of (in)equalities evaluated exactly.
    pub constraints: usize,
    /// The worst exact violation, as a `numer/denom` rational string.
    pub worst_violation: String,
    /// The worst exact violation as a float (for quick reading).
    pub worst_violation_f64: f64,
    /// The tolerance of the re-check, as a `numer/denom` rational string.
    pub tolerance: String,
    /// Whether the re-check passed (worst violation within tolerance and no
    /// arithmetic overflow).
    pub passed: bool,
}

/// The serializable summary of a soundness validation run attached to a
/// report: trace falsification against seeded interpreter runs plus the
/// exact-rational inductiveness re-check. The rich, non-serializable form
/// (with counterexample traces) lives in the `polyinv-validate` crate; this
/// record is what travels in report JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRecord {
    /// Number of valid seeded traces checked against the invariant.
    pub trace_runs: usize,
    /// Number of recorded states checked (per-label obligations).
    pub trace_states: usize,
    /// Number of reachable states that violated the invariant.
    pub trace_violations: usize,
    /// The exact re-check outcome (absent when no solution was available to
    /// re-check, e.g. the solver failed).
    pub exact: Option<ExactRecord>,
    /// `true` when the invariant survived both checks.
    pub passed: bool,
}

impl ValidationRecord {
    /// Serializes the record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("trace_runs", Json::Number(self.trace_runs as f64)),
            ("trace_states", Json::Number(self.trace_states as f64)),
            (
                "trace_violations",
                Json::Number(self.trace_violations as f64),
            ),
            (
                "exact",
                match &self.exact {
                    None => Json::Null,
                    Some(exact) => Json::object(vec![
                        ("constraints", Json::Number(exact.constraints as f64)),
                        (
                            "worst_violation",
                            Json::string(exact.worst_violation.clone()),
                        ),
                        (
                            "worst_violation_f64",
                            Json::Number(exact.worst_violation_f64),
                        ),
                        ("tolerance", Json::string(exact.tolerance.clone())),
                        ("passed", Json::Bool(exact.passed)),
                    ]),
                },
            ),
            ("passed", Json::Bool(self.passed)),
        ])
    }

    /// Reads a record back from its JSON object form.
    pub fn from_json(json: &Json) -> Result<Self, ApiError> {
        let number = |name: &str| -> Result<usize, ApiError> {
            json.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: format!("validation field `{name}` must be a number"),
                })
        };
        let exact = match json.get("exact") {
            None | Some(Json::Null) => None,
            Some(inner) => {
                let text = |name: &str| -> Result<String, ApiError> {
                    inner
                        .get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| ApiError::InvalidRequest {
                            message: format!("validation field `exact.{name}` must be a string"),
                        })
                };
                Some(ExactRecord {
                    constraints: inner
                        .get("constraints")
                        .and_then(Json::as_usize)
                        .unwrap_or(0),
                    worst_violation: text("worst_violation")?,
                    worst_violation_f64: inner
                        .get("worst_violation_f64")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                    tolerance: text("tolerance")?,
                    passed: inner.get("passed").and_then(Json::as_bool).unwrap_or(false),
                })
            }
        };
        Ok(ValidationRecord {
            trace_runs: number("trace_runs")?,
            trace_states: number("trace_states")?,
            trace_violations: number("trace_violations")?,
            exact,
            passed: json.get("passed").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// The full, serializable result of one Engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// The request id, echoed back.
    pub id: String,
    /// The request mode.
    pub mode: Mode,
    /// The outcome.
    pub status: ReportStatus,
    /// The stable name of the back-end that served the request (empty for
    /// generation-only runs that never solve).
    pub backend: String,
    /// `|S|`: the number of quadratic (in)equalities generated (the paper's
    /// Tables 2/3 metric). For checks: the largest per-pair certificate
    /// problem.
    pub system_size: usize,
    /// The number of unknowns of the quadratic system.
    pub num_unknowns: usize,
    /// The worst constraint violation of the final assignment (0 when not
    /// applicable).
    pub violation: f64,
    /// Check mode: total number of constraint pairs of the candidate.
    pub pairs_total: usize,
    /// Check mode: number of pairs with a sum-of-squares certificate.
    pub pairs_certified: usize,
    /// Pretty-printed invariants, one `label: conjuncts` line per label
    /// (strong synthesis prefixes each line with the solution index).
    pub invariants: Vec<String>,
    /// Pretty-printed post-conditions (recursive programs only).
    pub postconditions: Vec<String>,
    /// Per-stage wall-clock timings in seconds, in execution order.
    pub timings: Vec<(String, f64)>,
    /// Human-readable diagnostics accumulated during the run.
    pub diagnostics: Vec<String>,
    /// The soundness validation summary, when a validation pass ran (the
    /// `polyinv validate` / `fuzz` drivers and `reproduce --validate` fill
    /// this; plain Engine runs leave it empty).
    pub validate: Option<ValidationRecord>,
    /// Solver statistics, when the request's mode ran the Step-4 solver
    /// (weak synthesis). Generation-only, strong and check runs leave it
    /// `None`.
    pub solver: Option<SolverRecord>,
    /// Affine presolve statistics, when the request's mode ran the solver
    /// with presolve enabled. `--no-presolve` runs and generation-only,
    /// strong and check runs leave it `None`.
    pub presolve: Option<PresolveRecord>,
    /// Orchestration summary, when the request's solve went through the
    /// adaptive orchestrator (weak synthesis): attempts, rung reached,
    /// winning back-end and certificate status. Generation-only, strong
    /// and check runs leave it `None`.
    pub orchestrator: Option<OrchestratorRecord>,
}

impl SynthesisReport {
    /// An empty report skeleton for `id`/`mode` (the Engine fills the rest).
    pub(crate) fn skeleton(id: &str, mode: Mode, status: ReportStatus) -> Self {
        SynthesisReport {
            id: id.to_string(),
            mode,
            status,
            backend: String::new(),
            system_size: 0,
            num_unknowns: 0,
            violation: 0.0,
            pairs_total: 0,
            pairs_certified: 0,
            invariants: Vec::new(),
            postconditions: Vec::new(),
            timings: Vec::new(),
            diagnostics: Vec::new(),
            validate: None,
            solver: None,
            presolve: None,
            orchestrator: None,
        }
    }

    /// Seconds spent in one named stage (0 when it never ran).
    pub fn stage_seconds(&self, stage: &str) -> f64 {
        self.timings
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, secs)| *secs)
            .unwrap_or(0.0)
    }

    /// Total seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.timings.iter().map(|(_, secs)| secs).sum()
    }

    /// Converts a negative outcome into the matching [`ApiError`]
    /// ([`ApiError::Unsolved`] for failed synthesis, [`ApiError::Uncertified`]
    /// for failed checks), passing successful reports through.
    pub fn into_result(self) -> Result<SynthesisReport, ApiError> {
        match self.status {
            ReportStatus::Failed => Err(ApiError::Unsolved {
                violation: self.violation,
                backend: self.backend,
            }),
            ReportStatus::NotCertified => Err(ApiError::Uncertified {
                failed: self.pairs_total.saturating_sub(self.pairs_certified),
                total: self.pairs_total,
            }),
            _ => Ok(self),
        }
    }

    /// The report with its timings zeroed: the canonical form compared by
    /// the batch-determinism guarantee (wall-clock is the one field two
    /// identical runs legitimately disagree on). The solver record's
    /// wall-clock split is zeroed too; its counters and sparsity fields are
    /// deterministic and stay.
    pub fn canonical(mut self) -> SynthesisReport {
        for (_, secs) in &mut self.timings {
            *secs = 0.0;
        }
        if let Some(solver) = &mut self.solver {
            solver.factor_seconds = 0.0;
            solver.solve_seconds = 0.0;
            solver.eval_seconds = 0.0;
            // The worker count is an environment fact, not a result: byte
            // identity across `POLYINV_THREADS` settings requires dropping
            // it from the canonical form.
            solver.threads = 0;
        }
        if let Some(presolve) = &mut self.presolve {
            presolve.seconds = 0.0;
        }
        if let Some(orchestrator) = &mut self.orchestrator {
            for attempt in &mut orchestrator.history {
                attempt.seconds = 0.0;
            }
        }
        self
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::string(self.id.clone())),
            ("mode", Json::string(self.mode.as_str())),
            ("status", Json::string(self.status.as_str())),
            ("backend", Json::string(self.backend.clone())),
            ("system_size", Json::Number(self.system_size as f64)),
            ("num_unknowns", Json::Number(self.num_unknowns as f64)),
            ("violation", Json::Number(self.violation)),
            ("pairs_total", Json::Number(self.pairs_total as f64)),
            ("pairs_certified", Json::Number(self.pairs_certified as f64)),
            (
                "invariants",
                Json::Array(self.invariants.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "postconditions",
                Json::Array(self.postconditions.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "timings",
                Json::Object(
                    self.timings
                        .iter()
                        .map(|(stage, secs)| (stage.clone(), Json::Number(*secs)))
                        .collect(),
                ),
            ),
            (
                "diagnostics",
                Json::Array(self.diagnostics.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "validate",
                match &self.validate {
                    None => Json::Null,
                    Some(record) => record.to_json(),
                },
            ),
            (
                "solver",
                match &self.solver {
                    None => Json::Null,
                    Some(record) => record.to_json(),
                },
            ),
            (
                "presolve",
                match &self.presolve {
                    None => Json::Null,
                    Some(record) => record.to_json(),
                },
            ),
            (
                "orchestrator",
                match &self.orchestrator {
                    None => Json::Null,
                    Some(record) => record.to_json(),
                },
            ),
        ])
    }

    /// Serializes the report as compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Reads a report back from its JSON object form.
    pub fn from_json(json: &Json) -> Result<Self, ApiError> {
        let field = |name: &str| -> Result<&Json, ApiError> {
            json.get(name).ok_or_else(|| ApiError::InvalidRequest {
                message: format!("missing report field `{name}`"),
            })
        };
        let strings = |name: &str| -> Result<Vec<String>, ApiError> {
            field(name)?
                .as_array()
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: format!("report field `{name}` must be an array"),
                })?
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ApiError::InvalidRequest {
                            message: format!("report field `{name}` must contain strings"),
                        })
                })
                .collect()
        };
        let number = |name: &str| -> Result<f64, ApiError> {
            field(name)?
                .as_f64()
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: format!("report field `{name}` must be a number"),
                })
        };
        let timings = field("timings")?
            .as_object()
            .ok_or_else(|| ApiError::InvalidRequest {
                message: "report field `timings` must be an object".to_string(),
            })?
            .iter()
            .map(|(stage, secs)| {
                secs.as_f64()
                    .map(|s| (stage.clone(), s))
                    .ok_or_else(|| ApiError::InvalidRequest {
                        message: "report timings must be numbers".to_string(),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SynthesisReport {
            id: field("id")?
                .as_str()
                .ok_or_else(|| ApiError::InvalidRequest {
                    message: "report field `id` must be a string".to_string(),
                })?
                .to_string(),
            mode: field("mode")?.as_str().unwrap_or_default().parse()?,
            status: field("status")?.as_str().unwrap_or_default().parse()?,
            backend: field("backend")?.as_str().unwrap_or_default().to_string(),
            system_size: number("system_size")? as usize,
            num_unknowns: number("num_unknowns")? as usize,
            violation: number("violation")?,
            pairs_total: number("pairs_total")? as usize,
            pairs_certified: number("pairs_certified")? as usize,
            invariants: strings("invariants")?,
            postconditions: strings("postconditions")?,
            timings,
            diagnostics: strings("diagnostics")?,
            validate: match json.get("validate") {
                None | Some(Json::Null) => None,
                Some(record) => Some(ValidationRecord::from_json(record)?),
            },
            solver: match json.get("solver") {
                None | Some(Json::Null) => None,
                Some(record) => Some(SolverRecord::from_json(record)?),
            },
            presolve: match json.get("presolve") {
                None | Some(Json::Null) => None,
                Some(record) => Some(PresolveRecord::from_json(record)?),
            },
            orchestrator: match json.get("orchestrator") {
                None | Some(Json::Null) => None,
                Some(record) => Some(OrchestratorRecord::from_json(record)?),
            },
        })
    }

    /// Parses a report from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, ApiError> {
        SynthesisReport::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SynthesisReport {
        SynthesisReport {
            id: "r7".to_string(),
            mode: Mode::Weak,
            status: ReportStatus::Synthesized,
            backend: "lm".to_string(),
            system_size: 2348,
            num_unknowns: 1923,
            violation: 4.2e-9,
            pairs_total: 0,
            pairs_certified: 0,
            invariants: vec!["ℓ5: 4*i + 4*s + 3 > 0".to_string()],
            postconditions: vec![],
            timings: vec![("templates".to_string(), 0.012), ("solve".to_string(), 1.5)],
            diagnostics: vec!["ladder rung ϒ=0 solved".to_string()],
            validate: None,
            solver: None,
            presolve: None,
            orchestrator: None,
        }
    }

    fn sample_solver() -> SolverRecord {
        SolverRecord {
            iterations: 96,
            restarts: 2,
            final_residual: 3.4e-15,
            nnz_jacobian: 17790,
            nnz_factor: 48211,
            factorizations: 101,
            factor_seconds: 0.82,
            solve_seconds: 0.07,
            eval_seconds: 0.41,
            threads: 8,
        }
    }

    #[test]
    fn reports_round_trip_through_json() {
        let report = sample();
        let reparsed = SynthesisReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(reparsed, report);
    }

    #[test]
    fn validation_records_round_trip_through_json() {
        let mut report = sample();
        report.validate = Some(ValidationRecord {
            trace_runs: 1000,
            trace_states: 48211,
            trace_violations: 0,
            exact: Some(ExactRecord {
                constraints: 812,
                worst_violation: "3/1000000".to_string(),
                worst_violation_f64: 3e-6,
                tolerance: "1/1000".to_string(),
                passed: true,
            }),
            passed: true,
        });
        let reparsed = SynthesisReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(reparsed, report);
        // Reports without a record serialize `validate` as null and read
        // back as None (forward compatibility for old snapshots).
        let bare = sample();
        assert!(bare.to_json_string().contains("\"validate\":null"));
        assert_eq!(
            SynthesisReport::from_json_str(&bare.to_json_string())
                .unwrap()
                .validate,
            None
        );
    }

    #[test]
    fn canonical_zeroes_only_timings() {
        let canonical = sample().canonical();
        assert_eq!(canonical.total_seconds(), 0.0);
        assert_eq!(canonical.timings.len(), 2);
        assert_eq!(canonical.system_size, 2348);
    }

    #[test]
    fn solver_records_round_trip_and_canonicalize() {
        let mut report = sample();
        report.solver = Some(sample_solver());
        let reparsed = SynthesisReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(reparsed, report);
        // Canonical form zeroes the wall-clock split but keeps the
        // deterministic counters and sparsity fields.
        let canonical = report.canonical();
        let solver = canonical.solver.as_ref().unwrap();
        assert_eq!(solver.factor_seconds, 0.0);
        assert_eq!(solver.solve_seconds, 0.0);
        assert_eq!(solver.eval_seconds, 0.0);
        assert_eq!(solver.threads, 0, "thread count is not canonical");
        assert_eq!(solver.iterations, 96);
        assert_eq!(solver.nnz_factor, 48211);
        // Reports without a record serialize `solver` as null and read
        // back as None (forward compatibility for old snapshots).
        let bare = sample();
        assert!(bare.to_json_string().contains("\"solver\":null"));
        assert_eq!(
            SynthesisReport::from_json_str(&bare.to_json_string())
                .unwrap()
                .solver,
            None
        );
    }

    fn sample_presolve() -> PresolveRecord {
        PresolveRecord {
            size_before: 860,
            size_after: 512,
            unknowns_before: 750,
            unknowns_after: 461,
            rounds: 9,
            pinned: 55,
            fixed: 189,
            affine: 9,
            solved: 16,
            freed: 20,
            rectified: 63,
            dropped: 348,
            duplicates: 0,
            seconds: 0.031,
        }
    }

    #[test]
    fn presolve_records_round_trip_and_canonicalize() {
        let mut report = sample();
        report.presolve = Some(sample_presolve());
        let reparsed = SynthesisReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(reparsed, report);
        // Canonical form zeroes the wall-clock but keeps the deterministic
        // size and rule counters.
        let canonical = report.canonical();
        let presolve = canonical.presolve.as_ref().unwrap();
        assert_eq!(presolve.seconds, 0.0);
        assert_eq!(presolve.size_after, 512);
        assert!((presolve.size_reduction() - (1.0 - 512.0 / 860.0)).abs() < 1e-12);
        // Reports without a record serialize `presolve` as null and read
        // back as None (forward compatibility for old snapshots).
        let bare = sample();
        assert!(bare.to_json_string().contains("\"presolve\":null"));
        assert_eq!(
            SynthesisReport::from_json_str(&bare.to_json_string())
                .unwrap()
                .presolve,
            None
        );
    }

    fn sample_orchestrator() -> OrchestratorRecord {
        OrchestratorRecord {
            attempts: 4,
            rungs_tried: 2,
            rung_reached: 2,
            winning_backend: "lm".to_string(),
            certified: true,
            certificate_violation: 5.1e-4,
            history: vec![
                AttemptRecord {
                    upsilon: 0,
                    backend: "lm".to_string(),
                    feasible: false,
                    violation: 3.4e-3,
                    seconds: 0.12,
                },
                AttemptRecord {
                    upsilon: 2,
                    backend: "certificate".to_string(),
                    feasible: true,
                    violation: 5.1e-4,
                    seconds: 0.01,
                },
            ],
        }
    }

    #[test]
    fn orchestrator_records_round_trip_and_canonicalize() {
        let mut report = sample();
        report.orchestrator = Some(sample_orchestrator());
        let reparsed = SynthesisReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(reparsed, report);
        // Canonical form zeroes the per-attempt wall-clock but keeps the
        // deterministic attempt structure and certificate fields.
        let canonical = report.canonical();
        let orchestrator = canonical.orchestrator.as_ref().unwrap();
        assert!(orchestrator.history.iter().all(|a| a.seconds == 0.0));
        assert_eq!(orchestrator.attempts, 4);
        assert_eq!(orchestrator.rung_reached, 2);
        assert!(orchestrator.certified);
        // Reports without a record serialize `orchestrator` as null and read
        // back as None (forward compatibility for old snapshots).
        let bare = sample();
        assert!(bare.to_json_string().contains("\"orchestrator\":null"));
        assert_eq!(
            SynthesisReport::from_json_str(&bare.to_json_string())
                .unwrap()
                .orchestrator,
            None
        );
    }

    #[test]
    fn into_result_maps_failures_to_api_errors() {
        let mut failed = sample();
        failed.status = ReportStatus::Failed;
        assert!(matches!(
            failed.into_result(),
            Err(ApiError::Unsolved { .. })
        ));
        assert!(sample().into_result().is_ok());
    }

    #[test]
    fn stage_accessors_sum_correctly() {
        let report = sample();
        assert_eq!(report.stage_seconds("solve"), 1.5);
        assert_eq!(report.stage_seconds("missing"), 0.0);
        assert!((report.total_seconds() - 1.512).abs() < 1e-12);
    }
}
