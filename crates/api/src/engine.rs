//! The Engine: one front door for every synthesis workload.
//!
//! An [`Engine`] owns the solver back-end and a parsed-program cache keyed
//! by source hash, consumes [`SynthesisRequest`]s and produces
//! [`SynthesisReport`]s. It is `Sync`, so one Engine instance can serve many
//! threads; [`Engine::run_batch`] fans a slice of requests out over scoped
//! worker threads and returns the results in request order, making batch
//! output deterministic.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use polyinv::pipeline::{stage_names, Pipeline, StageTimings};
use polyinv::{check_inductive, CheckOptions};
use polyinv_lang::{InvariantMap, Label, Postcondition, Precondition, Program};
use polyinv_poly::Polynomial;
use polyinv_qcqp::par::parallel_indexed;
use polyinv_qcqp::{backend_by_name, default_backend, QcqpBackend};

#[allow(deprecated)]
use polyinv::strong::{StrongOptions, StrongSynthesis};
#[allow(deprecated)]
use polyinv::weak::TargetAssertion;

use crate::cache::source_hash;
use crate::error::ApiError;
use crate::report::{ReportStatus, SynthesisReport};
use crate::request::{Mode, SynthesisRequest};

/// Default capacity of the parse cache (distinct programs).
const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Upper bound on parse-cache lock shards. Shards hold ≥ 8 entries each so
/// small caches keep exact global LRU order (one shard), while service-sized
/// caches spread unrelated sources over independent locks.
const MAX_CACHE_SHARDS: usize = 16;

/// One cached parse: the full source (to rule out hash collisions), the
/// parsed program and the recency stamp the LRU eviction uses.
#[derive(Debug)]
struct CacheEntry {
    source: String,
    program: Arc<Program>,
    last_used: u64,
}

/// Parsed programs keyed by FNV-1a hash of their source, capacity-capped
/// with least-recently-used eviction so a long-running service does not
/// accumulate every source it ever saw.
#[derive(Debug)]
struct ProgramCache {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    capacity: usize,
    clock: u64,
}

impl ProgramCache {
    fn new(capacity: usize) -> Self {
        ProgramCache {
            buckets: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn get(&mut self, key: u64, source: &str) -> Option<Arc<Program>> {
        let stamp = self.tick();
        let entry = self
            .buckets
            .get_mut(&key)?
            .iter_mut()
            .find(|entry| entry.source == source)?;
        entry.last_used = stamp;
        Some(Arc::clone(&entry.program))
    }

    fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    fn insert(&mut self, key: u64, source: &str, program: &Arc<Program>) {
        let stamp = self.tick();
        self.buckets.entry(key).or_default().push(CacheEntry {
            source: source.to_string(),
            program: Arc::clone(program),
            last_used: stamp,
        });
        while self.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let Some((&key, _)) = self.buckets.iter().min_by_key(|(_, bucket)| {
            bucket
                .iter()
                .map(|entry| entry.last_used)
                .min()
                .unwrap_or(u64::MAX)
        }) else {
            return;
        };
        let bucket = self.buckets.get_mut(&key).expect("bucket exists");
        if let Some(pos) = bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(pos, _)| pos)
        {
            bucket.remove(pos);
        }
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
    }
}

/// The parse cache behind interior mutability that does not serialize
/// unrelated requests: the key space is split over independent lock shards
/// (source hash modulo shard count), so concurrent server workers parsing
/// *different* programs never contend on one mutex. Small capacities
/// collapse to a single shard, preserving exact global LRU order where the
/// capacity itself is the interesting constraint.
#[derive(Debug)]
struct ShardedProgramCache {
    shards: Vec<Mutex<ProgramCache>>,
}

impl ShardedProgramCache {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = capacity.div_ceil(8).clamp(1, MAX_CACHE_SHARDS);
        // Distribute the capacity across shards; the remainder goes to the
        // leading shards so the per-shard caps sum to the requested total.
        let base = capacity / shards;
        let remainder = capacity % shards;
        ShardedProgramCache {
            shards: (0..shards)
                .map(|index| {
                    let extra = usize::from(index < remainder);
                    Mutex::new(ProgramCache::new(base + extra))
                })
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<ProgramCache> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("cache lock").len())
            .sum()
    }
}

/// The stable front door: parses (and caches) programs, dispatches the four
/// modes, and serializes everything that comes back.
///
/// ```
/// use polyinv_api::{Engine, SynthesisRequest};
///
/// let engine = Engine::new();
/// let request = SynthesisRequest::generate_only(
///     polyinv_lang::program::RUNNING_EXAMPLE_SOURCE,
/// );
/// let report = engine.run(&request)?;
/// assert!(report.system_size > 0);
/// # Ok::<(), polyinv_api::ApiError>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    backend: Arc<dyn QcqpBackend>,
    cache: ShardedProgramCache,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An Engine with the default solver back-end (multi-start LM).
    pub fn new() -> Self {
        Engine::with_backend(default_backend())
    }

    /// An Engine with a caller-supplied back-end implementation.
    pub fn with_backend(backend: Arc<dyn QcqpBackend>) -> Self {
        Engine {
            backend,
            cache: ShardedProgramCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Caps the parse cache at `capacity` distinct programs (LRU eviction;
    /// the default is 64). A capacity of zero is treated as one.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ShardedProgramCache::new(capacity);
        self
    }

    /// An Engine with a back-end selected by stable name (`"lm"`,
    /// `"penalty"`).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::UnknownBackend`] for unrecognized names.
    pub fn with_backend_name(name: &str) -> Result<Self, ApiError> {
        let backend = backend_by_name(name).ok_or_else(|| ApiError::UnknownBackend {
            name: name.to_string(),
        })?;
        Ok(Engine::with_backend(backend))
    }

    /// The stable name of the Engine's default back-end.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Parses a program, consulting the source-hash cache first.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Parse`] (with the front-end's source span) when
    /// the source does not lex, parse or resolve.
    pub fn parse_program(&self, source: &str) -> Result<Arc<Program>, ApiError> {
        let key = source_hash(source);
        let shard = self.cache.shard(key);
        {
            let mut cache = shard.lock().expect("cache lock");
            if let Some(program) = cache.get(key, source) {
                return Ok(program);
            }
        }
        let program = Arc::new(polyinv_lang::parse_program(source)?);
        let mut cache = shard.lock().expect("cache lock");
        // Re-check under the lock: a concurrent batch worker may have parsed
        // the same source while this thread was parsing (check-then-act).
        if let Some(cached) = cache.get(key, source) {
            return Ok(cached);
        }
        cache.insert(key, source, &program);
        Ok(program)
    }

    /// Number of distinct programs currently cached.
    pub fn cached_programs(&self) -> usize {
        self.cache.len()
    }

    /// Serves one request.
    ///
    /// Request-level problems (unparseable source, unknown back-end, bad
    /// assertion, out-of-range label) come back as `Err`; a solver that runs
    /// but does not converge is a *report* with
    /// [`ReportStatus::Failed`] — use [`SynthesisReport::into_result`] to
    /// turn negative outcomes into [`ApiError`]s when failing hard is
    /// wanted (the CLI does this for its exit codes).
    pub fn run(&self, request: &SynthesisRequest) -> Result<SynthesisReport, ApiError> {
        let program = self.parse_program(&request.source)?;
        let backend = match &request.backend {
            Some(name) => {
                // Strong enumeration and certificate checking are built on
                // the seeded LM multi-start substrate and cannot honor an
                // arbitrary back-end; rejecting beats silently ignoring.
                if matches!(request.mode, Mode::Strong | Mode::Check) {
                    return Err(ApiError::InvalidRequest {
                        message: format!(
                            "back-end selection applies to weak and generate-only requests; \
                             {} requests use the built-in LM substrate",
                            request.mode.as_str()
                        ),
                    });
                }
                backend_by_name(name)
                    .ok_or_else(|| ApiError::UnknownBackend { name: name.clone() })?
            }
            None => Arc::clone(&self.backend),
        };
        let pre = Precondition::from_program(&program);
        match request.mode {
            Mode::GenerateOnly => self.run_generate(request, &program, &pre, backend),
            Mode::Weak => self.run_weak(request, &program, &pre, backend),
            Mode::Strong => self.run_strong(request, &program, &pre),
            Mode::Check => self.run_check(request, &program, &pre),
        }
    }

    /// Serves a slice of requests in parallel on scoped worker threads.
    ///
    /// The result vector is index-aligned with `requests` regardless of
    /// completion order, so batch output is deterministic and
    /// request-ordered. The program cache is shared across the batch:
    /// requests with identical sources parse once.
    pub fn run_batch(
        &self,
        requests: &[SynthesisRequest],
    ) -> Vec<Result<SynthesisReport, ApiError>> {
        parallel_indexed(requests.len(), |index| self.run(&requests[index]))
    }

    fn run_generate(
        &self,
        request: &SynthesisRequest,
        program: &Program,
        pre: &Precondition,
        backend: Arc<dyn QcqpBackend>,
    ) -> Result<SynthesisReport, ApiError> {
        if !request.assertions.is_empty() {
            return Err(ApiError::InvalidRequest {
                message: "generate-only requests take no assertions".to_string(),
            });
        }
        let pipeline = Pipeline::new(request.options.clone()).with_backend(backend);
        let mut ctx = pipeline.context(program, pre);
        let generated = pipeline.generate(&mut ctx)?;
        let mut report =
            SynthesisReport::skeleton(&request.id, request.mode, ReportStatus::Generated);
        report.system_size = generated.size();
        report.num_unknowns = generated.system.num_unknowns();
        report.timings = timings_to_seconds(ctx.timings());
        report.diagnostics = ctx.diagnostics().to_vec();
        Ok(report)
    }

    fn run_weak(
        &self,
        request: &SynthesisRequest,
        program: &Program,
        pre: &Precondition,
        backend: Arc<dyn QcqpBackend>,
    ) -> Result<SynthesisReport, ApiError> {
        let targets = resolve_weak_targets(program, request)?;
        let (options, escalation) = escalate_degree(&request.options, &targets);
        // The orchestrator builds its own portfolio; an explicit back-end
        // choice (request-level, or an Engine constructed around a
        // non-default back-end) narrows the portfolio to that lane.
        let preference = request
            .backend
            .as_deref()
            .or_else(|| (backend.name() != default_backend().name()).then(|| backend.name()));
        let mut plan =
            polyinv::SolvePlan::new(options).with_solve_budget(request.solve_budget_seconds);
        if let Some(name) = preference {
            plan = plan.with_backend_preference(name);
        }
        let outcome = polyinv::Orchestrator::new(plan).solve(program, pre, &targets)?;
        let status = if outcome.certified {
            ReportStatus::Synthesized
        } else {
            ReportStatus::Failed
        };
        let mut report = SynthesisReport::skeleton(&request.id, request.mode, status);
        report.backend = outcome.backend.to_string();
        report.system_size = outcome.system_size;
        report.num_unknowns = outcome.num_unknowns;
        report.violation = outcome.violation;
        report.timings = timings_to_seconds(&outcome.timings);
        report.solver = Some(crate::report::SolverRecord::from(&outcome.solver));
        report.presolve = outcome
            .presolve
            .as_ref()
            .map(crate::report::PresolveRecord::from);
        report.orchestrator = Some(crate::report::OrchestratorRecord::from(&outcome.stats));
        if let Some(note) = escalation {
            report.diagnostics.push(note);
        }
        if status == ReportStatus::Synthesized {
            report.invariants = render_lines(&outcome.invariant.render(program));
            report.postconditions = render_postconditions(program, &outcome.postconditions);
            report.diagnostics.push(format!(
                "certified at ϒ = {} after {} attempt(s); exact worst violation {:.3e}",
                outcome.stats.rung_reached,
                outcome.stats.attempts,
                outcome.stats.certificate_violation
            ));
        } else {
            report.diagnostics.push(format!(
                "uncertified after {} attempt(s) over {} rung(s); solver `{}` stopped at \
                 violation {:.3e}, exact re-check at {:.3e}",
                outcome.stats.attempts,
                outcome.stats.rungs_tried,
                outcome.backend,
                outcome.violation,
                outcome.stats.certificate_violation
            ));
        }
        Ok(report)
    }

    #[allow(deprecated)]
    fn run_strong(
        &self,
        request: &SynthesisRequest,
        program: &Program,
        pre: &Precondition,
    ) -> Result<SynthesisReport, ApiError> {
        if !request.assertions.is_empty() {
            return Err(ApiError::InvalidRequest {
                message: "strong requests take no assertions (they enumerate, not prove)"
                    .to_string(),
            });
        }
        let mut options = StrongOptions {
            synthesis: request.options.clone(),
            ..StrongOptions::default()
        };
        if let Some(attempts) = request.attempts {
            options.attempts = attempts;
        }
        // A staged generation pass supplies the report's |S|/unknown metrics
        // and per-stage generation timings. (The enumeration re-generates
        // internally; generation is milliseconds next to the solve attempts.)
        let pipeline = Pipeline::new(request.options.clone());
        let mut ctx = pipeline.context(program, pre);
        let generated = pipeline.generate(&mut ctx)?;
        let start = Instant::now();
        let solutions = StrongSynthesis::new(options).enumerate(program, pre)?;
        let elapsed = start.elapsed().as_secs_f64();
        let status = if solutions.is_empty() {
            ReportStatus::Failed
        } else {
            ReportStatus::Synthesized
        };
        let mut report = SynthesisReport::skeleton(&request.id, request.mode, status);
        report.backend = "lm".to_string();
        report.system_size = generated.size();
        report.num_unknowns = generated.system.num_unknowns();
        report.timings = timings_to_seconds(ctx.timings());
        report
            .timings
            .push((stage_names::SOLVE.to_string(), elapsed));
        report
            .diagnostics
            .push(format!("{} distinct invariant(s) found", solutions.len()));
        for (index, solution) in solutions.iter().enumerate() {
            for line in render_lines(&solution.invariant.render(program)) {
                report.invariants.push(format!("[{index}] {line}"));
            }
            for line in render_postconditions(program, &solution.postconditions) {
                report.postconditions.push(format!("[{index}] {line}"));
            }
        }
        Ok(report)
    }

    fn run_check(
        &self,
        request: &SynthesisRequest,
        program: &Program,
        pre: &Precondition,
    ) -> Result<SynthesisReport, ApiError> {
        if request.assertions.is_empty() {
            return Err(ApiError::InvalidRequest {
                message: "check requests need at least one invariant assertion".to_string(),
            });
        }
        let mut invariant = InvariantMap::new();
        let mut post = Postcondition::new();
        for spec in &request.assertions {
            let poly = parse_assertion(program, &spec.text)?;
            match &spec.function {
                Some(function) => post.add(function, poly),
                None => invariant.add(resolve_label(program, spec.label)?, poly),
            }
        }
        let start = Instant::now();
        let check = check_inductive(program, pre, &invariant, &post, &CheckOptions::default())?;
        let elapsed = start.elapsed().as_secs_f64();
        let status = if check.all_certified() {
            ReportStatus::Certified
        } else {
            ReportStatus::NotCertified
        };
        let mut report = SynthesisReport::skeleton(&request.id, request.mode, status);
        report.backend = "lm".to_string();
        report.pairs_total = check.certificates.len();
        report.pairs_certified = check.num_certified();
        report.system_size = check
            .certificates
            .iter()
            .map(|c| c.problem_size)
            .max()
            .unwrap_or(0);
        report.timings = vec![(stage_names::SOLVE.to_string(), elapsed)];
        report.invariants = render_lines(&invariant.render(program));
        report.postconditions = render_postconditions(program, &post);
        for failure in check.failures() {
            report.diagnostics.push(format!("uncertified: {failure}"));
        }
        Ok(report)
    }
}

/// Resolves and validates the target assertions of a weak-mode request:
/// post-condition specs are rejected, labels resolve against the main
/// function, and no label may receive more targets than the template has
/// conjuncts. Targets whose degree exceeds the requested template degree
/// are *not* rejected here — [`escalate_degree`] raises the degree to fit
/// them. Shared between [`Engine`] weak runs and external drivers (the
/// validation subsystem), so both entry points accept exactly the same
/// requests.
///
/// # Errors
///
/// Returns [`ApiError::InvalidRequest`] / [`ApiError::UnknownLabel`] /
/// [`ApiError::Assertion`] exactly as an Engine weak run would.
pub fn resolve_weak_targets(
    program: &Program,
    request: &SynthesisRequest,
) -> Result<Vec<TargetAssertion>, ApiError> {
    let targets: Vec<TargetAssertion> = request
        .assertions
        .iter()
        .map(|spec| {
            if spec.function.is_some() {
                return Err(ApiError::InvalidRequest {
                    message: "post-condition assertions only apply to check requests".to_string(),
                });
            }
            let label = resolve_label(program, spec.label)?;
            let poly = parse_assertion(program, &spec.text)?;
            Ok(TargetAssertion::new(label, poly))
        })
        .collect::<Result<_, _>>()?;
    let mut per_label: HashMap<Label, usize> = HashMap::new();
    for target in &targets {
        let count = per_label.entry(target.label).or_insert(0);
        *count += 1;
        if *count > request.options.size {
            return Err(ApiError::InvalidRequest {
                message: format!(
                    "more than {} target(s) at label {}; raise `options.size`",
                    request.options.size, target.label
                ),
            });
        }
    }
    Ok(targets)
}

/// Raises the template degree to cover the targets: a degree-`k` target
/// cannot be pinned into a degree-`d` template for `d < k` (its monomials
/// fall outside the template basis), so rather than reject the request the
/// degree is escalated to the highest target degree and the run carries a
/// diagnostic saying so. Returns the options to run with and the diagnostic
/// (`None` when the requested degree already fits). Shared between
/// [`Engine`] weak runs and external drivers (the validation subsystem).
pub fn escalate_degree(
    options: &polyinv_constraints::SynthesisOptions,
    targets: &[TargetAssertion],
) -> (polyinv_constraints::SynthesisOptions, Option<String>) {
    let needed = targets
        .iter()
        .map(|target| target.poly.degree())
        .max()
        .unwrap_or(0);
    if needed <= options.degree {
        return (options.clone(), None);
    }
    let note = format!(
        "template degree escalated {} -> {} to fit the degree-{} target",
        options.degree, needed, needed
    );
    (options.clone().with_degree(needed), Some(note))
}

/// Resolves an assertion label index against the main function (`None`
/// means the exit label). Shared with external drivers (the validation
/// subsystem) so that label indices mean the same thing everywhere.
///
/// # Errors
///
/// Returns [`ApiError::UnknownLabel`] when the index is out of range.
pub fn resolve_label(program: &Program, index: Option<usize>) -> Result<Label, ApiError> {
    let labels = program.main().labels();
    match index {
        None => Ok(program.main().exit_label()),
        Some(index) if index < labels.len() => Ok(labels[index]),
        Some(index) => Err(ApiError::UnknownLabel {
            index,
            available: labels.len(),
        }),
    }
}

/// Parses one assertion in the scope of the main function, mapping the
/// front-end error to [`ApiError::Assertion`]. Shared with external
/// drivers (the validation subsystem).
///
/// # Errors
///
/// Returns [`ApiError::Assertion`] with the front-end's span when the text
/// does not parse in the main function's scope.
pub fn parse_assertion(program: &Program, text: &str) -> Result<Polynomial, ApiError> {
    polyinv_lang::parse_assertion(program, program.main().name(), text)
        .map(|(poly, _)| poly)
        .map_err(|error| ApiError::Assertion {
            text: text.to_string(),
            line: error.line(),
            column: error.column(),
            message: error.message().to_string(),
        })
}

fn timings_to_seconds(timings: &StageTimings) -> Vec<(String, f64)> {
    timings
        .iter()
        .map(|(stage, duration)| (stage.to_string(), duration.as_secs_f64()))
        .collect()
}

fn render_lines(rendered: &str) -> Vec<String> {
    rendered.lines().map(str::to_string).collect()
}

fn render_postconditions(program: &Program, post: &Postcondition) -> Vec<String> {
    let mut lines = Vec::new();
    for (function, atoms) in post.iter() {
        for atom in atoms {
            lines.push(format!(
                "{function}: {} {} 0",
                program.render_poly(&atom.poly),
                if atom.strict { ">" } else { ">=" }
            ));
        }
    }
    lines.sort();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

    /// The Engine must stay shareable across server workers: one
    /// `Arc<Engine>` is driven from many threads.
    #[allow(dead_code)]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn colliding_source_hashes_never_alias_programs() {
        // Regression test for the parse-cache collision hazard: force two
        // different sources into the same hash bucket and assert each source
        // only ever hits its own entry. (Real FNV-1a collisions between two
        // well-formed programs are astronomically unlikely to construct, so
        // the collision is synthesized at the cache layer, which only ever
        // sees opaque keys.)
        let mut cache = ProgramCache::new(8);
        let source_a = "f(x) { return x + 1 }";
        let source_b = "f(x) { return x + 2 }";
        let program_a = Arc::new(polyinv_lang::parse_program(source_a).unwrap());
        let program_b = Arc::new(polyinv_lang::parse_program(source_b).unwrap());
        let key = 0xdead_beef_u64;
        cache.insert(key, source_a, &program_a);
        cache.insert(key, source_b, &program_b);
        // A bare-hash lookup would return whichever entry came first; the
        // source-verified lookup must return exactly the matching program.
        let hit_a = cache.get(key, source_a).expect("source a cached");
        let hit_b = cache.get(key, source_b).expect("source b cached");
        assert!(Arc::ptr_eq(&hit_a, &program_a));
        assert!(Arc::ptr_eq(&hit_b, &program_b));
        // An unseen source under the colliding key is a miss, not a hit.
        assert!(cache.get(key, "f(x) { return x + 3 }").is_none());
    }

    #[test]
    fn shard_capacities_sum_to_the_requested_total() {
        for capacity in [1, 2, 7, 8, 9, 64, 100, 1000] {
            let cache = ShardedProgramCache::new(capacity);
            let total: usize = cache
                .shards
                .iter()
                .map(|shard| shard.lock().unwrap().capacity)
                .sum();
            assert_eq!(total, capacity, "capacity {capacity}");
            assert!(cache.shards.len() <= MAX_CACHE_SHARDS);
        }
        // Small caches stay single-sharded so global LRU order is exact.
        assert_eq!(ShardedProgramCache::new(8).shards.len(), 1);
        // The default service-sized cache spreads over independent locks.
        assert!(
            ShardedProgramCache::new(DEFAULT_CACHE_CAPACITY)
                .shards
                .len()
                > 1
        );
    }

    #[test]
    fn generate_only_reports_paper_scale_metrics() {
        let engine = Engine::new();
        let report = engine
            .run(&SynthesisRequest::generate_only(RUNNING_EXAMPLE_SOURCE).with_id("gen"))
            .unwrap();
        assert_eq!(report.id, "gen");
        assert_eq!(report.status, ReportStatus::Generated);
        assert!(report.system_size > 500);
        assert!(report.num_unknowns > 0);
        assert!(report.stage_seconds(stage_names::TEMPLATES) > 0.0);
        assert!(report.stage_seconds(stage_names::REDUCTION) > 0.0);
    }

    #[test]
    fn programs_parse_once_per_source() {
        let engine = Engine::new();
        let a = engine.parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let b = engine.parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(engine.cached_programs(), 1);
        engine.parse_program("f(x) { return x }").unwrap();
        assert_eq!(engine.cached_programs(), 2);
    }

    #[test]
    fn parse_cache_is_capped_with_lru_eviction() {
        let engine = Engine::new().with_cache_capacity(8);
        // Many distinct sources: the cache must stay at its cap, not leak.
        for i in 0..100 {
            let source = format!("f(x) {{ return x + {i} }}");
            engine.parse_program(&source).unwrap();
            assert!(engine.cached_programs() <= 8, "cache grew past its cap");
        }
        assert_eq!(engine.cached_programs(), 8);
        // Recently used entries survive; the eldest were evicted.
        let recent = "f(x) { return x + 99 }";
        let a = engine.parse_program(recent).unwrap();
        let b = engine.parse_program(recent).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "recent entry should still be cached");
    }

    #[test]
    fn lru_eviction_keeps_the_most_recently_touched_program() {
        let engine = Engine::new().with_cache_capacity(2);
        let first = engine.parse_program("f(x) { return x + 1 }").unwrap();
        engine.parse_program("f(x) { return x + 2 }").unwrap();
        // Touch the first program again, then insert a third: the second
        // (least recently used) must be the one evicted.
        engine.parse_program("f(x) { return x + 1 }").unwrap();
        engine.parse_program("f(x) { return x + 3 }").unwrap();
        assert_eq!(engine.cached_programs(), 2);
        let again = engine.parse_program("f(x) { return x + 1 }").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "touched entry was evicted");
    }

    #[test]
    fn parse_errors_carry_spans() {
        let engine = Engine::new();
        let error = engine.parse_program("f(x) { x : 1 }").unwrap_err();
        match error {
            ApiError::Parse { line, column, .. } => {
                assert_eq!(line, Some(1));
                assert!(column.is_some());
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_backends_and_labels_are_rejected() {
        let engine = Engine::new();
        let request = SynthesisRequest::generate_only("f(x) { return x }").with_backend("loqo");
        assert!(matches!(
            engine.run(&request),
            Err(ApiError::UnknownBackend { .. })
        ));
        let request = SynthesisRequest::weak("f(x) { return x }").with_target_at(99, "x + 1 > 0");
        assert!(matches!(
            engine.run(&request),
            Err(ApiError::UnknownLabel { index: 99, .. })
        ));
    }

    #[test]
    fn over_degree_targets_escalate_the_template_degree() {
        // A cubic target against the default degree-2 template used to come
        // back as `error:invalid-request`; request validation now raises the
        // degree to fit the target and says so in a diagnostic.
        let engine = Engine::new();
        let program = engine.parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let request = SynthesisRequest::weak(RUNNING_EXAMPLE_SOURCE).with_target("n*n*n + 1 > 0");
        let targets = resolve_weak_targets(&program, &request).unwrap();
        let (options, note) = escalate_degree(&request.options, &targets);
        assert_eq!(request.options.degree, 2);
        assert_eq!(options.degree, 3);
        assert!(note.unwrap().contains("escalated 2 -> 3"));
        // A target that already fits leaves the options untouched.
        let fitting = SynthesisRequest::weak(RUNNING_EXAMPLE_SOURCE).with_target("n + 1 > 0");
        let targets = resolve_weak_targets(&program, &fitting).unwrap();
        let (options, note) = escalate_degree(&fitting.options, &targets);
        assert_eq!(options.degree, 2);
        assert!(note.is_none());
    }

    #[test]
    fn check_mode_certifies_the_trivial_invariant() {
        let engine = Engine::new();
        // 1 > 0 at every label of the running example.
        let mut request = SynthesisRequest::check(RUNNING_EXAMPLE_SOURCE).with_id("trivial");
        for index in 0..9 {
            request = request.with_target_at(index, "1 > 0");
        }
        let report = engine.run(&request).unwrap();
        assert_eq!(report.status, ReportStatus::Certified);
        assert_eq!(report.pairs_certified, report.pairs_total);
        assert!(report.pairs_total > 0);
        assert!(report.into_result().is_ok());
    }

    #[test]
    fn check_mode_rejects_a_wrong_invariant() {
        let engine = Engine::new();
        let report = engine
            .run(&SynthesisRequest::check(RUNNING_EXAMPLE_SOURCE).with_target_at(7, "1 - s > 0"))
            .unwrap();
        assert_eq!(report.status, ReportStatus::NotCertified);
        assert!(report.pairs_certified < report.pairs_total);
        assert!(matches!(
            report.into_result(),
            Err(ApiError::Uncertified { .. })
        ));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn weak_mode_synthesizes_on_a_tiny_loop() {
        let engine = Engine::new();
        let request = SynthesisRequest::weak(
            r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x + 1
                od;
                return x
            }
            "#,
        )
        .with_degree(1)
        .with_target("x + 1 > 0");
        let report = engine.run(&request).unwrap();
        assert_eq!(report.status, ReportStatus::Synthesized);
        // Either portfolio lane may win the race; both are legitimate.
        assert!(matches!(report.backend.as_str(), "lm" | "penalty"));
        assert!(!report.invariants.is_empty());
        assert!(report.stage_seconds(stage_names::SOLVE) > 0.0);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn strong_mode_reports_system_metrics_and_stage_timings() {
        let engine = Engine::new();
        let request = SynthesisRequest::strong(
            r#"
            counter(x) {
                @pre(x >= 0);
                while x <= 5 do
                    x := x + 1
                od;
                return x
            }
            "#,
        )
        .with_degree(1)
        .with_attempts(4);
        let report = engine.run(&request).unwrap();
        assert_eq!(report.status, ReportStatus::Synthesized);
        assert!(report.system_size > 0);
        assert!(report.num_unknowns > 0);
        assert!(report.stage_seconds(stage_names::TEMPLATES) > 0.0);
        assert!(report.stage_seconds(stage_names::SOLVE) > 0.0);
        assert!(report.invariants.iter().all(|line| line.starts_with('[')));
    }
}
