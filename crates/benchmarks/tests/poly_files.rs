//! Parity between `programs/*.poly` and the embedded benchmark constants.
//!
//! Every Table 2/3 benchmark ships as a CLI-visible `.poly` file (the files
//! double as fuzzer seeds and CLI scenarios). Each file must parse to the
//! same resolved program as the corresponding constant in
//! `polyinv_benchmarks::programs` — compared through the canonical
//! pretty-print, which is insensitive to comments and whitespace but pins
//! every label, guard and polynomial.

use std::path::PathBuf;

use polyinv_lang::parse_program;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs")
}

fn file_name(benchmark_name: &str) -> String {
    format!("{}.poly", benchmark_name.replace('-', "_"))
}

#[test]
fn every_benchmark_has_a_matching_poly_file() {
    for benchmark in polyinv_benchmarks::all() {
        let path = programs_dir().join(file_name(benchmark.name));
        let file_source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing program file {}: {e}", path.display()));
        let from_file = parse_program(&file_source)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let embedded = parse_program(benchmark.source)
            .unwrap_or_else(|e| panic!("embedded `{}` does not parse: {e}", benchmark.name));

        // Same canonical program: identical pretty-print pins every label,
        // polynomial and guard; identical shape pins the label structure.
        assert_eq!(
            from_file.to_string(),
            embedded.to_string(),
            "{} diverges from the embedded `{}` constant",
            path.display(),
            benchmark.name
        );
        assert_eq!(from_file.num_labels(), embedded.num_labels());
        assert_eq!(from_file.var_table().len(), embedded.var_table().len());
    }
}

#[test]
fn every_poly_file_parses() {
    // Includes the non-benchmark scenarios (inc, running_example).
    let mut count = 0;
    for entry in std::fs::read_dir(programs_dir()).expect("programs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("poly") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable file");
        parse_program(&source).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        count += 1;
    }
    // 27 benchmarks + inc + running_example.
    assert!(
        count >= 29,
        "expected at least 29 .poly files, found {count}"
    );
}
