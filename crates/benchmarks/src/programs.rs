//! The benchmark programs of the paper's evaluation, written in the
//! mini-language of Figure 5.
//!
//! * Table 2: the non-recursive programs of the Rodríguez-Carbonell
//!   collection ("some programs that need polynomial invariants in order to
//!   be verified"). The loop structure and variable counts follow the
//!   published descriptions of these classical algorithms; branching on data
//!   we cannot express (e.g. array contents) is replaced by non-determinism,
//!   exactly as the paper does for merge-sort.
//! * Table 3: the recursive benchmarks of Appendix B.2 plus synthetic
//!   stand-ins for the three reinforcement-learning controllers of Zhu et
//!   al. 2019 (see DESIGN.md §4 — the relevant behaviour is a polynomial
//!   plant of degree ≤ 4 with a linear safety envelope).

/// `cohendiv` — Cohen's integer division by repeated doubling.
pub const COHENDIV: &str = r#"
cohendiv(x, y) {
    @pre(x >= 0 && y >= 1);
    q := 0;
    r := x;
    while r >= y do
        a := 1;
        b := y;
        while r >= 2 * b do
            a := 2 * a;
            b := 2 * b
        od;
        r := r - b;
        q := q + a
    od;
    return q
}
"#;

/// `divbin` — binary division.
pub const DIVBIN: &str = r#"
divbin(x, y) {
    @pre(x >= 0 && y >= 1);
    q := 0;
    r := x;
    b := y;
    while r >= b do
        b := 2 * b
    od;
    while b > y do
        b := 0.5 * b;
        q := 2 * q;
        if r >= b then
            r := r - b;
            q := q + 1
        else
            skip
        fi
    od;
    return q
}
"#;

/// `hard` — hardware-style division (Kaldewaij).
pub const HARD: &str = r#"
hard(x, d) {
    @pre(x >= 0 && d >= 1);
    r := x;
    q := 0;
    dd := d;
    p := 1;
    while r >= dd do
        dd := 2 * dd;
        p := 2 * p
    od;
    while p > 1 do
        dd := 0.5 * dd;
        p := 0.5 * p;
        if r >= dd then
            r := r - dd;
            q := q + p
        else
            skip
        fi
    od;
    return q
}
"#;

/// `mannadiv` — Manna's division algorithm.
pub const MANNADIV: &str = r#"
mannadiv(x1, x2) {
    @pre(x1 >= 0 && x2 >= 1);
    y1 := 0;
    y2 := 0;
    y3 := x1;
    while y3 > 0 do
        if y2 + 1 >= x2 then
            y1 := y1 + 1;
            y2 := 0;
            y3 := y3 - 1
        else
            y2 := y2 + 1;
            y3 := y3 - 1
        fi
    od;
    return y1
}
"#;

/// `wensley` (spelled `wensely` in the paper's table) — Wensley's real
/// division.
pub const WENSLEY: &str = r#"
wensley(p, q) {
    @pre(q > p && p >= 0);
    a := 0;
    b := 0.5 * q;
    d := 1;
    y := 0;
    while d >= 0.0001 do
        if p < a + b then
            b := 0.5 * b;
            d := 0.5 * d
        else
            a := a + b;
            y := y + 0.5 * d;
            b := 0.5 * b;
            d := 0.5 * d
        fi
    od;
    return y
}
"#;

/// `sqrt` — integer square root by odd numbers.
pub const SQRT: &str = r#"
sqrt(n) {
    @pre(n >= 0);
    a := 0;
    s := 1;
    t := 1;
    while s <= n do
        a := a + 1;
        t := t + 2;
        s := s + t
    od;
    return a
}
"#;

/// `dijkstra` — Dijkstra's integer square root.
pub const DIJKSTRA: &str = r#"
dijkstra(n) {
    @pre(n >= 0);
    p := 0;
    q := 1;
    r := n;
    while q <= n do
        q := 4 * q
    od;
    while q > 1 do
        q := 0.25 * q;
        h := p + q;
        p := 0.5 * p;
        if r >= h then
            p := p + q;
            r := r - h
        else
            skip
        fi
    od;
    return p
}
"#;

/// `z3sqrt` — square-root kernel extracted from Z3's test suite.
pub const Z3SQRT: &str = r#"
z3sqrt(x) {
    @pre(x >= 1);
    r := 0;
    s := 1;
    q := x;
    while s <= q do
        q := q - s;
        r := r + 1;
        s := s + 2
    od;
    return r
}
"#;

/// `freire1` — Freire's first square-root algorithm (real-valued).
pub const FREIRE1: &str = r#"
freire1(a) {
    @pre(a >= 1);
    x := 0.5 * a;
    r := 0;
    while x > r do
        x := x - r;
        r := r + 1
    od;
    return r
}
"#;

/// `freire2` — Freire's cube-root algorithm.
pub const FREIRE2: &str = r#"
freire2(a) {
    @pre(a >= 1);
    x := a;
    r := 1;
    s := 3.25;
    while x - s > 0 do
        x := x - s;
        s := s + 6 * r + 3;
        r := r + 1
    od;
    return r
}
"#;

/// `euclidex1` — extended Euclid, version 1.
pub const EUCLIDEX1: &str = r#"
euclidex1(x, y) {
    @pre(x >= 1 && y >= 1);
    a := x;
    b := y;
    p := 1;
    q := 0;
    r := 0;
    s := 1;
    while a > b do
        if * then
            a := a - b;
            p := p - q;
            r := r - s
        else
            b := b - a;
            q := q - p;
            s := s - r
        fi
    od;
    return a
}
"#;

/// `euclidex2` — extended Euclid, version 2.
pub const EUCLIDEX2: &str = r#"
euclidex2(x, y) {
    @pre(x >= 1 && y >= 1);
    a := x;
    b := y;
    p := 1;
    q := 0;
    r := 0;
    s := 1;
    while b > 0 do
        c := a - b;
        k := p - q;
        a := b;
        b := c;
        p := q;
        q := k;
        c := r - s;
        r := s;
        s := c
    od;
    return a
}
"#;

/// `euclidex3` — extended Euclid with additional bookkeeping variables.
pub const EUCLIDEX3: &str = r#"
euclidex3(x, y) {
    @pre(x >= 1 && y >= 1);
    a := x;
    b := y;
    p := 1;
    q := 0;
    r := 0;
    s := 1;
    k := 0;
    c := 0;
    d := 0;
    v := 0;
    while a > b do
        if * then
            a := a - b;
            p := p - q;
            r := r - s;
            k := k + 1
        else
            b := b - a;
            q := q - p;
            s := s - r;
            v := v + 1
        fi;
        c := a * p;
        d := b * q
    od;
    return a
}
"#;

/// `lcm1` — least common multiple, version 1.
pub const LCM1: &str = r#"
lcm1(a, b) {
    @pre(a >= 1 && b >= 1);
    x := a;
    y := b;
    u := b;
    v := 0;
    while x > y || y > x do
        while x > y do
            x := x - y;
            v := v + u
        od;
        while y > x do
            y := y - x;
            u := u + v
        od
    od;
    return x
}
"#;

/// `lcm2` — least common multiple, version 2 (single loop with
/// non-deterministic branch order).
pub const LCM2: &str = r#"
lcm2(a, b) {
    @pre(a >= 1 && b >= 1);
    x := a;
    y := b;
    u := b;
    v := 0;
    while x > y || y > x do
        if x > y then
            x := x - y;
            v := v + u
        else
            y := y - x;
            u := u + v
        fi
    od;
    return x
}
"#;

/// `prodbin` — binary multiplication (Russian peasant).
///
/// The loop guard is `y ≥ 1` (not the integer algorithm's `y > 0`): under
/// the paper's real-valued semantics the non-deterministic halving branch
/// can make `y` fractional, and with a `y > 0` guard the decrement branch
/// could then drive `y` negative and overshoot `z` past `a·b` — a real
/// counterexample to the Table 2 target, found by trace falsification
/// (`reproduce --validate`).
pub const PRODBIN: &str = r#"
prodbin(a, b) {
    @pre(a >= 0 && b >= 0);
    x := a;
    y := b;
    z := 0;
    while y >= 1 do
        if * then
            z := z + x;
            y := y - 1
        else
            x := 2 * x;
            y := 0.5 * y
        fi
    od;
    return z
}
"#;

/// `prod4br` — multiplication with four branches.
///
/// As with [`PRODBIN`], the guard is `a ≥ 1 ∧ b ≥ 1` rather than the
/// integer algorithm's `> 0`: the non-deterministic halving branch makes
/// the variables fractional under real semantics, and a `> 0` guard would
/// let the decrement branches drive them negative and falsify the target
/// bound.
pub const PROD4BR: &str = r#"
prod4br(x, y) {
    @pre(x >= 0 && y >= 0);
    a := x;
    b := y;
    p := 1;
    q := 0;
    while a >= 1 && b >= 1 do
        if * then
            a := a - 1;
            q := q + b * p
        else
            if * then
                b := b - 1;
                q := q + a * p
            else
                a := 0.5 * a;
                b := 0.5 * b;
                p := 4 * p
            fi
        fi
    od;
    return q
}
"#;

/// `cohencu` — Cohen's cube computation by finite differences.
pub const COHENCU: &str = r#"
cohencu(a) {
    @pre(a >= 0);
    n := 0;
    x := 0;
    y := 1;
    z := 6;
    while n <= a do
        x := x + y;
        y := y + z;
        z := z + 6;
        n := n + 1
    od;
    return x
}
"#;

/// `petter` — Petter's sum of fourth powers (polynomial summation).
pub const PETTER: &str = r#"
petter(n) {
    @pre(n >= 0);
    x := 0;
    i := 0;
    while i < n do
        x := x + i * i;
        i := i + 1
    od;
    return x
}
"#;

// ----- Table 3: recursive and reinforcement-learning benchmarks ------------

/// `recursive-sum` — Figure 4 of the paper.
pub const RECURSIVE_SUM: &str = r#"
rsum(n) {
    @pre(n >= 0);
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := rsum(m);
        if * then
            s := s + n
        else
            skip
        fi;
        return s
    fi
}
"#;

/// `recursive-square-sum` — Appendix B.2.
pub const RECURSIVE_SQUARE_SUM: &str = r#"
rsqsum(n) {
    @pre(n >= 0);
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := rsqsum(m);
        if * then
            s := s + n * n
        else
            skip
        fi;
        return s
    fi
}
"#;

/// `recursive-cube-sum` — Appendix B.2.
pub const RECURSIVE_CUBE_SUM: &str = r#"
rcubesum(n) {
    @pre(n >= 0);
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := rcubesum(m);
        if * then
            s := s + n * n * n
        else
            skip
        fi;
        return s
    fi
}
"#;

/// `pw2` — the largest power of two not exceeding the input (Appendix B.2).
pub const PW2: &str = r#"
pw2(x) {
    @pre(x >= 1);
    if x >= 2 then
        y := 0.5 * x;
        z := pw2(y);
        return 2 * z
    else
        return 1
    fi
}
"#;

/// `merge-sort` — counts inversions; comparisons on array contents are
/// replaced by non-determinism and the floor operation by a havoc bounded by
/// the pre-condition of the following label (Appendix B.2).
pub const MERGE_SORT: &str = r#"
msort(s, e) {
    @pre(e >= s);
    if s >= e then
        return 0
    else
        j := *;
        @pre(j >= s && e >= j + 1);
        i := j + 1;
        r := msort(s, j);
        ans := msort(i, e);
        ans := ans + r;
        k := s;
        while i <= e do
            while k <= j && i <= e do
                if * then
                    k := k + 1
                else
                    ans := ans + j - k + 1;
                    i := i + 1
                fi
            od;
            i := i + 1
        od;
        while s <= e do
            s := s + 1
        od;
        return ans
    fi
}
"#;

/// `inverted-pendulum` — synthetic stand-in for the Zhu et al. 2019
/// reinforcement-learning benchmark: a linear controller acting on a
/// degree-3 polynomial plant with a box safety envelope.
pub const INVERTED_PENDULUM: &str = r#"
pendulum(theta, omega, u) {
    @pre(theta >= 0 - 1 && 1 >= theta && omega >= 0 - 1 && 1 >= omega && u >= 0 - 1 && 1 >= u);
    t := 0;
    while t <= 50 do
        u := 0 - 2 * theta - 3 * omega;
        a := theta - 0.1666 * theta * theta * theta;
        omega := 0.98 * omega + 0.01 * a + 0.01 * u;
        theta := theta + 0.01 * omega;
        t := t + 1
    od;
    return theta
}
"#;

/// `strict-inverted-pendulum` — as above with a degree-4 plant term and a
/// four-assertion invariant in the paper's configuration.
pub const STRICT_INVERTED_PENDULUM: &str = r#"
spendulum(theta, omega, u) {
    @pre(theta >= 0 - 1 && 1 >= theta && omega >= 0 - 1 && 1 >= omega && u >= 0 - 1 && 1 >= u);
    t := 0;
    while t <= 50 do
        u := 0 - 2 * theta - 3 * omega - 0.5 * theta * omega;
        a := theta - 0.1666 * theta * theta * theta + 0.008 * theta * theta * theta * theta;
        omega := 0.98 * omega + 0.01 * a + 0.01 * u;
        theta := theta + 0.01 * omega;
        t := t + 1
    od;
    return theta
}
"#;

/// `oscillator` — a damped Duffing-style oscillator with a quadratic
/// controller, stand-in for the third Zhu et al. benchmark.
pub const OSCILLATOR: &str = r#"
oscillator(x, v, u) {
    @pre(x >= 0 - 1 && 1 >= x && v >= 0 - 1 && 1 >= v && u >= 0 - 1 && 1 >= u);
    t := 0;
    while t <= 100 do
        u := 0 - x - v;
        v := 0.99 * v - 0.01 * x - 0.01 * x * x * v + 0.01 * u;
        x := x + 0.01 * v;
        t := t + 1
    od;
    return x
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::parse_program;

    #[test]
    fn every_benchmark_program_parses() {
        for (name, source) in [
            ("cohendiv", COHENDIV),
            ("divbin", DIVBIN),
            ("hard", HARD),
            ("mannadiv", MANNADIV),
            ("wensley", WENSLEY),
            ("sqrt", SQRT),
            ("dijkstra", DIJKSTRA),
            ("z3sqrt", Z3SQRT),
            ("freire1", FREIRE1),
            ("freire2", FREIRE2),
            ("euclidex1", EUCLIDEX1),
            ("euclidex2", EUCLIDEX2),
            ("euclidex3", EUCLIDEX3),
            ("lcm1", LCM1),
            ("lcm2", LCM2),
            ("prodbin", PRODBIN),
            ("prod4br", PROD4BR),
            ("cohencu", COHENCU),
            ("petter", PETTER),
            ("recursive-sum", RECURSIVE_SUM),
            ("recursive-square-sum", RECURSIVE_SQUARE_SUM),
            ("recursive-cube-sum", RECURSIVE_CUBE_SUM),
            ("pw2", PW2),
            ("merge-sort", MERGE_SORT),
            ("inverted-pendulum", INVERTED_PENDULUM),
            ("strict-inverted-pendulum", STRICT_INVERTED_PENDULUM),
            ("oscillator", OSCILLATOR),
        ] {
            assert!(
                parse_program(source).is_ok(),
                "benchmark `{name}` fails to parse: {:?}",
                parse_program(source).err()
            );
        }
    }
}
