//! The benchmark suite of the paper's evaluation (Tables 2 and 3), with the
//! paper-reported metadata used by the reproduction harness.
//!
//! Each [`Benchmark`] bundles a program in the mini-language, its synthesis
//! configuration (template size `n` and degree `d`), the numbers reported in
//! the paper (`|V|`, `|S|`, runtime) and, where applicable, a target
//! assertion at the endpoint of the main function.
//!
//! # Example
//!
//! ```
//! use polyinv_benchmarks::{table2, table3};
//!
//! assert_eq!(table2().len(), 19);
//! assert_eq!(table3().len(), 8);
//! let sqrt = table2().into_iter().find(|b| b.name == "sqrt").unwrap();
//! let program = sqrt.program()?;
//! assert_eq!(program.main().name(), "sqrt");
//! # Ok::<(), polyinv_lang::Error>(())
//! ```

pub mod programs;

use polyinv_lang::{parse_assertion, parse_program, Error, Precondition, Program};
use polyinv_poly::Polynomial;

/// Which table of the paper a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Table 2: non-recursive programs from the Rodríguez-Carbonell
    /// collection.
    NonRecursive,
    /// Table 3, first block: reinforcement-learning controllers
    /// (Zhu et al. 2019).
    ReinforcementLearning,
    /// Table 3, second block: classical recursive examples (Appendix B.2).
    Recursive,
}

/// The numbers reported by the paper for one benchmark row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Template size `n` (number of conjuncts per label).
    pub n: usize,
    /// Template degree `d`.
    pub d: u32,
    /// Number of program variables `|V|`.
    pub vars: usize,
    /// Size `|S|` of the generated quadratic system.
    pub system_size: usize,
    /// Reported runtime in seconds.
    pub runtime_secs: f64,
}

/// One benchmark of the evaluation.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The row name used in the paper.
    pub name: &'static str,
    /// Which table/block the benchmark belongs to.
    pub category: Category,
    /// The program source in the mini-language.
    pub source: &'static str,
    /// The numbers reported in the paper.
    pub paper: PaperRow,
    /// A target assertion (comparison over the main function's variables,
    /// `ret` and `*_in` shadows) required at the endpoint label, if the
    /// benchmark has a natural inequality target.
    pub target: Option<&'static str>,
}

impl Benchmark {
    /// Parses and resolves the benchmark program.
    ///
    /// # Errors
    ///
    /// Returns an error if the embedded source fails to parse (a bug caught
    /// by the crate's tests).
    pub fn program(&self) -> Result<Program, Error> {
        parse_program(self.source)
    }

    /// The pre-condition of the benchmark (from its `@pre` annotations plus
    /// the implicit entry assertions).
    ///
    /// # Errors
    ///
    /// Returns an error if the program fails to parse.
    pub fn precondition(&self) -> Result<Precondition, Error> {
        Ok(Precondition::from_program(&self.program()?))
    }

    /// The target assertion parsed against `program`, if any.
    ///
    /// # Errors
    ///
    /// Returns an error if the target text does not parse in the scope of
    /// the main function.
    pub fn target_polynomial(&self, program: &Program) -> Result<Option<Polynomial>, Error> {
        match self.target {
            None => Ok(None),
            Some(text) => {
                let (poly, _) = parse_assertion(program, program.main().name(), text)?;
                Ok(Some(poly))
            }
        }
    }
}

/// The 19 non-recursive benchmarks of Table 2.
pub fn table2() -> Vec<Benchmark> {
    use programs::*;
    let row = |n, d, vars, system_size, runtime_secs| PaperRow {
        n,
        d,
        vars,
        system_size,
        runtime_secs,
    };
    vec![
        Benchmark {
            name: "cohendiv",
            category: Category::NonRecursive,
            source: COHENDIV,
            paper: row(1, 1, 6, 622, 15.236),
            target: Some("x_in + 1 - ret * y_in > 0"),
        },
        Benchmark {
            name: "divbin",
            category: Category::NonRecursive,
            source: DIVBIN,
            paper: row(1, 1, 5, 738, 5.399),
            target: Some("x_in + 1 - ret * y_in > 0"),
        },
        Benchmark {
            name: "hard",
            category: Category::NonRecursive,
            source: HARD,
            paper: row(1, 2, 6, 8324, 27.952),
            target: Some("x_in + 1 - ret * d_in > 0"),
        },
        Benchmark {
            name: "mannadiv",
            category: Category::NonRecursive,
            source: MANNADIV,
            paper: row(1, 2, 5, 2561, 18.222),
            target: Some("x1_in + 1 - ret * x2_in > 0"),
        },
        Benchmark {
            name: "wensely",
            category: Category::NonRecursive,
            source: WENSLEY,
            paper: row(1, 2, 7, 9422, 20.051),
            target: Some("q_in + 1 - ret * q_in > 0"),
        },
        Benchmark {
            name: "sqrt",
            category: Category::NonRecursive,
            source: SQRT,
            paper: row(1, 2, 4, 2030, 5.808),
            target: Some("n_in + 1 - ret * ret > 0"),
        },
        Benchmark {
            name: "dijkstra",
            category: Category::NonRecursive,
            source: DIJKSTRA,
            paper: row(1, 2, 5, 5072, 12.776),
            target: Some("n_in + 1 - ret * ret > 0"),
        },
        Benchmark {
            name: "z3sqrt",
            category: Category::NonRecursive,
            source: Z3SQRT,
            paper: row(1, 2, 6, 4692, 12.944),
            target: Some("x_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "freire1",
            category: Category::NonRecursive,
            source: FREIRE1,
            paper: row(1, 2, 3, 1210, 26.474),
            target: Some("a_in + 2 - ret > 0"),
        },
        Benchmark {
            name: "freire2",
            category: Category::NonRecursive,
            source: FREIRE2,
            paper: row(1, 2, 4, 1016, 10.670),
            target: Some("a_in + 4 - ret > 0"),
        },
        Benchmark {
            name: "euclidex1",
            category: Category::NonRecursive,
            source: EUCLIDEX1,
            paper: row(1, 2, 11, 11191, 97.493),
            target: Some("x_in + y_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "euclidex2",
            category: Category::NonRecursive,
            source: EUCLIDEX2,
            paper: row(1, 2, 8, 11156, 39.323),
            target: Some("x_in + y_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "euclidex3",
            category: Category::NonRecursive,
            source: EUCLIDEX3,
            paper: row(1, 2, 13, 36228, 203.110),
            target: Some("x_in + y_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "lcm1",
            category: Category::NonRecursive,
            source: LCM1,
            paper: row(1, 2, 6, 6589, 17.851),
            target: Some("a_in * b_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "lcm2",
            category: Category::NonRecursive,
            source: LCM2,
            paper: row(1, 2, 6, 6176, 18.714),
            target: Some("a_in * b_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "prodbin",
            category: Category::NonRecursive,
            source: PRODBIN,
            paper: row(1, 2, 5, 5038, 12.125),
            target: Some("a_in * b_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "prod4br",
            category: Category::NonRecursive,
            source: PROD4BR,
            paper: row(1, 2, 6, 10522, 43.205),
            target: Some("x_in * y_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "cohencu",
            category: Category::NonRecursive,
            source: COHENCU,
            paper: row(1, 2, 5, 3424, 11.778),
            target: Some("ret + 1 > 0"),
        },
        Benchmark {
            name: "petter",
            category: Category::NonRecursive,
            source: PETTER,
            paper: row(1, 2, 3, 1080, 20.390),
            target: Some("ret + 1 > 0"),
        },
    ]
}

/// The 8 recursive / reinforcement-learning benchmarks of Table 3.
pub fn table3() -> Vec<Benchmark> {
    use programs::*;
    let row = |n, d, vars, system_size, runtime_secs| PaperRow {
        n,
        d,
        vars,
        system_size,
        runtime_secs,
    };
    vec![
        Benchmark {
            name: "inverted-pendulum",
            category: Category::ReinforcementLearning,
            source: INVERTED_PENDULUM,
            paper: row(1, 3, 7, 9951, 496.093),
            target: Some("2 - ret > 0"),
        },
        Benchmark {
            name: "strict-inverted-pendulum",
            category: Category::ReinforcementLearning,
            source: STRICT_INVERTED_PENDULUM,
            paper: row(4, 2, 7, 14390, 587.783),
            target: Some("2 - ret > 0"),
        },
        Benchmark {
            name: "oscillator",
            category: Category::ReinforcementLearning,
            source: OSCILLATOR,
            paper: row(1, 2, 7, 3552, 39.749),
            target: Some("2 - ret > 0"),
        },
        Benchmark {
            name: "recursive-sum",
            category: Category::Recursive,
            source: RECURSIVE_SUM,
            paper: row(1, 2, 3, 1700, 10.919),
            target: Some("0.5 * n_in * n_in + 0.5 * n_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "recursive-square-sum",
            category: Category::Recursive,
            source: RECURSIVE_SQUARE_SUM,
            paper: row(1, 3, 3, 1121, 17.438),
            target: Some(
                "0.34 * n_in * n_in * n_in + 0.5 * n_in * n_in + 0.17 * n_in + 1 - ret > 0",
            ),
        },
        Benchmark {
            name: "recursive-cube-sum",
            category: Category::Recursive,
            source: RECURSIVE_CUBE_SUM,
            paper: row(1, 4, 3, 15840, 221.211),
            target: Some("0.25 * n_in * n_in * (n_in + 1) * (n_in + 1) + 1 - ret > 0"),
        },
        Benchmark {
            name: "pw2",
            category: Category::Recursive,
            source: PW2,
            paper: row(2, 1, 3, 430, 5.438),
            target: Some("x_in + 1 - ret > 0"),
        },
        Benchmark {
            name: "merge-sort",
            category: Category::Recursive,
            source: MERGE_SORT,
            paper: row(1, 2, 13, 33002, 78.093),
            target: Some("0.5 * (e_in - s_in) * (e_in - s_in + 1) + 1 - ret > 0"),
        },
    ]
}

/// All benchmarks (Table 2 followed by Table 3).
pub fn all() -> Vec<Benchmark> {
    let mut benchmarks = table2();
    benchmarks.extend(table3());
    benchmarks
}

/// Looks up a benchmark by its paper row name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_the_paper() {
        assert_eq!(table2().len(), 19);
        assert_eq!(table3().len(), 8);
        assert_eq!(all().len(), 27);
    }

    #[test]
    fn every_benchmark_parses_and_targets_resolve() {
        for benchmark in all() {
            let program = benchmark
                .program()
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", benchmark.name));
            let target = benchmark
                .target_polynomial(&program)
                .unwrap_or_else(|e| panic!("{} target fails to resolve: {e}", benchmark.name));
            if benchmark.target.is_some() {
                assert!(target.is_some());
            }
            // The pre-condition always contains atoms at the entry label.
            let pre = benchmark.precondition().unwrap();
            assert!(!pre.get(program.main().entry_label()).is_empty());
        }
    }

    #[test]
    fn variable_counts_are_in_the_paper_ballpark() {
        // Our |V^f| counts the paper's program variables plus the shadow
        // parameters and the return variable (arity + 1 extra), plus at most
        // two helper temporaries where simultaneous updates had to be
        // sequentialized (e.g. the swaps in euclidex2).
        for benchmark in all() {
            let program = benchmark.program().unwrap();
            let ours = program.main().vars().len();
            let extra = program.main().params().len() + 1 + 2;
            assert!(
                ours <= benchmark.paper.vars + extra,
                "{}: ours {} vs paper {} (+{})",
                benchmark.name,
                ours,
                benchmark.paper.vars,
                extra
            );
        }
    }

    #[test]
    fn categories_partition_the_tables() {
        assert!(table2()
            .iter()
            .all(|b| b.category == Category::NonRecursive));
        assert_eq!(
            table3()
                .iter()
                .filter(|b| b.category == Category::ReinforcementLearning)
                .count(),
            3
        );
        assert_eq!(
            table3()
                .iter()
                .filter(|b| b.category == Category::Recursive)
                .count(),
            5
        );
        assert!(by_name("sqrt").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
