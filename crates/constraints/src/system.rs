//! The quadratic system produced by the Putinar translation.

use polyinv_poly::{QuadExpr, UnknownId};

use crate::unknowns::UnknownRegistry;

/// A symmetric positive-semidefinite block constraint over a set of
/// unknowns: the matrix whose `(i, j)` entry is the unknown
/// `entries[upper_index(i, j)]` must be PSD.
///
/// PSD blocks only appear in the Gram encoding
/// ([`crate::SosEncoding::Gram`]); the Cholesky encoding expresses the same
/// requirement through quadratic equalities and diagonal inequalities, as in
/// the paper.
#[derive(Debug, Clone)]
pub struct PsdBlock {
    /// The constraint pair this block belongs to.
    pub pair: usize,
    /// The multiplier index within the pair (`0` is `h₀`).
    pub multiplier: usize,
    /// The dimension of the Gram matrix.
    pub dim: usize,
    /// Upper-triangle entries in row-major order
    /// (`(0,0), (0,1) … (0,dim-1), (1,1), …`).
    pub entries: Vec<UnknownId>,
}

impl PsdBlock {
    /// The unknown at position `(row, col)` of the symmetric matrix.
    pub fn unknown(&self, row: usize, col: usize) -> UnknownId {
        let (r, c) = if row <= col { (row, col) } else { (col, row) };
        // Index of (r, c) with r <= c in the row-major upper triangle.
        let offset = r * self.dim + c - r * (r + 1) / 2;
        self.entries[offset]
    }

    /// The number of stored (upper-triangle) entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }
}

/// A system of quadratic equalities and inequalities over the unknowns
/// introduced by the reduction — the object handed to the QCLP solver in
/// Step 4.
#[derive(Debug, Clone)]
pub struct QuadraticSystem {
    /// The registry describing every unknown.
    pub registry: UnknownRegistry,
    /// Equality constraints `expr = 0`.
    pub equalities: Vec<QuadExpr>,
    /// Inequality constraints `expr ≥ 0`.
    pub inequalities: Vec<QuadExpr>,
    /// PSD block constraints (Gram encoding only).
    pub psd_blocks: Vec<PsdBlock>,
    /// The number of constraint pairs the system was generated from.
    pub num_pairs: usize,
}

impl QuadraticSystem {
    /// Creates an empty system.
    pub fn new(registry: UnknownRegistry) -> Self {
        QuadraticSystem {
            registry,
            equalities: Vec::new(),
            inequalities: Vec::new(),
            psd_blocks: Vec::new(),
            num_pairs: 0,
        }
    }

    /// The number of unknowns.
    pub fn num_unknowns(&self) -> usize {
        self.registry.len()
    }

    /// The size `|S|` of the system: the number of quadratic equalities and
    /// inequalities (the quantity reported in Tables 2 and 3 of the paper).
    pub fn size(&self) -> usize {
        self.equalities.len() + self.inequalities.len()
    }

    /// Evaluates the worst violation of the system under an assignment:
    /// the maximum of `|equality|` and `max(0, -inequality)` over all
    /// constraints. PSD blocks are not included (they are checked by the
    /// solver through eigenvalue computations).
    pub fn max_violation(&self, assignment: &[f64]) -> f64 {
        let lookup = |u: UnknownId| assignment.get(u.index()).copied().unwrap_or(0.0);
        let mut worst: f64 = 0.0;
        for eq in &self.equalities {
            worst = worst.max(eq.eval(lookup).abs());
        }
        for ineq in &self.inequalities {
            worst = worst.max((-ineq.eval(lookup)).max(0.0));
        }
        worst
    }

    /// Returns `true` if the assignment satisfies every equality and
    /// inequality up to `tolerance`.
    pub fn is_satisfied(&self, assignment: &[f64], tolerance: f64) -> bool {
        self.max_violation(assignment) <= tolerance
    }

    /// A human-readable summary (used by the benchmark harness).
    pub fn summary(&self) -> String {
        format!(
            "{} unknowns, {} equalities, {} inequalities, {} PSD blocks ({} pairs)",
            self.num_unknowns(),
            self.equalities.len(),
            self.inequalities.len(),
            self.psd_blocks.len(),
            self.num_pairs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknowns::UnknownKind;
    use polyinv_arith::Rational;
    use polyinv_poly::LinExpr;

    #[test]
    fn psd_block_indexing_is_symmetric() {
        let mut registry = UnknownRegistry::new();
        let dim = 3;
        let mut entries = Vec::new();
        for row in 0..dim {
            for col in row..dim {
                entries.push(registry.fresh(UnknownKind::Gram {
                    pair: 0,
                    multiplier: 0,
                    row,
                    col,
                }));
            }
        }
        let block = PsdBlock {
            pair: 0,
            multiplier: 0,
            dim,
            entries,
        };
        assert_eq!(block.num_entries(), 6);
        assert_eq!(block.unknown(1, 2), block.unknown(2, 1));
        assert_eq!(block.unknown(0, 0).index(), 0);
        assert_eq!(block.unknown(2, 2).index(), 5);
    }

    #[test]
    fn violation_measurement() {
        let mut registry = UnknownRegistry::new();
        let u = registry.fresh(UnknownKind::Witness { pair: 0 });
        let mut system = QuadraticSystem::new(registry);
        // u - 2 = 0 and u >= 0.
        system.equalities.push(
            LinExpr::unknown(u).mul(&LinExpr::constant(Rational::one()))
                + QuadExpr::constant(Rational::from_int(-2)),
        );
        system
            .inequalities
            .push(LinExpr::unknown(u).mul(&LinExpr::constant(Rational::one())));
        assert!(system.is_satisfied(&[2.0], 1e-9));
        assert!(!system.is_satisfied(&[0.0], 1e-9));
        assert!((system.max_violation(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((system.max_violation(&[-1.0]) - 3.0).abs() < 1e-12);
        assert_eq!(system.size(), 2);
    }
}
