//! Top-level assembly: from a program and pre-condition to the quadratic
//! system (Steps 1–3 in one call).

use polyinv_arith::Rational;
use polyinv_lang::{Cfg, Precondition, Program};
use polyinv_poly::MonomialTable;

use crate::error::ConstraintError;
use crate::pairs::{generate_pairs, ConstraintPair, PairOptions};
pub use crate::putinar::SosEncoding;
use crate::putinar::{translate_pair, PutinarOptions};
use crate::system::QuadraticSystem;
use crate::template::TemplateSet;
use crate::unknowns::UnknownRegistry;

/// All knobs of the reduction.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Maximum degree `d` of the invariant polynomials (Step 1).
    pub degree: u32,
    /// Number `n` of conjuncts per label (Step 1).
    pub size: usize,
    /// The technical parameter `ϒ` bounding the multiplier degrees (Step 3,
    /// Remark 3).
    pub upsilon: u32,
    /// Sum-of-squares encoding (Cholesky as in the paper, or Gram for the
    /// projection-based solver).
    pub encoding: SosEncoding,
    /// When set, adds the bounded-reals pre-condition of Remark 5 with this
    /// bound `c` at every label, which guarantees the compactness condition
    /// of Putinar's positivstellensatz.
    pub bounded_reals: Option<Rational>,
    /// Lower bound enforced on positivity witnesses.
    pub epsilon_lower: Rational,
    /// Force recursive treatment (post-condition templates and Steps 2.a /
    /// 2.b) even for call-free programs. Programs containing calls are
    /// always treated recursively regardless of this flag.
    pub force_recursive: bool,
    /// Run the affine presolve fixpoint ([`crate::presolve`]) between the
    /// reduction and the solve. On by default; the `--no-presolve` escape
    /// hatch disables it to solve the raw Step-3 system.
    pub presolve: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            degree: 2,
            size: 1,
            upsilon: 2,
            encoding: SosEncoding::Cholesky,
            bounded_reals: None,
            epsilon_lower: Rational::new(1, 100),
            force_recursive: false,
            presolve: true,
        }
    }
}

impl SynthesisOptions {
    /// Convenience constructor setting the template degree and size.
    pub fn with_degree_and_size(degree: u32, size: usize) -> Self {
        SynthesisOptions::default()
            .with_degree(degree)
            .with_size(size)
    }

    /// Sets the template degree `d` (builder style).
    pub fn with_degree(mut self, degree: u32) -> Self {
        self.degree = degree;
        self
    }

    /// Sets the number `n` of conjuncts per label (builder style).
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Sets the technical parameter `ϒ` (builder style).
    pub fn with_upsilon(mut self, upsilon: u32) -> Self {
        self.upsilon = upsilon;
        self
    }

    /// Sets the sum-of-squares encoding (builder style).
    pub fn with_encoding(mut self, encoding: SosEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Enables the bounded-reals augmentation of Remark 5 with bound `c`
    /// (builder style).
    pub fn with_bounded_reals(mut self, bound: Rational) -> Self {
        self.bounded_reals = Some(bound);
        self
    }

    /// Sets the lower bound enforced on positivity witnesses (builder
    /// style).
    pub fn with_epsilon_lower(mut self, epsilon: Rational) -> Self {
        self.epsilon_lower = epsilon;
        self
    }

    /// Forces recursive treatment even for call-free programs (builder
    /// style).
    pub fn with_force_recursive(mut self, force: bool) -> Self {
        self.force_recursive = force;
        self
    }

    /// Enables or disables the affine presolve between reduction and solve
    /// (builder style). On by default.
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = presolve;
        self
    }

    /// The multiplier-degree ladder the solve drivers climb: the much
    /// smaller ϒ = 0 reduction (constant multipliers) first, then — when
    /// the cheap rung finds nothing and ϒ > 0 was requested — the full
    /// reduction. One definition so the weak, strong and validated drivers
    /// cannot drift apart. Never empty.
    pub fn upsilon_ladder(&self) -> Vec<u32> {
        let mut ladder = vec![0];
        if self.upsilon > 0 {
            ladder.push(self.upsilon);
        }
        ladder
    }
}

/// The full output of the reduction: the quadratic system plus everything
/// needed to interpret its solutions (templates and constraint pairs).
#[derive(Debug, Clone)]
pub struct GeneratedSystem {
    /// The quadratic system over the unknowns (Step 3 output).
    pub system: QuadraticSystem,
    /// The invariant / post-condition templates (Step 1 output).
    pub templates: TemplateSet,
    /// The constraint pairs (Step 2 output), in the order in which they were
    /// translated (the `pair` index of unknowns refers to this order).
    pub pairs: Vec<ConstraintPair>,
    /// Whether the recursive variants of the algorithm were used.
    pub recursive: bool,
    /// The pre-condition actually used (including the bounded-reals
    /// augmentation if requested).
    pub precondition: Precondition,
    /// The monomial arena the pairs' interned polynomials live in: one table
    /// serves the whole run, and the pairs' `MonoId`s are meaningful only
    /// relative to it.
    pub mono_table: MonomialTable,
}

impl GeneratedSystem {
    /// The size `|S|` of the generated quadratic system.
    pub fn size(&self) -> usize {
        self.system.size()
    }
}

/// Decides the run parameters shared by every Steps-1–3 entry point:
/// extends the pre-condition with the bounded-reals assertions of Remark 5
/// when requested, and decides recursive treatment.
///
/// Both [`generate`] and the staged pipeline of the `polyinv` crate start
/// from this, so the two entry points cannot diverge.
pub fn prepare(
    program: &Program,
    precondition: &Precondition,
    options: &SynthesisOptions,
) -> (Precondition, bool) {
    let mut pre = precondition.clone();
    if let Some(bound) = options.bounded_reals {
        pre.add_bounded_reals(program, bound);
    }
    let recursive = options.force_recursive || !program.is_simple();
    (pre, recursive)
}

/// Runs Step 3 on already-built templates and pairs, assembling the final
/// [`GeneratedSystem`]. Shared by [`generate`] and the staged pipeline's
/// reduction stage. Takes ownership of the monomial table the pairs were
/// generated into; it travels with the system.
pub fn reduce_pairs(
    templates: TemplateSet,
    registry: UnknownRegistry,
    pairs: Vec<ConstraintPair>,
    options: &SynthesisOptions,
    recursive: bool,
    precondition: Precondition,
    mut mono_table: MonomialTable,
) -> GeneratedSystem {
    let mut system = QuadraticSystem::new(registry);
    let putinar_options = PutinarOptions {
        upsilon: options.upsilon,
        encoding: options.encoding,
        epsilon_lower: options.epsilon_lower,
    };
    for (index, pair) in pairs.iter().enumerate() {
        translate_pair(pair, index, &putinar_options, &mut system, &mut mono_table);
    }
    system.num_pairs = pairs.len();

    GeneratedSystem {
        system,
        templates,
        pairs,
        recursive,
        precondition,
        mono_table,
    }
}

/// Runs Steps 1–3 of `StrongInvSynth` / `RecStrongInvSynth`.
///
/// The pre-condition passed in is extended with the implicit entry
/// assertions already (callers usually obtain it from
/// [`Precondition::from_program`]) and, if `options.bounded_reals` is set,
/// with the bounded-reals assertions of Remark 5.
///
/// # Errors
///
/// Returns a [`ConstraintError`] when pair generation rejects the program
/// (function calls with recursive treatment disabled). The default options
/// enable recursive treatment automatically for programs with calls, so the
/// error is only reachable through inconsistent manual configuration.
pub fn generate(
    program: &Program,
    precondition: &Precondition,
    options: &SynthesisOptions,
) -> Result<GeneratedSystem, ConstraintError> {
    let (pre, recursive) = prepare(program, precondition, options);
    let cfg = Cfg::build(program);
    let mut registry = UnknownRegistry::new();
    let templates = TemplateSet::build(
        program,
        &mut registry,
        options.degree,
        options.size,
        recursive,
    );
    let mut mono_table = MonomialTable::new();
    let pairs = generate_pairs(
        program,
        &cfg,
        &pre,
        &templates,
        PairOptions { recursive },
        &mut mono_table,
    )?;
    Ok(reduce_pairs(
        templates, registry, pairs, options, recursive, pre, mono_table,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::parse_program;
    use polyinv_lang::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    #[test]
    fn running_example_generates_a_system_of_plausible_size() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        assert!(!generated.recursive);
        assert_eq!(generated.pairs.len(), 11);
        // The system must be quadratic, non-trivial and reference the
        // template unknowns.
        assert!(generated.size() > 100);
        assert!(generated.system.num_unknowns() > 9 * 21);
        assert_eq!(generated.system.num_pairs, 11);
    }

    #[test]
    fn recursive_example_is_detected_and_gets_postconditions() {
        let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let generated = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        assert!(generated.recursive);
        assert!(generated.templates.postcondition("rsum").is_some());
    }

    #[test]
    fn bounded_reals_increases_system_size() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let plain = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let bounded = generate(
            &program,
            &pre,
            &SynthesisOptions::default().with_bounded_reals(Rational::from_int(1000)),
        )
        .unwrap();
        assert!(bounded.size() > plain.size());
    }

    #[test]
    fn gram_encoding_is_smaller_than_cholesky() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let cholesky = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let gram = generate(
            &program,
            &pre,
            &SynthesisOptions::default().with_encoding(SosEncoding::Gram),
        )
        .unwrap();
        assert!(gram.size() < cholesky.size());
        assert!(!gram.system.psd_blocks.is_empty());
        assert!(cholesky.system.psd_blocks.is_empty());
    }

    #[test]
    fn degree_one_templates_shrink_the_system() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let degree_two = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        let degree_one = generate(
            &program,
            &pre,
            &SynthesisOptions::with_degree_and_size(1, 1),
        )
        .unwrap();
        assert!(degree_one.size() < degree_two.size());
    }
}
