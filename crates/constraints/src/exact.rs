//! Exact-rational re-check of a solved quadratic system.
//!
//! The LM back-end works in floating point; the reported invariants are the
//! templates instantiated at *rounded* coefficients. This module closes the
//! loop: the rounded coefficients are substituted back into the Step-3
//! constraints (the quadratic (in)equalities the Putinar translation derived
//! from the Step-2 pairs) and every constraint is evaluated with [`Rational`]
//! arithmetic — no floats, no solver, and therefore independent of the path
//! that produced the solution.
//!
//! Rounding policy (DESIGN.md §8): template (s-) unknowns snap to the same
//! `k/64` grid the presentation rounding uses when the solver's value is
//! within `snap_threshold` of a grid point; every other value (including
//! multiplier, Cholesky and witness variables) is rounded to a dyadic
//! rational with denominator `2^dyadic_bits`. All denominators are powers
//! of two bounded by `2^24`, so exact evaluation over `i128` rationals
//! cannot blow up; arithmetic overflow (only reachable through extreme
//! program coefficients) is still reported as a failure, never ignored.
//! [`instantiate_exact`] instantiates the invariant templates at the same
//! assignment, so trace falsification and the exact re-check attack one
//! consistent object.

use crate::{GeneratedSystem, QuadraticSystem, UnknownKind};
use polyinv_arith::Rational;
use polyinv_lang::{InvariantMap, Postcondition, Program};
use polyinv_poly::QuadExpr;

/// Configuration of the exact re-check.
#[derive(Debug, Clone)]
pub struct ExactCheckConfig {
    /// Maximum exact violation accepted (equalities: `|residual|`;
    /// inequalities: `max(0, -value)`).
    pub tolerance: Rational,
    /// Denominator exponent of the dyadic rounding (`2^bits`).
    pub dyadic_bits: u32,
    /// Template coefficients within this distance of a `k/64` grid point
    /// snap to it (matching the presentation rounding of reported
    /// invariants); farther values round dyadically.
    pub snap_threshold: f64,
}

impl Default for ExactCheckConfig {
    fn default() -> Self {
        ExactCheckConfig {
            // The LM tolerance is 1e-7 and snapping moves coefficients by up
            // to 1e-4; 1/1000 absorbs both with margin.
            tolerance: Rational::new(1, 1000),
            dyadic_bits: 24,
            snap_threshold: 1e-4,
        }
    }
}

/// One rung of the certification snap ladder: which grid the template
/// coefficients snap to (when close enough), and the dyadic denominator for
/// everything else.
///
/// A float candidate sits *near* an exactly-feasible rational point; which
/// rounding reaches that point depends on the candidate. Coarse `k/64`
/// coefficients make the prettiest invariants but move each value by up to
/// `snap_threshold`; when the system's constraints are too tight for that
/// perturbation, a finer grid — or no snapping at all, at a higher dyadic
/// resolution — can still land inside the feasible region. The ladder
/// ([`snap_ladder`]) tries policies coarse-to-fine and accepts the first
/// certificate that passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapPolicy {
    /// Template unknowns within `snap_threshold` of a `k/grid` point snap
    /// to it; `None` disables snapping (templates round dyadically too).
    pub snap_grid: Option<i128>,
    /// Denominator exponent of the dyadic rounding (`2^bits`).
    pub dyadic_bits: u32,
}

impl SnapPolicy {
    /// A stable human-readable name (`"snap/64+dyadic24"`,
    /// `"dyadic32"`, …) recorded in the report.
    pub fn describe(&self) -> String {
        match self.snap_grid {
            Some(grid) => format!("snap/{grid}+dyadic{}", self.dyadic_bits),
            None => format!("dyadic{}", self.dyadic_bits),
        }
    }
}

/// The coarse-to-fine rounding ladder of [`exact_recheck_ladder`]: the
/// config's own policy first (presentation-friendly `k/64` snapping), then
/// a 4× finer snap grid, then pure dyadic rounding at the configured and at
/// 32-bit resolution. Deduplicated so a custom config cannot run the same
/// policy twice.
pub fn snap_ladder(config: &ExactCheckConfig) -> Vec<SnapPolicy> {
    let mut ladder = vec![
        SnapPolicy {
            snap_grid: Some(64),
            dyadic_bits: config.dyadic_bits,
        },
        SnapPolicy {
            snap_grid: Some(256),
            dyadic_bits: config.dyadic_bits,
        },
        SnapPolicy {
            snap_grid: None,
            dyadic_bits: config.dyadic_bits,
        },
        SnapPolicy {
            snap_grid: None,
            dyadic_bits: 32,
        },
    ];
    ladder.dedup();
    ladder
}

/// The outcome of an exact re-check.
#[derive(Debug, Clone)]
pub struct ExactReport {
    /// Number of equalities and inequalities evaluated.
    pub constraints: usize,
    /// The worst exact violation over all constraints.
    pub worst_violation: Rational,
    /// Which constraint attained the worst violation.
    pub worst_constraint: String,
    /// The tolerance the check ran with.
    pub tolerance: Rational,
    /// `true` if any evaluation overflowed `i128` rational arithmetic
    /// (reported as a failure: the check could not prove the bound).
    pub overflowed: bool,
    /// The rounding policy that produced this report
    /// ([`SnapPolicy::describe`]).
    pub rounding: String,
}

impl ExactReport {
    /// `true` when every constraint is exactly within tolerance.
    pub fn passed(&self) -> bool {
        !self.overflowed && self.worst_violation <= self.tolerance
    }
}

/// Rounds a float to the dyadic rational `round(value · 2^bits) / 2^bits`.
fn dyadic(value: f64, bits: u32) -> Rational {
    if !value.is_finite() {
        return Rational::zero();
    }
    let scale = 1i128 << bits.min(60);
    let scaled = (value * scale as f64).round();
    if scaled.abs() >= 1e27 {
        // Out of the comfortable i128 range: fall back to the bounded
        // continued-fraction approximation.
        return Rational::approximate(value);
    }
    Rational::new(scaled as i128, scale)
}

/// The exact-rational assignment the re-check evaluates: `k/64` snapping
/// for template unknowns near a grid point (matching the presentation
/// rounding of reported invariants), dyadic rounding for everything else.
/// Every denominator is a power of two ≤ `2^dyadic_bits`.
pub fn exact_assignment(
    system: &QuadraticSystem,
    assignment: &[f64],
    config: &ExactCheckConfig,
) -> Vec<Rational> {
    exact_assignment_with(
        system,
        assignment,
        config,
        SnapPolicy {
            snap_grid: Some(64),
            dyadic_bits: config.dyadic_bits,
        },
    )
}

/// [`exact_assignment`] under an explicit rounding policy (one rung of the
/// snap ladder).
pub fn exact_assignment_with(
    system: &QuadraticSystem,
    assignment: &[f64],
    config: &ExactCheckConfig,
    policy: SnapPolicy,
) -> Vec<Rational> {
    system
        .registry
        .iter()
        .map(|(id, kind)| {
            let value = assignment.get(id.index()).copied().unwrap_or(0.0);
            let is_template = matches!(
                kind,
                UnknownKind::Template { .. } | UnknownKind::PostTemplate { .. }
            );
            if is_template {
                if let Some(grid) = policy.snap_grid {
                    let grid_f = grid as f64;
                    let snapped = Rational::approximate((value * grid_f).round() / grid_f);
                    if (snapped.to_f64() - value).abs() < config.snap_threshold {
                        return snapped;
                    }
                }
            }
            dyadic(value, policy.dyadic_bits)
        })
        .collect()
}

/// Instantiates the invariant (and post-condition) templates of a generated
/// system at an exact assignment, dropping conjuncts that instantiate to
/// zero — the exact-rational counterpart of the pipeline's float-side
/// `instantiate_solution`.
pub fn instantiate_exact(
    program: &Program,
    generated: &GeneratedSystem,
    values: &[Rational],
) -> (InvariantMap, Postcondition) {
    let lookup = |u: polyinv_poly::UnknownId| values.get(u.index()).copied().unwrap_or_default();
    let mut invariant = InvariantMap::new();
    for function in program.functions() {
        for &label in function.labels() {
            for poly in generated.templates.invariant(label).instantiate(lookup) {
                if !poly.is_zero() {
                    invariant.add(label, poly);
                }
            }
        }
    }
    let mut postconditions = Postcondition::new();
    for (name, template) in &generated.templates.postconditions {
        for poly in template.instantiate(lookup) {
            if !poly.is_zero() {
                postconditions.add(name, poly);
            }
        }
    }
    (invariant, postconditions)
}

/// Evaluates a quadratic expression with checked rational arithmetic.
/// `None` means overflow.
fn eval_checked(expr: &QuadExpr, values: &[Rational]) -> Option<Rational> {
    let value_of = |index: usize| values.get(index).copied().unwrap_or_default();
    let mut acc = expr.constant_part();
    for &(u, c) in expr.linear_terms() {
        let term = c.checked_mul(&value_of(u.index())).ok()?;
        acc = acc.checked_add(&term).ok()?;
    }
    for &((a, b), c) in expr.quadratic_terms() {
        let product = value_of(a.index()).checked_mul(&value_of(b.index())).ok()?;
        let term = c.checked_mul(&product).ok()?;
        acc = acc.checked_add(&term).ok()?;
    }
    Some(acc)
}

/// Re-checks a solved system exactly: substitutes the rounded assignment
/// into every equality and inequality and measures the worst violation in
/// exact rational arithmetic.
pub fn exact_recheck(
    system: &QuadraticSystem,
    assignment: &[f64],
    config: &ExactCheckConfig,
) -> ExactReport {
    exact_recheck_with(
        system,
        assignment,
        config,
        SnapPolicy {
            snap_grid: Some(64),
            dyadic_bits: config.dyadic_bits,
        },
    )
}

/// Runs the re-check down the coarse-to-fine [`snap_ladder`]: the first
/// policy whose rounded assignment passes wins (its report is returned).
/// When none passes, the report of the policy with the smallest exact
/// violation is returned — non-overflowing reports always beat overflowing
/// ones — so "how close was the best rounding" survives into diagnostics.
pub fn exact_recheck_ladder(
    system: &QuadraticSystem,
    assignment: &[f64],
    config: &ExactCheckConfig,
) -> ExactReport {
    let mut best: Option<ExactReport> = None;
    for policy in snap_ladder(config) {
        let report = exact_recheck_with(system, assignment, config, policy);
        if report.passed() {
            return report;
        }
        let better = match &best {
            None => true,
            Some(current) => {
                (!report.overflowed && current.overflowed)
                    || (report.overflowed == current.overflowed
                        && report.worst_violation < current.worst_violation)
            }
        };
        if better {
            best = Some(report);
        }
    }
    best.expect("the snap ladder is never empty")
}

/// [`exact_recheck`] under an explicit rounding policy.
pub fn exact_recheck_with(
    system: &QuadraticSystem,
    assignment: &[f64],
    config: &ExactCheckConfig,
    policy: SnapPolicy,
) -> ExactReport {
    let values = exact_assignment_with(system, assignment, config, policy);
    let mut report = ExactReport {
        constraints: system.size(),
        worst_violation: Rational::zero(),
        worst_constraint: String::new(),
        tolerance: config.tolerance,
        overflowed: false,
        rounding: policy.describe(),
    };
    let mut consider = |violation: Option<Rational>, description: String| match violation {
        None => report.overflowed = true,
        Some(violation) => {
            if violation > report.worst_violation {
                report.worst_violation = violation;
                report.worst_constraint = description;
            }
        }
    };
    for (index, eq) in system.equalities.iter().enumerate() {
        let violation = eval_checked(eq, &values).map(|v| v.abs());
        consider(violation, format!("equality #{index}"));
    }
    for (index, ineq) in system.inequalities.iter().enumerate() {
        let violation = eval_checked(ineq, &values).map(|v| {
            if v.is_negative() {
                -v
            } else {
                Rational::zero()
            }
        });
        consider(violation, format!("inequality #{index}"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnknownRegistry;
    use polyinv_poly::{LinExpr, UnknownId};

    fn tiny_system() -> QuadraticSystem {
        let mut registry = UnknownRegistry::new();
        let u = registry.fresh(UnknownKind::Witness { pair: 0 });
        let v = registry.fresh(UnknownKind::Witness { pair: 1 });
        let mut system = QuadraticSystem::new(registry);
        // u·v - 1 = 0 and u ≥ 0.
        let mut eq = LinExpr::unknown(u).mul(&LinExpr::unknown(v));
        eq.add_constant(Rational::from_int(-1));
        system.equalities.push(eq);
        system
            .inequalities
            .push(LinExpr::unknown(u).mul(&LinExpr::constant(Rational::one())));
        let _ = UnknownId::new(0);
        system
    }

    #[test]
    fn exact_satisfaction_passes_with_zero_violation() {
        let system = tiny_system();
        let report = exact_recheck(&system, &[2.0, 0.5], &ExactCheckConfig::default());
        assert!(report.passed());
        assert_eq!(report.worst_violation, Rational::zero());
        assert_eq!(report.constraints, 2);
    }

    #[test]
    fn near_satisfaction_is_measured_exactly_and_tolerated() {
        let system = tiny_system();
        // u·v = 1 + ~2e-7: within the default tolerance, measured exactly.
        let report = exact_recheck(&system, &[2.0, 0.5 + 1e-7], &ExactCheckConfig::default());
        assert!(report.passed());
        assert!(report.worst_violation > Rational::zero());
        assert!(report.worst_violation < Rational::new(1, 1_000_000));
    }

    #[test]
    fn gross_violations_fail_and_name_the_constraint() {
        let system = tiny_system();
        let report = exact_recheck(&system, &[-1.0, 1.0], &ExactCheckConfig::default());
        assert!(!report.passed());
        assert_eq!(report.worst_violation, Rational::from_int(2));
        assert_eq!(report.worst_constraint, "equality #0");
        // The inequality u >= 0 is also violated, by 1.
        let tight = exact_recheck(
            &system,
            &[-1.0, -1.0],
            &ExactCheckConfig {
                tolerance: Rational::zero(),
                ..ExactCheckConfig::default()
            },
        );
        assert!(!tight.passed());
    }

    #[test]
    fn the_snap_ladder_escalates_to_a_finer_snap_grid() {
        // t = 1/256 exactly; the float candidate is 1e-5 off. The k/64 rung
        // cannot snap (no grid point within the threshold) so it rounds
        // dyadically and keeps the 1e-5 error, which the 1024× coefficient
        // amplifies past the tolerance; the k/256 rung snaps to the exact
        // point and certifies.
        let mut registry = UnknownRegistry::new();
        let t = registry.fresh(UnknownKind::PostTemplate {
            function: "f".to_string(),
            conjunct: 0,
            monomial: 0,
        });
        let mut system = QuadraticSystem::new(registry);
        let mut eq = LinExpr::unknown(t).mul(&LinExpr::constant(Rational::from_int(1024)));
        eq.add_constant(Rational::from_int(-4));
        system.equalities.push(eq);
        let candidate = [1.0 / 256.0 + 1e-5];
        let config = ExactCheckConfig::default();
        let coarse = exact_recheck(&system, &candidate, &config);
        assert!(!coarse.passed(), "the k/64 policy alone must fail here");
        let report = exact_recheck_ladder(&system, &candidate, &config);
        assert!(report.passed());
        assert_eq!(report.rounding, "snap/256+dyadic24");
    }

    #[test]
    fn the_snap_ladder_raises_the_dyadic_resolution_when_needed() {
        // u = 2^-28 needs more than 24 bits of denominator: the 2^24 dyadic
        // rounding collapses it to 0 and the 2^28 coefficient turns that
        // into a violation of 1; the final 2^32 rung represents it exactly.
        let mut registry = UnknownRegistry::new();
        let u = registry.fresh(UnknownKind::Witness { pair: 0 });
        let mut system = QuadraticSystem::new(registry);
        let mut eq =
            LinExpr::unknown(u).mul(&LinExpr::constant(Rational::from_int(1i64 << 28)));
        eq.add_constant(Rational::from_int(-1));
        system.equalities.push(eq);
        let candidate = [1.0 / (1u64 << 28) as f64];
        let config = ExactCheckConfig::default();
        assert!(!exact_recheck(&system, &candidate, &config).passed());
        let report = exact_recheck_ladder(&system, &candidate, &config);
        assert!(report.passed());
        assert_eq!(report.rounding, "dyadic32");
    }

    #[test]
    fn an_uncertifiable_point_reports_its_best_rung() {
        // No rounding can fix a gross violation; the ladder returns the
        // rung with the smallest exact violation for diagnostics.
        let system = tiny_system();
        let report = exact_recheck_ladder(&system, &[-1.0, 1.0], &ExactCheckConfig::default());
        assert!(!report.passed());
        assert_eq!(report.worst_violation, Rational::from_int(2));
        assert!(!report.rounding.is_empty());
    }

    #[test]
    fn dyadic_rounding_is_exact_on_dyadic_floats() {
        assert_eq!(dyadic(0.5, 24), Rational::new(1, 2));
        assert_eq!(dyadic(-0.25, 24), Rational::new(-1, 4));
        assert_eq!(dyadic(3.0, 24), Rational::from_int(3));
        assert_eq!(dyadic(f64::NAN, 24), Rational::zero());
        // Error is bounded by 2^-25.
        let approx = dyadic(0.1, 24);
        assert!((approx.to_f64() - 0.1).abs() < 1.0 / (1u64 << 24) as f64);
    }
}
