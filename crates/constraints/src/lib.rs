//! Constraint generation: Steps 1–3 of the paper's algorithms.
//!
//! Given a resolved program, a pre-condition and the synthesis options
//! (template degree `d`, template size `n`, technical parameter `ϒ`), this
//! crate produces the system of quadratic equalities and inequalities whose
//! solutions are exactly the inductive invariants of the requested shape
//! (Lemma 3.6 / Lemma 3.7):
//!
//! 1. **Templates** ([`template`]): an invariant template `η(ℓ)` at every
//!    label and — for recursive programs — a post-condition template `µ(f)`
//!    per function (Steps 1 and 1.a).
//! 2. **Constraint pairs** ([`pairs`]): for every CFG transition, initiation
//!    point, function call and return, a pair `(Γ, g)` encoding
//!    `∀ν. Γ(ν) ⇒ g(ν) > 0` (Steps 2, 2.a and 2.b).
//! 3. **Putinar translation** ([`putinar`]): each constraint pair is
//!    replaced by the polynomial identity `g = ε + h₀ + Σ hᵢ·gᵢ` with
//!    sum-of-squares multipliers `hᵢ` of degree at most `ϒ`, turning the
//!    pair into quadratic equations over the template coefficients
//!    (s-variables), multiplier coefficients (t-variables), SOS certificate
//!    entries (l-variables / Gram entries) and positivity witnesses (ε).
//!
//! The output is a [`QuadraticSystem`], which the `polyinv-qcqp` crate can
//! solve and the `polyinv` crate interprets back into invariants.

pub mod error;
pub mod exact;
pub mod options;
pub mod pairs;
pub mod presolve;
pub mod putinar;
pub mod system;
pub mod template;
pub mod unknowns;

pub use error::ConstraintError;
pub use exact::{
    exact_assignment, exact_recheck, exact_recheck_ladder, instantiate_exact, ExactCheckConfig,
    ExactReport, SnapPolicy,
};
pub use options::{
    generate, prepare, reduce_pairs, GeneratedSystem, SosEncoding, SynthesisOptions,
};
pub use pairs::{ConstraintPair, PairKind};
pub use presolve::{
    presolve, Elimination, PresolveMap, PresolveOptions, PresolveStats, PresolvedSystem,
};
pub use system::{PsdBlock, QuadraticSystem};
pub use template::{LabelTemplate, TemplateSet};
pub use unknowns::{UnknownKind, UnknownRegistry};
