//! Registry of the unknown real variables introduced by the reduction.
//!
//! The paper's reduction introduces four families of unknowns:
//!
//! * **s-variables** — coefficients of the invariant templates `η(ℓ)` and of
//!   the post-condition templates `µ(f)` (Step 1 / 1.a);
//! * **t-variables** — coefficients of the Putinar multipliers `hᵢ`
//!   (Step 3);
//! * **l-variables** — entries of the lower-triangular Cholesky factor
//!   certifying that each `hᵢ` is a sum of squares (Section 3.1), or,
//!   in the Gram encoding, entries of the Gram matrix `Qᵢ`;
//! * **ε-variables** — the positivity witnesses of Corollary 3.2.
//!
//! The registry assigns a dense index space to all of them, keeps their
//! provenance for debugging and reporting, and provides readable names.

use polyinv_lang::Label;
use polyinv_poly::UnknownId;

/// The provenance of an unknown.
///
/// Kinds are `Eq + Hash` so a solution found at one ϒ-rung can be keyed by
/// provenance and replayed as a warm start at the next rung, where the same
/// unknown generally has a different dense index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UnknownKind {
    /// A template coefficient `s_{ℓ,i,j}`: conjunct `i`, monomial index `j`
    /// of the invariant template at label `ℓ`.
    Template {
        /// The label the template belongs to.
        label: Label,
        /// The conjunct index (`0 ≤ i < n`).
        conjunct: usize,
        /// The index of the monomial within the template basis.
        monomial: usize,
    },
    /// A post-condition template coefficient `s_{f,i,j}`.
    PostTemplate {
        /// The function the post-condition belongs to.
        function: String,
        /// The conjunct index.
        conjunct: usize,
        /// The index of the monomial within the template basis.
        monomial: usize,
    },
    /// A multiplier coefficient `t_{i,j}` of constraint pair `pair`,
    /// multiplier `multiplier`, monomial index `monomial`.
    Multiplier {
        /// The constraint-pair index.
        pair: usize,
        /// The multiplier index (`0` is `h₀`).
        multiplier: usize,
        /// The index of the monomial within `M_ϒ`.
        monomial: usize,
    },
    /// An entry `l_{r,c}` (row ≥ col) of the Cholesky factor of multiplier
    /// `multiplier` of constraint pair `pair`.
    Cholesky {
        /// The constraint-pair index.
        pair: usize,
        /// The multiplier index.
        multiplier: usize,
        /// Row of the entry.
        row: usize,
        /// Column of the entry (`col ≤ row`).
        col: usize,
    },
    /// An entry `Q_{r,c}` (row ≤ col) of the Gram matrix of multiplier
    /// `multiplier` of constraint pair `pair` (Gram encoding only).
    Gram {
        /// The constraint-pair index.
        pair: usize,
        /// The multiplier index.
        multiplier: usize,
        /// Row of the entry.
        row: usize,
        /// Column of the entry (`row ≤ col`).
        col: usize,
    },
    /// The positivity witness `ε` of constraint pair `pair`.
    Witness {
        /// The constraint-pair index.
        pair: usize,
    },
}

/// A registry assigning dense [`UnknownId`]s to unknowns.
#[derive(Debug, Clone, Default)]
pub struct UnknownRegistry {
    kinds: Vec<UnknownKind>,
}

impl UnknownRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        UnknownRegistry { kinds: Vec::new() }
    }

    /// Registers a new unknown and returns its id.
    pub fn fresh(&mut self, kind: UnknownKind) -> UnknownId {
        let id = UnknownId::new(self.kinds.len());
        self.kinds.push(kind);
        id
    }

    /// The number of registered unknowns.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if no unknowns have been registered.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The provenance of an unknown.
    pub fn kind(&self, id: UnknownId) -> &UnknownKind {
        &self.kinds[id.index()]
    }

    /// Iterates over all `(id, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UnknownId, &UnknownKind)> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(i, k)| (UnknownId::new(i), k))
    }

    /// All ids of template (s-variable) unknowns, including post-condition
    /// templates.
    pub fn template_unknowns(&self) -> Vec<UnknownId> {
        self.iter()
            .filter(|(_, kind)| {
                matches!(
                    kind,
                    UnknownKind::Template { .. } | UnknownKind::PostTemplate { .. }
                )
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// A readable name for an unknown (`s[l3,0,2]`, `t[5,1,0]`, …).
    pub fn name(&self, id: UnknownId) -> String {
        match &self.kinds[id.index()] {
            UnknownKind::Template {
                label,
                conjunct,
                monomial,
            } => format!("s[{label},{conjunct},{monomial}]"),
            UnknownKind::PostTemplate {
                function,
                conjunct,
                monomial,
            } => format!("s[{function},{conjunct},{monomial}]"),
            UnknownKind::Multiplier {
                pair,
                multiplier,
                monomial,
            } => format!("t[{pair},{multiplier},{monomial}]"),
            UnknownKind::Cholesky {
                pair,
                multiplier,
                row,
                col,
            } => format!("l[{pair},{multiplier},{row},{col}]"),
            UnknownKind::Gram {
                pair,
                multiplier,
                row,
                col,
            } => format!("q[{pair},{multiplier},{row},{col}]"),
            UnknownKind::Witness { pair } => format!("eps[{pair}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_dense_ids() {
        let mut registry = UnknownRegistry::new();
        let a = registry.fresh(UnknownKind::Witness { pair: 0 });
        let b = registry.fresh(UnknownKind::Multiplier {
            pair: 0,
            multiplier: 1,
            monomial: 2,
        });
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.name(a), "eps[0]");
        assert_eq!(registry.name(b), "t[0,1,2]");
    }

    #[test]
    fn template_unknowns_are_filtered() {
        let mut registry = UnknownRegistry::new();
        let s = registry.fresh(UnknownKind::Template {
            label: Label::new(3),
            conjunct: 0,
            monomial: 1,
        });
        registry.fresh(UnknownKind::Witness { pair: 0 });
        let p = registry.fresh(UnknownKind::PostTemplate {
            function: "f".to_string(),
            conjunct: 0,
            monomial: 0,
        });
        assert_eq!(registry.template_unknowns(), vec![s, p]);
        assert_eq!(registry.name(s), "s[l3,0,1]");
    }
}
