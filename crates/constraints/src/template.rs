//! Step 1 / Step 1.a: invariant and post-condition templates.

use std::collections::HashMap;

use polyinv_lang::{Label, Program};
use polyinv_poly::{LinExpr, Monomial, Polynomial, TemplatePoly, UnknownId, VarId};

use crate::unknowns::{UnknownKind, UnknownRegistry};

/// The template attached to one label (or one function post-condition):
/// a conjunction of `n` strict inequalities, each a polynomial of degree at
/// most `d` with unknown coefficients.
#[derive(Debug, Clone)]
pub struct LabelTemplate {
    /// The conjuncts `φ_{ℓ,1} … φ_{ℓ,n}`; each template polynomial is
    /// required to be `> 0`.
    pub conjuncts: Vec<TemplatePoly>,
    /// The monomial basis the template ranges over (shared by all
    /// conjuncts), in the same order as the `monomial` index of the
    /// corresponding s-variables.
    pub basis: Vec<Monomial>,
}

impl LabelTemplate {
    /// The s-variable holding the coefficient of `basis[monomial]` in
    /// conjunct `conjunct`, if it exists.
    pub fn coefficient_unknown(&self, conjunct: usize, monomial: &Monomial) -> Option<UnknownId> {
        let coeff = self.conjuncts.get(conjunct)?.coefficient(monomial);
        let terms = coeff.terms();
        if terms.len() == 1 && coeff.constant_part().is_zero() {
            Some(terms[0].0)
        } else {
            None
        }
    }

    /// Instantiates every conjunct with a concrete assignment of the
    /// unknowns.
    pub fn instantiate<F>(&self, mut assignment: F) -> Vec<Polynomial>
    where
        F: FnMut(UnknownId) -> polyinv_arith::Rational,
    {
        self.conjuncts
            .iter()
            .map(|c| c.instantiate(&mut assignment))
            .collect()
    }
}

/// The full template set of a synthesis problem: one [`LabelTemplate`] per
/// label and (for recursive synthesis) one per function post-condition.
#[derive(Debug, Clone, Default)]
pub struct TemplateSet {
    /// Invariant templates `η(ℓ)`.
    pub invariants: HashMap<Label, LabelTemplate>,
    /// Post-condition templates `µ(f)`, keyed by function name.
    pub postconditions: HashMap<String, LabelTemplate>,
}

impl TemplateSet {
    /// Builds the invariant templates of Step 1 (and, when `recursive` is
    /// set, the post-condition templates of Step 1.a).
    ///
    /// * `degree` — the maximum degree `d` of the invariant polynomials;
    /// * `size` — the number `n` of conjuncts per label;
    /// * `recursive` — whether post-condition templates are needed.
    pub fn build(
        program: &Program,
        registry: &mut UnknownRegistry,
        degree: u32,
        size: usize,
        recursive: bool,
    ) -> TemplateSet {
        let mut set = TemplateSet::default();
        for function in program.functions() {
            let basis = Monomial::all_up_to_degree(function.vars(), degree);
            for &label in function.labels() {
                let template = build_label_template(&basis, size, |conjunct, monomial| {
                    registry.fresh(UnknownKind::Template {
                        label,
                        conjunct,
                        monomial,
                    })
                });
                set.invariants.insert(label, template);
            }
            if recursive {
                // Post-conditions range over {ret_f, v̄₁ … v̄ₙ} only.
                let mut post_vars: Vec<VarId> = vec![function.ret_var()];
                post_vars.extend_from_slice(function.shadow_params());
                post_vars.sort();
                let post_basis = Monomial::all_up_to_degree(&post_vars, degree);
                let name = function.name().to_string();
                let template = build_label_template(&post_basis, size, |conjunct, monomial| {
                    registry.fresh(UnknownKind::PostTemplate {
                        function: name.clone(),
                        conjunct,
                        monomial,
                    })
                });
                set.postconditions.insert(name, template);
            }
        }
        set
    }

    /// The invariant template at a label.
    ///
    /// # Panics
    ///
    /// Panics if the label has no template (i.e. it does not belong to the
    /// program the set was built for).
    pub fn invariant(&self, label: Label) -> &LabelTemplate {
        self.invariants
            .get(&label)
            .expect("label has an invariant template")
    }

    /// The post-condition template of a function, if one was generated.
    pub fn postcondition(&self, function: &str) -> Option<&LabelTemplate> {
        self.postconditions.get(function)
    }

    /// The total number of s-variables in the template set.
    pub fn num_unknowns(&self) -> usize {
        let per_label: usize = self
            .invariants
            .values()
            .map(|t| t.conjuncts.len() * t.basis.len())
            .sum();
        let per_post: usize = self
            .postconditions
            .values()
            .map(|t| t.conjuncts.len() * t.basis.len())
            .sum();
        per_label + per_post
    }
}

fn build_label_template<F>(basis: &[Monomial], size: usize, mut fresh: F) -> LabelTemplate
where
    F: FnMut(usize, usize) -> UnknownId,
{
    let mut conjuncts = Vec::with_capacity(size);
    for conjunct in 0..size {
        let mut poly = TemplatePoly::zero();
        for (index, monomial) in basis.iter().enumerate() {
            let unknown = fresh(conjunct, index);
            poly.add_term(LinExpr::unknown(unknown), monomial.clone());
        }
        conjuncts.push(poly);
    }
    LabelTemplate {
        conjuncts,
        basis: basis.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_arith::Rational;
    use polyinv_lang::parse_program;
    use polyinv_lang::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    #[test]
    fn running_example_template_counts_match_example_6() {
        // Example 6 of the paper: a single quadratic template over
        // V^sum = {n, n̄, i, s, ret} has 21 monomials at each of the 9 labels.
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let mut registry = UnknownRegistry::new();
        let set = TemplateSet::build(&program, &mut registry, 2, 1, false);
        assert_eq!(set.invariants.len(), 9);
        for template in set.invariants.values() {
            assert_eq!(template.conjuncts.len(), 1);
            assert_eq!(template.basis.len(), 21);
            assert_eq!(template.conjuncts[0].num_terms(), 21);
        }
        assert_eq!(registry.len(), 9 * 21);
        assert_eq!(set.num_unknowns(), 9 * 21);
        assert!(set.postconditions.is_empty());
    }

    #[test]
    fn recursive_example_gets_postcondition_template_of_example_11() {
        // Example 11: µ(rsum) is a quadratic template over {n̄, ret}, i.e. 6
        // monomials.
        let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
        let mut registry = UnknownRegistry::new();
        let set = TemplateSet::build(&program, &mut registry, 2, 1, true);
        let post = set.postcondition("rsum").expect("post-condition template");
        assert_eq!(post.basis.len(), 6);
        assert_eq!(post.conjuncts.len(), 1);
    }

    #[test]
    fn template_size_controls_number_of_conjuncts() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let mut registry = UnknownRegistry::new();
        let set = TemplateSet::build(&program, &mut registry, 1, 3, false);
        for template in set.invariants.values() {
            assert_eq!(template.conjuncts.len(), 3);
            // Degree 1 over 5 variables: 6 monomials.
            assert_eq!(template.basis.len(), 6);
        }
    }

    #[test]
    fn coefficient_unknown_lookup_and_instantiation() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let mut registry = UnknownRegistry::new();
        let set = TemplateSet::build(&program, &mut registry, 1, 1, false);
        let entry = program.main().entry_label();
        let template = set.invariant(entry);
        let constant_unknown = template
            .coefficient_unknown(0, &Monomial::one())
            .expect("constant coefficient exists");
        // Instantiating with 1 for that unknown and 0 elsewhere gives the
        // constant polynomial 1.
        let polys = template.instantiate(|u| {
            if u == constant_unknown {
                Rational::one()
            } else {
                Rational::zero()
            }
        });
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0], Polynomial::constant(Rational::one()));
    }
}
