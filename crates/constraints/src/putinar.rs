//! Step 3: the Putinar translation of constraint pairs into quadratic
//! constraints.
//!
//! For a constraint pair `(Γ = {g₁ ≥ 0, …, g_m ≥ 0}, g > 0)` the paper
//! writes the identity
//!
//! ```text
//!     g  =  ε + h₀ + Σᵢ hᵢ·gᵢ                                   (†)
//! ```
//!
//! where `ε > 0` is a fresh positivity witness and every `hᵢ` is a
//! sum-of-squares polynomial of degree at most `ϒ` over the pair's program
//! variables. Matching the coefficients of the two sides monomial by
//! monomial yields quadratic *equalities* over the unknowns; the
//! sum-of-squares side conditions become either
//!
//! * quadratic equalities and diagonal inequalities via the Cholesky
//!   factorization `Q = L·Lᵀ` (Theorem 3.5 — the paper's QCLP encoding), or
//! * an explicit PSD constraint on the Gram matrix `Q` (Theorem 3.4 — the
//!   encoding our alternating-projection solver consumes natively).
//!
//! The translation runs entirely on the interned representation: monomial
//! products are memoized [`MonoId`] lookups, the multiplier bases come from
//! the table's per-`(scope, degree)` cache, and the right-hand side of (†)
//! accumulates into a hash-indexed [`QuadAccumulator`] whose coefficient
//! merges are in place — no `BTreeMap` rebuilds or cloned coefficient
//! expressions on the hot path.

use polyinv_arith::Rational;
use polyinv_poly::interned::QuadAccumulator;
use polyinv_poly::{IntTemplate, LinExpr, MonoId, MonomialTable, QuadExpr, UnknownId};

use crate::pairs::ConstraintPair;
use crate::system::{PsdBlock, QuadraticSystem};
use crate::unknowns::UnknownKind;

/// How sum-of-squares side conditions are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SosEncoding {
    /// `hᵢ = yᵀ·L·Lᵀ·y` with a fresh lower-triangular matrix of l-variables,
    /// non-negative diagonal, and one quadratic equality per coefficient of
    /// `hᵢ`. This is the encoding described in Section 3.1 of the paper and
    /// the one whose constraint count matches the reported `|S|`.
    Cholesky,
    /// `hᵢ = yᵀ·Q·y` with a symmetric Gram matrix `Q ⪰ 0` whose entries are
    /// the unknowns. No t-variables or SOS equalities are needed; the PSD
    /// requirement is recorded as a [`PsdBlock`].
    Gram,
}

/// Tuning knobs of the translation.
#[derive(Debug, Clone, Copy)]
pub struct PutinarOptions {
    /// The technical parameter `ϒ`: the maximum degree of the multipliers
    /// `hᵢ` (Remark 3). Must be even to admit a sum-of-squares
    /// decomposition; odd values are rounded down.
    pub upsilon: u32,
    /// The sum-of-squares encoding.
    pub encoding: SosEncoding,
    /// Lower bound enforced on every positivity witness `ε` (the paper's
    /// `ε` is strictly positive; a concrete lower bound keeps the numeric
    /// solver away from the degenerate `ε = 0` solutions).
    pub epsilon_lower: Rational,
}

impl Default for PutinarOptions {
    fn default() -> Self {
        PutinarOptions {
            upsilon: 2,
            encoding: SosEncoding::Cholesky,
            epsilon_lower: Rational::new(1, 100),
        }
    }
}

/// Translates one constraint pair and appends the resulting constraints to
/// `system`. Returns the number of constraints added.
pub fn translate_pair(
    pair: &ConstraintPair,
    pair_index: usize,
    options: &PutinarOptions,
    system: &mut QuadraticSystem,
    table: &mut MonomialTable,
) -> usize {
    let before = system.size();
    let upsilon = options.upsilon;
    let half_degree = upsilon / 2;

    // Monomial bases over the pair's scope (memoized per scope/degree).
    let multiplier_basis = table.basis_up_to_degree(&pair.scope_vars, upsilon);
    let gram_basis = table.basis_up_to_degree(&pair.scope_vars, half_degree);

    // Right-hand side of (†): ε + h₀ + Σ hᵢ·gᵢ, hash-indexed so every
    // coefficient merge is amortized O(1).
    let mut rhs = QuadAccumulator::new();

    // Positivity witness ε.
    let eps = system
        .registry
        .fresh(UnknownKind::Witness { pair: pair_index });
    let mut eps_term = QuadExpr::zero();
    eps_term.add_linear(eps, Rational::one());
    rhs.add_term(MonoId::ONE, &eps_term);
    // ε ≥ ε_lower.
    let mut eps_bound = QuadExpr::constant(-options.epsilon_lower);
    eps_bound.add_linear(eps, Rational::one());
    system.inequalities.push(eps_bound);

    // Multipliers: h₀ (multiplied by the constant 1) plus one per context
    // entry.
    let mut one = IntTemplate::zero();
    one.add_term(MonoId::ONE, LinExpr::constant(Rational::one()));
    let context_polys: Vec<&IntTemplate> =
        std::iter::once(&one).chain(pair.context.iter()).collect();
    for (multiplier_index, g_i) in context_polys.iter().enumerate() {
        match options.encoding {
            SosEncoding::Cholesky => {
                let expansion = build_cholesky_expansion(
                    pair_index,
                    multiplier_index,
                    &gram_basis,
                    system,
                    table,
                );
                if g_i.is_concrete() {
                    // `gᵢ` has no template unknowns (the constant 1, guard
                    // atoms, pre-condition polynomials), so `hᵢ·gᵢ` stays
                    // quadratic even with hᵢ's coefficients expressed
                    // directly as the `(L·Lᵀ)` entries. Skipping the
                    // t-variable aliases removes one unknown and one
                    // equality per multiplier monomial — a significant
                    // reduction of `|S|` (DESIGN.md §3).
                    for &(mono_h, ref contribution) in expansion.terms() {
                        for &(mono_g, ref coeff) in g_i.terms() {
                            rhs.add_scaled_term(
                                table.mul(mono_h, mono_g),
                                contribution,
                                coeff.constant_part(),
                            );
                        }
                    }
                } else {
                    // `gᵢ` mentions template unknowns (source-label template
                    // conjuncts): alias hᵢ's coefficients through fresh
                    // t-variables so the product stays quadratic.
                    let h_i = alias_through_multiplier_unknowns(
                        pair_index,
                        multiplier_index,
                        &multiplier_basis,
                        &expansion,
                        system,
                    );
                    rhs.add_mul_template(&h_i, g_i, table);
                }
            }
            SosEncoding::Gram => {
                let h_i =
                    build_gram_multiplier(pair_index, multiplier_index, &gram_basis, system, table);
                rhs.add_mul_template(&h_i, g_i, table);
            }
        }
    }

    // Coefficient matching: every monomial of lhs − rhs must vanish, where
    // the left-hand side is the goal polynomial. The accumulated rhs is
    // negated in place (it is the large side) and the goal added on top.
    rhs.negate_then_add_template(&pair.goal);
    let mut terms = rhs.into_terms();
    // Emit in graded-lexicographic monomial order: deterministic, and
    // identical to the order of the previous `BTreeMap`-keyed core.
    table.sort_terms(&mut terms);
    for (_, coeff) in terms {
        system.equalities.push(coeff);
    }

    system.size() - before
}

/// Allocates the Cholesky factor of one multiplier `hᵢ` — fresh l-variables
/// for the lower triangle with `l_{r,r} ≥ 0` inequalities — and returns the
/// symbolic expansion of `yᵀ·L·Lᵀ·y` as a hash-indexed accumulator: for each
/// monomial µ, the quadratic expression
/// `Σ_{(j,k) : y_j·y_k = µ} Σ_c l_{j,c}·l_{k,c}`.
fn build_cholesky_expansion(
    pair: usize,
    multiplier: usize,
    gram_basis: &[MonoId],
    system: &mut QuadraticSystem,
    table: &mut MonomialTable,
) -> QuadAccumulator {
    // l-variables: lower triangle (row ≥ col) of the Cholesky factor.
    let dim = gram_basis.len();
    let mut l = vec![vec![None::<UnknownId>; dim]; dim];
    for (row, l_row) in l.iter_mut().enumerate() {
        for (col, entry) in l_row.iter_mut().enumerate().take(row + 1) {
            let id = system.registry.fresh(UnknownKind::Cholesky {
                pair,
                multiplier,
                row,
                col,
            });
            *entry = Some(id);
            if row == col {
                // Diagonal entries are non-negative.
                let mut diag = QuadExpr::zero();
                diag.add_linear(id, Rational::one());
                system.inequalities.push(diag);
            }
        }
    }

    // Expand yᵀ·L·Lᵀ·y symbolically; the accumulator's hash index turns the
    // previous linear scans into O(1) lookups, and the symmetry of L·Lᵀ lets
    // the loop cover only j ≤ k (the (k, j) entry contributes the same
    // products, so off-diagonal contributions count twice).
    let mut expansion = QuadAccumulator::new();
    let two = Rational::from_int(2);
    for j in 0..dim {
        for k in j..dim {
            let product = table.mul(gram_basis[j], gram_basis[k]);
            let factor = if j == k { Rational::one() } else { two };
            let contribution = expansion.slot(product);
            for c in 0..=j {
                let (Some(a), Some(b)) = (l[j][c], l[k][c]) else {
                    continue;
                };
                contribution.add_quadratic(a, b, factor);
            }
        }
    }
    expansion
}

/// Aliases a Cholesky expansion through fresh t-variables, producing the
/// multiplier `hᵢ` as a template polynomial: one t-variable per monomial of
/// the multiplier basis and one quadratic equality `t_µ = (L·Lᵀ)_µ` each.
///
/// This is required exactly when `hᵢ` multiplies a context polynomial with
/// template unknowns — substituting the quadratic expansion directly would
/// produce cubic terms. Coefficients not present in the expansion force the
/// corresponding t to zero, and expansion monomials outside the t-basis
/// force that part of `L·Lᵀ` to vanish — both are captured by matching over
/// the union.
fn alias_through_multiplier_unknowns(
    pair: usize,
    multiplier: usize,
    multiplier_basis: &[MonoId],
    expansion: &QuadAccumulator,
    system: &mut QuadraticSystem,
) -> IntTemplate {
    let mut h = IntTemplate::zero();
    let mut t_vars: Vec<(MonoId, UnknownId)> = Vec::with_capacity(multiplier_basis.len());
    for (monomial_index, &monomial) in multiplier_basis.iter().enumerate() {
        let t = system.registry.fresh(UnknownKind::Multiplier {
            pair,
            multiplier,
            monomial: monomial_index,
        });
        t_vars.push((monomial, t));
        h.add_term(monomial, LinExpr::unknown(t));
    }
    for &(monomial, t) in &t_vars {
        let mut eq = QuadExpr::zero();
        eq.add_linear(t, Rational::one());
        if let Some(contribution) = expansion.get(monomial) {
            eq.sub_expr(contribution);
        }
        system.equalities.push(eq);
    }
    for &(monomial, ref contribution) in expansion.terms() {
        if !t_vars.iter().any(|&(m, _)| m == monomial) {
            // Should not happen: the Gram basis squares stay within the
            // multiplier basis. Kept as a defensive equality.
            let mut eq = QuadExpr::zero();
            eq.sub_expr(contribution);
            system.equalities.push(eq);
        }
    }
    h
}

/// Builds a multiplier `hᵢ` in the Gram encoding: its coefficients are
/// linear expressions in the Gram-matrix entries, and a [`PsdBlock`] records
/// the `Q ⪰ 0` requirement.
fn build_gram_multiplier(
    pair: usize,
    multiplier: usize,
    gram_basis: &[MonoId],
    system: &mut QuadraticSystem,
    table: &mut MonomialTable,
) -> IntTemplate {
    let dim = gram_basis.len();
    let mut entries = Vec::with_capacity(dim * (dim + 1) / 2);
    let mut matrix = vec![vec![None::<UnknownId>; dim]; dim];
    for row in 0..dim {
        for col in row..dim {
            let id = system.registry.fresh(UnknownKind::Gram {
                pair,
                multiplier,
                row,
                col,
            });
            entries.push(id);
            matrix[row][col] = Some(id);
            matrix[col][row] = Some(id);
        }
    }
    system.psd_blocks.push(PsdBlock {
        pair,
        multiplier,
        dim,
        entries,
    });

    // h = yᵀ·Q·y: coefficient of y_j·y_k is Q[j,k] (doubled off-diagonal).
    let mut h = IntTemplate::zero();
    for j in 0..dim {
        for k in j..dim {
            let monomial = table.mul(gram_basis[j], gram_basis[k]);
            let factor = if j == k {
                Rational::one()
            } else {
                Rational::from_int(2)
            };
            let q = matrix[j][k].expect("entry allocated above");
            h.add_term(monomial, LinExpr::unknown(q).scale(factor));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::{ConstraintPair, PairKind};
    use crate::unknowns::UnknownRegistry;
    use polyinv_poly::{Polynomial, VarId};

    /// A tiny hand-built pair: context {x ≥ 0}, goal x + 1 > 0.
    fn simple_pair(table: &mut MonomialTable) -> ConstraintPair {
        let x = VarId::new(0);
        let context = vec![IntTemplate::from_polynomial(
            &Polynomial::variable(x),
            table,
        )];
        let goal = IntTemplate::from_polynomial(
            &(Polynomial::variable(x) + Polynomial::constant(Rational::one())),
            table,
        );
        ConstraintPair {
            context,
            goal,
            kind: PairKind::Consecution,
            description: "test".to_string(),
            scope_vars: vec![x],
        }
    }

    #[test]
    fn cholesky_translation_produces_expected_constraint_counts() {
        let mut table = MonomialTable::new();
        let pair = simple_pair(&mut table);
        let mut system = QuadraticSystem::new(UnknownRegistry::new());
        let options = PutinarOptions::default();
        translate_pair(&pair, 0, &options, &mut system, &mut table);
        // One variable x, ϒ = 2: Gram basis {1, x} (2 monomials). Both
        // context polynomials (1 and x) are concrete, so the t-variable
        // aliases are eliminated and hᵢ's coefficients are the (L·Lᵀ)
        // entries directly.
        // Unknowns: ε + 2 multipliers × 3 l = 7.
        assert_eq!(system.num_unknowns(), 7);
        // Inequalities: ε bound + 2 diagonals per multiplier = 5.
        assert_eq!(system.inequalities.len(), 5);
        // Equalities: coefficient matching over monomials of degree ≤ 3
        // (1, x, x², x³) = 4.
        assert_eq!(system.equalities.len(), 4);
        assert!(system.psd_blocks.is_empty());
    }

    #[test]
    fn template_contexts_still_alias_through_t_variables() {
        // A context polynomial mentioning a template unknown cannot be
        // multiplied by the quadratic (L·Lᵀ) expansion directly (the product
        // would be cubic); it must keep the t-variable aliases.
        let mut table = MonomialTable::new();
        let mut registry = UnknownRegistry::new();
        let s = registry.fresh(UnknownKind::Witness { pair: 999 });
        let mut system = QuadraticSystem::new(registry);
        let x = VarId::new(0);
        let mut context_poly = IntTemplate::zero();
        let x_mono = table.var(x);
        context_poly.add_term(x_mono, LinExpr::unknown(s));
        let goal = IntTemplate::from_polynomial(
            &(Polynomial::variable(x) + Polynomial::constant(Rational::one())),
            &mut table,
        );
        let pair = ConstraintPair {
            context: vec![context_poly],
            goal,
            kind: PairKind::Consecution,
            description: "template context".to_string(),
            scope_vars: vec![x],
        };
        translate_pair(
            &pair,
            0,
            &PutinarOptions::default(),
            &mut system,
            &mut table,
        );
        // Unknowns: s + ε + 3 l (h₀, eliminated) + 3 t + 3 l (h₁) = 11.
        assert_eq!(system.num_unknowns(), 11);
        // Equalities: 3 t-aliases for h₁ + matching over {1, x, x², x³} = 7.
        assert_eq!(system.equalities.len(), 7);
    }

    #[test]
    fn gram_translation_produces_psd_blocks_instead_of_t_variables() {
        let mut table = MonomialTable::new();
        let pair = simple_pair(&mut table);
        let mut system = QuadraticSystem::new(UnknownRegistry::new());
        let options = PutinarOptions {
            encoding: SosEncoding::Gram,
            ..PutinarOptions::default()
        };
        translate_pair(&pair, 0, &options, &mut system, &mut table);
        // Unknowns: ε + 2 multipliers × 3 Gram entries = 7.
        assert_eq!(system.num_unknowns(), 7);
        assert_eq!(system.psd_blocks.len(), 2);
        // Equalities: coefficient matching only (degree ≤ 3 → 4 monomials).
        assert_eq!(system.equalities.len(), 4);
        // Inequalities: only the ε bound.
        assert_eq!(system.inequalities.len(), 1);
    }

    /// The Putinar identity must hold *symbolically*: for any assignment of
    /// the unknowns that satisfies the generated equalities, the polynomial
    /// identity (†) holds. We check the contrapositive numerically: evaluate
    /// both sides of the coefficient-matching at a random assignment and
    /// confirm that the residual of the equalities equals the coefficient
    /// difference.
    #[test]
    fn coefficient_matching_is_consistent_with_direct_expansion() {
        let mut table = MonomialTable::new();
        let pair = simple_pair(&mut table);
        let mut system = QuadraticSystem::new(UnknownRegistry::new());
        let options = PutinarOptions {
            encoding: SosEncoding::Gram,
            ..PutinarOptions::default()
        };
        translate_pair(&pair, 0, &options, &mut system, &mut table);
        // Assignment: ε = 1, Q₀ = identity-ish, Q₁ = 0. Then
        // rhs = 1 + (1 + x²) and lhs = x + 1, so the difference has
        // coefficients {1: -1, x: 1, x²: -1} and the equalities must have
        // residuals with exactly these magnitudes.
        let mut assignment = vec![0.0; system.num_unknowns()];
        // ε is unknown 0 (allocated first).
        assignment[0] = 1.0;
        // The first Gram block's entries are (0,0), (0,1), (1,1) = unknowns 1, 2, 3.
        assignment[1] = 1.0; // Q[0,0] = 1 → constant 1
        assignment[3] = 1.0; // Q[1,1] = 1 → x²
        let residuals: Vec<f64> = system
            .equalities
            .iter()
            .map(|eq| eq.eval(|u| assignment[u.index()]))
            .collect();
        let mut sorted: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(residuals.len(), 4);
        assert_eq!(sorted, vec![0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn upsilon_zero_still_produces_constant_multipliers() {
        let mut table = MonomialTable::new();
        let pair = simple_pair(&mut table);
        let mut system = QuadraticSystem::new(UnknownRegistry::new());
        let options = PutinarOptions {
            upsilon: 0,
            ..PutinarOptions::default()
        };
        let added = translate_pair(&pair, 0, &options, &mut system, &mut table);
        assert!(added > 0);
        // Multiplier basis = {1}: each hᵢ is a single non-negative constant
        // (l², with the t-alias eliminated for the concrete contexts).
        // Coefficient matching over monomials {1, x}.
        assert_eq!(system.equalities.len(), 2);
    }
}
