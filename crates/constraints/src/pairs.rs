//! Step 2 / 2.a / 2.b: generation of constraint pairs.
//!
//! A constraint pair `(Γ, g)` encodes the requirement
//! `∀ν. (⋀_{gᵢ ∈ Γ} gᵢ(ν) ≥ 0) ⇒ g(ν) > 0`, where the polynomials have
//! coefficients that are affine in the template unknowns. The paper builds
//! one set of pairs per CFG transition (consecution), one for each function
//! entry (initiation), one per function-call transition (call consecution,
//! Step 2.a) and one per return transition (post-condition consecution,
//! Step 2.b).

use std::collections::HashSet;

use polyinv_lang::cfg::{Cfg, Transition, TransitionKind};
use polyinv_lang::guard::Atom;
use polyinv_lang::{Label, Precondition, Program};
use polyinv_poly::{Polynomial, TemplatePoly, VarId};

use crate::template::TemplateSet;

/// The provenance of a constraint pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Initiation at a function entry label.
    Initiation,
    /// Consecution along an ordinary CFG transition.
    Consecution,
    /// Consecution across an abstracted function call (Step 2.a).
    CallConsecution,
    /// Post-condition consecution at a return transition (Step 2.b).
    PostConsecution,
}

/// A constraint pair `(Γ, g)`.
#[derive(Debug, Clone)]
pub struct ConstraintPair {
    /// The antecedent `Γ`: each entry is required to be `≥ 0`.
    pub context: Vec<TemplatePoly>,
    /// The consequent `g`, required to be `> 0`.
    pub goal: TemplatePoly,
    /// Provenance.
    pub kind: PairKind,
    /// Human-readable description (source/target label, transition kind).
    pub description: String,
    /// The program variables over which the Putinar multipliers range.
    pub scope_vars: Vec<VarId>,
}

impl ConstraintPair {
    fn new(
        context: Vec<TemplatePoly>,
        goal: TemplatePoly,
        kind: PairKind,
        description: String,
    ) -> Self {
        let mut scope: HashSet<VarId> = HashSet::new();
        for entry in &context {
            scope.extend(entry.variables());
        }
        scope.extend(goal.variables());
        let mut scope_vars: Vec<VarId> = scope.into_iter().collect();
        scope_vars.sort();
        ConstraintPair {
            context,
            goal,
            kind,
            description,
            scope_vars,
        }
    }
}

/// Options controlling pair generation.
#[derive(Debug, Clone, Copy)]
pub struct PairOptions {
    /// Generate the recursive variants (Steps 1.a, 2.a and 2.b). Required
    /// whenever the program contains function-call statements.
    pub recursive: bool,
}

/// Generates all constraint pairs of the program.
///
/// This corresponds to Step 2 of `StrongInvSynth` plus, when
/// `options.recursive` is set, Steps 2.a and 2.b of `RecStrongInvSynth`.
///
/// # Panics
///
/// Panics if the program contains function calls but `options.recursive` is
/// not set, or if a call's callee is missing a post-condition template.
pub fn generate_pairs(
    program: &Program,
    cfg: &Cfg,
    pre: &Precondition,
    templates: &TemplateSet,
    options: PairOptions,
) -> Vec<ConstraintPair> {
    let mut generator = PairGenerator {
        program,
        pre,
        templates,
        options,
        next_fresh_var: program.var_table().len(),
        pairs: Vec::new(),
    };
    // Initiation pairs (for fmain in the non-recursive case; for every
    // function in the recursive case — a non-recursive program has a single
    // function, so generating them for all functions is uniform).
    for function in program.functions() {
        generator.initiation(function.entry_label());
    }
    // Consecution pairs along every CFG transition.
    for transition in cfg.transitions() {
        generator.transition(transition);
    }
    generator.pairs
}

struct PairGenerator<'a> {
    program: &'a Program,
    pre: &'a Precondition,
    templates: &'a TemplateSet,
    options: PairOptions,
    next_fresh_var: usize,
    pairs: Vec<ConstraintPair>,
}

impl<'a> PairGenerator<'a> {
    fn fresh_var(&mut self) -> VarId {
        let id = VarId::new(self.next_fresh_var);
        self.next_fresh_var += 1;
        id
    }

    /// The pre-condition of a label, lifted to (constant-coefficient)
    /// template polynomials with strict atoms relaxed.
    fn pre_templates(&self, label: Label) -> Vec<TemplatePoly> {
        self.pre
            .get(label)
            .iter()
            .map(|atom| TemplatePoly::from_polynomial(&atom.relaxed().poly))
            .collect()
    }

    /// The pre-condition of a label with a substitution applied.
    fn pre_templates_substituted<F>(&self, label: Label, mut subst: F) -> Vec<TemplatePoly>
    where
        F: FnMut(VarId) -> Option<Polynomial>,
    {
        self.pre
            .get(label)
            .iter()
            .map(|atom| TemplatePoly::from_polynomial(&atom.relaxed().poly.substitute(&mut subst)))
            .collect()
    }

    /// The invariant template conjuncts at a label. The returned borrow is
    /// tied to the template set, not to `self`, so pairs can be pushed while
    /// iterating over it.
    fn invariant_conjuncts(&self, label: Label) -> &'a [TemplatePoly] {
        let templates: &'a TemplateSet = self.templates;
        &templates.invariant(label).conjuncts
    }

    fn initiation(&mut self, entry: Label) {
        let context = self.pre_templates(entry);
        for goal in self.invariant_conjuncts(entry) {
            self.pairs.push(ConstraintPair::new(
                context.clone(),
                goal.clone(),
                PairKind::Initiation,
                format!("initiation at {entry}"),
            ));
        }
    }

    fn transition(&mut self, transition: &Transition) {
        let from = transition.from;
        let to = transition.to;
        match &transition.kind {
            TransitionKind::Update(updates) => {
                self.update_transition(from, to, updates);
            }
            TransitionKind::Guard(formula) => {
                // The guard is rewritten in DNF; each disjunct contributes a
                // separate family of constraint pairs.
                for (index, disjunct) in formula.to_dnf().into_iter().enumerate() {
                    self.guard_transition(from, to, &disjunct, index);
                }
            }
            TransitionKind::Nondet => {
                let mut context = self.pre_templates(from);
                context.extend(self.invariant_conjuncts(from).iter().cloned());
                context.extend(self.pre_templates(to));
                for goal in self.invariant_conjuncts(to) {
                    self.pairs.push(ConstraintPair::new(
                        context.clone(),
                        goal.clone(),
                        PairKind::Consecution,
                        format!("nondet {from} -> {to}"),
                    ));
                }
            }
            TransitionKind::Havoc(var) => {
                // The havoced variable takes an arbitrary value after the
                // transition; model it with a fresh variable v*.
                let fresh = self.fresh_var();
                let var = *var;
                let subst = |v: VarId| {
                    if v == var {
                        Some(Polynomial::variable(fresh))
                    } else {
                        None
                    }
                };
                let mut context = self.pre_templates(from);
                context.extend(self.invariant_conjuncts(from).iter().cloned());
                context.extend(self.pre_templates_substituted(to, subst));
                for goal in self.invariant_conjuncts(to) {
                    self.pairs.push(ConstraintPair::new(
                        context.clone(),
                        goal.substitute(subst),
                        PairKind::Consecution,
                        format!("havoc {from} -> {to}"),
                    ));
                }
            }
            TransitionKind::Call { dest, callee, args } => {
                assert!(
                    self.options.recursive,
                    "program contains function calls; recursive synthesis is required"
                );
                self.call_transition(from, to, *dest, callee, args);
            }
        }
    }

    fn update_transition(&mut self, from: Label, to: Label, updates: &[(VarId, Polynomial)]) {
        let subst = |v: VarId| {
            updates
                .iter()
                .find(|(var, _)| *var == v)
                .map(|(_, poly)| poly.clone())
        };
        let mut context = self.pre_templates(from);
        context.extend(self.invariant_conjuncts(from).iter().cloned());
        context.extend(self.pre_templates_substituted(to, subst));
        // Ordinary consecution into the invariant template of the target.
        for goal in self.invariant_conjuncts(to) {
            self.pairs.push(ConstraintPair::new(
                context.clone(),
                goal.substitute(subst),
                PairKind::Consecution,
                format!("update {from} -> {to}"),
            ));
        }
        // Post-condition consecution (Step 2.b): return transitions target
        // the endpoint label of their function.
        if self.options.recursive {
            let function = self.program.label_function(from);
            if to == function.exit_label() {
                if let Some(post) = self.templates.postcondition(function.name()) {
                    for goal in &post.conjuncts {
                        self.pairs.push(ConstraintPair::new(
                            context.clone(),
                            goal.substitute(subst),
                            PairKind::PostConsecution,
                            format!("post-condition of {} via {from}", function.name()),
                        ));
                    }
                }
            }
        }
    }

    fn guard_transition(&mut self, from: Label, to: Label, disjunct: &[Atom], index: usize) {
        let mut context = self.pre_templates(from);
        context.extend(self.invariant_conjuncts(from).iter().cloned());
        context.extend(self.pre_templates(to));
        context.extend(
            disjunct
                .iter()
                .map(|atom| TemplatePoly::from_polynomial(&atom.relaxed().poly)),
        );
        for goal in self.invariant_conjuncts(to) {
            self.pairs.push(ConstraintPair::new(
                context.clone(),
                goal.clone(),
                PairKind::Consecution,
                format!("guard {from} -> {to} (disjunct {index})"),
            ));
        }
    }

    fn call_transition(
        &mut self,
        from: Label,
        to: Label,
        dest: VarId,
        callee: &str,
        args: &[VarId],
    ) {
        let callee_fn = self
            .program
            .function(callee)
            .expect("resolver guarantees the callee exists");
        let caller_fn = self.program.label_function(from);
        let post = self
            .templates
            .postcondition(callee)
            .expect("recursive synthesis generates a post-condition template per function");

        // v₀* models the value of `dest` after the call.
        let fresh = self.fresh_var();

        // Substitution for the callee's entry pre-condition:
        // parameters and shadow parameters are replaced by the caller's
        // argument variables.
        let params = callee_fn.params().to_vec();
        let shadows = callee_fn.shadow_params().to_vec();
        let args_vec = args.to_vec();
        let entry_subst = |v: VarId| -> Option<Polynomial> {
            if let Some(pos) = params.iter().position(|&p| p == v) {
                return Some(Polynomial::variable(args_vec[pos]));
            }
            if let Some(pos) = shadows.iter().position(|&p| p == v) {
                return Some(Polynomial::variable(args_vec[pos]));
            }
            None
        };
        // Atoms of the callee's entry pre-condition that, after the
        // substitution, only mention the caller's variables. (Atoms about
        // the callee's local variables — which are zero on entry — carry no
        // information about the caller's state and are dropped.)
        let caller_vars: HashSet<VarId> = caller_fn.vars().iter().copied().collect();
        let entry_pre: Vec<TemplatePoly> = self
            .pre
            .get(callee_fn.entry_label())
            .iter()
            .map(|atom| atom.relaxed().poly.substitute(entry_subst))
            .filter(|poly| poly.variables().iter().all(|v| caller_vars.contains(v)))
            .map(|poly| TemplatePoly::from_polynomial(&poly))
            .collect();

        // Substitution for the callee's post-condition template:
        // ret_f' ↦ v₀*, v̄'ᵢ ↦ argᵢ.
        let ret_var = callee_fn.ret_var();
        let post_subst = |v: VarId| -> Option<Polynomial> {
            if v == ret_var {
                return Some(Polynomial::variable(fresh));
            }
            if let Some(pos) = shadows.iter().position(|&p| p == v) {
                return Some(Polynomial::variable(args_vec[pos]));
            }
            None
        };
        let post_templates: Vec<TemplatePoly> = post
            .conjuncts
            .iter()
            .map(|c| c.substitute(post_subst))
            .collect();

        // Substitution replacing the destination variable by v₀* in the
        // target label's pre-condition and invariant template.
        let dest_subst = |v: VarId| {
            if v == dest {
                Some(Polynomial::variable(fresh))
            } else {
                None
            }
        };

        let mut context = self.pre_templates(from);
        context.extend(self.invariant_conjuncts(from).iter().cloned());
        context.extend(entry_pre);
        context.extend(post_templates);
        context.extend(self.pre_templates_substituted(to, dest_subst));

        for goal in self.invariant_conjuncts(to) {
            self.pairs.push(ConstraintPair::new(
                context.clone(),
                goal.substitute(dest_subst),
                PairKind::CallConsecution,
                format!("call {callee} at {from} -> {to}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknowns::UnknownRegistry;
    use polyinv_lang::parse_program;
    use polyinv_lang::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    fn setup(source: &str, recursive: bool) -> (Program, Vec<ConstraintPair>) {
        let program = parse_program(source).unwrap();
        let cfg = Cfg::build(&program);
        let pre = Precondition::from_program(&program);
        let mut registry = UnknownRegistry::new();
        let templates = TemplateSet::build(&program, &mut registry, 2, 1, recursive);
        let pairs = generate_pairs(&program, &cfg, &pre, &templates, PairOptions { recursive });
        (program, pairs)
    }

    #[test]
    fn running_example_produces_one_pair_per_transition_plus_initiation() {
        let (_, pairs) = setup(RUNNING_EXAMPLE_SOURCE, false);
        // 10 CFG transitions (all guards are atomic, so one disjunct each)
        // + 1 initiation pair, with n = 1 conjunct per label.
        assert_eq!(pairs.len(), 11);
        assert_eq!(
            pairs
                .iter()
                .filter(|p| p.kind == PairKind::Initiation)
                .count(),
            1
        );
        // Every pair's scope contains at most |V^sum| + 1 variables.
        for pair in &pairs {
            assert!(pair.scope_vars.len() <= 6);
            assert!(!pair.goal.is_zero());
        }
    }

    #[test]
    fn initiation_pair_context_is_the_entry_precondition() {
        let (program, pairs) = setup(RUNNING_EXAMPLE_SOURCE, false);
        let initiation = pairs
            .iter()
            .find(|p| p.kind == PairKind::Initiation)
            .unwrap();
        let pre = Precondition::from_program(&program);
        let entry = program.main().entry_label();
        assert_eq!(initiation.context.len(), pre.get(entry).len());
    }

    #[test]
    fn recursive_example_has_call_and_post_pairs() {
        let (_, pairs) = setup(RECURSIVE_EXAMPLE_SOURCE, true);
        let call_pairs = pairs
            .iter()
            .filter(|p| p.kind == PairKind::CallConsecution)
            .count();
        let post_pairs = pairs
            .iter()
            .filter(|p| p.kind == PairKind::PostConsecution)
            .count();
        // One call statement, one conjunct -> one call-consecution pair.
        assert_eq!(call_pairs, 1);
        // Two return statements -> two post-condition consecution pairs.
        assert_eq!(post_pairs, 2);
    }

    #[test]
    fn call_pair_scope_contains_the_fresh_variable() {
        let (program, pairs) = setup(RECURSIVE_EXAMPLE_SOURCE, true);
        let call_pair = pairs
            .iter()
            .find(|p| p.kind == PairKind::CallConsecution)
            .unwrap();
        let max_program_var = program.var_table().len();
        assert!(call_pair
            .scope_vars
            .iter()
            .any(|v| v.index() >= max_program_var));
    }

    #[test]
    fn update_pairs_substitute_the_assignment() {
        // For the transition `i := 1` (entry of the running example), the
        // goal polynomial must not contain the variable i.
        let (program, pairs) = setup(RUNNING_EXAMPLE_SOURCE, false);
        let i = program.var_table().id_of("sum", "i").unwrap();
        let entry = program.main().entry_label();
        let pair = pairs
            .iter()
            .find(|p| {
                p.kind == PairKind::Consecution
                    && p.description.contains(&format!("update {entry}"))
            })
            .unwrap();
        assert!(!pair.goal.variables().contains(&i));
    }

    #[test]
    #[should_panic(expected = "recursive synthesis is required")]
    fn calls_without_recursive_mode_panic() {
        setup(RECURSIVE_EXAMPLE_SOURCE, false);
    }

    #[test]
    fn guard_with_disjunction_produces_multiple_pairs() {
        let source = r#"
            f(x) {
                while x >= 0 || x <= 0 - 10 do
                    x := x - 1
                od;
                return x
            }
        "#;
        let (_, pairs) = setup(source, false);
        // The loop guard has 2 disjuncts; its negation (a conjunction) has 1.
        // Transitions: guard-true (2 disjuncts), guard-false (1), body
        // update, return, plus initiation = 2 + 1 + 1 + 1 + 1 = 6.
        assert_eq!(pairs.len(), 6);
    }
}
