//! Step 2 / 2.a / 2.b: generation of constraint pairs.
//!
//! A constraint pair `(Γ, g)` encodes the requirement
//! `∀ν. (⋀_{gᵢ ∈ Γ} gᵢ(ν) ≥ 0) ⇒ g(ν) > 0`, where the polynomials have
//! coefficients that are affine in the template unknowns. The paper builds
//! one set of pairs per CFG transition (consecution), one for each function
//! entry (initiation), one per function-call transition (call consecution,
//! Step 2.a) and one per return transition (post-condition consecution,
//! Step 2.b).
//!
//! Pair polynomials are stored in the interned representation
//! ([`IntTemplate`] over [`MonoId`](polyinv_poly::MonoId)s of the run's
//! [`MonomialTable`]): substitutions, products and accumulations all happen
//! on dense ids, and the label templates and pre-condition atoms are
//! interned once per label instead of cloned per transition.

use std::collections::{HashMap, HashSet};

use polyinv_lang::cfg::{Cfg, Transition, TransitionKind};
use polyinv_lang::guard::Atom;
use polyinv_lang::{Label, Precondition, Program};
use polyinv_poly::{IntPoly, IntTemplate, MonomialTable, VarId};

use crate::error::ConstraintError;
use crate::template::TemplateSet;

/// The provenance of a constraint pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Initiation at a function entry label.
    Initiation,
    /// Consecution along an ordinary CFG transition.
    Consecution,
    /// Consecution across an abstracted function call (Step 2.a).
    CallConsecution,
    /// Post-condition consecution at a return transition (Step 2.b).
    PostConsecution,
}

/// A constraint pair `(Γ, g)` over interned template polynomials.
#[derive(Debug, Clone)]
pub struct ConstraintPair {
    /// The antecedent `Γ`: each entry is required to be `≥ 0`.
    pub context: Vec<IntTemplate>,
    /// The consequent `g`, required to be `> 0`.
    pub goal: IntTemplate,
    /// Provenance.
    pub kind: PairKind,
    /// Human-readable description (source/target label, transition kind).
    pub description: String,
    /// The program variables over which the Putinar multipliers range.
    pub scope_vars: Vec<VarId>,
}

impl ConstraintPair {
    /// Assembles a pair, computing the multiplier scope from the variables
    /// of the context and goal.
    pub fn new(
        context: Vec<IntTemplate>,
        goal: IntTemplate,
        kind: PairKind,
        description: String,
        table: &MonomialTable,
    ) -> Self {
        let mut scope: HashSet<VarId> = HashSet::new();
        for entry in &context {
            scope.extend(entry.variables(table));
        }
        scope.extend(goal.variables(table));
        let mut scope_vars: Vec<VarId> = scope.into_iter().collect();
        scope_vars.sort();
        ConstraintPair {
            context,
            goal,
            kind,
            description,
            scope_vars,
        }
    }
}

/// Options controlling pair generation.
#[derive(Debug, Clone, Copy)]
pub struct PairOptions {
    /// Generate the recursive variants (Steps 1.a, 2.a and 2.b). Required
    /// whenever the program contains function-call statements.
    pub recursive: bool,
}

/// Generates all constraint pairs of the program into `table`'s id space.
///
/// This corresponds to Step 2 of `StrongInvSynth` plus, when
/// `options.recursive` is set, Steps 2.a and 2.b of `RecStrongInvSynth`.
///
/// # Errors
///
/// Returns [`ConstraintError::CallsRequireRecursiveMode`] if the program
/// contains function calls but `options.recursive` is not set, and
/// [`ConstraintError::MissingPostcondition`] /
/// [`ConstraintError::UnknownCallee`] if a call's callee cannot be resolved
/// against the template set.
pub fn generate_pairs(
    program: &Program,
    cfg: &Cfg,
    pre: &Precondition,
    templates: &TemplateSet,
    options: PairOptions,
    table: &mut MonomialTable,
) -> Result<Vec<ConstraintPair>, ConstraintError> {
    let mut generator = PairGenerator {
        program,
        pre,
        templates,
        options,
        next_fresh_var: program.var_table().len(),
        pairs: Vec::new(),
        invariants: HashMap::new(),
        pre_cache: HashMap::new(),
        table,
    };
    // Intern every label template once; every transition into or out of the
    // label reuses the interned conjuncts.
    for (&label, template) in &templates.invariants {
        let conjuncts: Vec<IntTemplate> = template
            .conjuncts
            .iter()
            .map(|c| IntTemplate::from_template(c, generator.table))
            .collect();
        generator.invariants.insert(label, conjuncts);
    }
    // Initiation pairs (for fmain in the non-recursive case; for every
    // function in the recursive case — a non-recursive program has a single
    // function, so generating them for all functions is uniform).
    for function in program.functions() {
        generator.initiation(function.entry_label());
    }
    // Consecution pairs along every CFG transition.
    for transition in cfg.transitions() {
        generator.transition(transition)?;
    }
    Ok(generator.pairs)
}

struct PairGenerator<'a> {
    program: &'a Program,
    pre: &'a Precondition,
    templates: &'a TemplateSet,
    options: PairOptions,
    next_fresh_var: usize,
    pairs: Vec<ConstraintPair>,
    /// Interned invariant conjuncts per label.
    invariants: HashMap<Label, Vec<IntTemplate>>,
    /// Interned (relaxed) pre-condition atoms per label.
    pre_cache: HashMap<Label, Vec<IntTemplate>>,
    table: &'a mut MonomialTable,
}

impl PairGenerator<'_> {
    fn fresh_var(&mut self) -> VarId {
        let id = VarId::new(self.next_fresh_var);
        self.next_fresh_var += 1;
        id
    }

    fn push_pair(
        &mut self,
        context: Vec<IntTemplate>,
        goal: IntTemplate,
        kind: PairKind,
        description: String,
    ) {
        self.pairs.push(ConstraintPair::new(
            context,
            goal,
            kind,
            description,
            self.table,
        ));
    }

    /// The pre-condition of a label, lifted to (constant-coefficient)
    /// interned template polynomials with strict atoms relaxed. Interned
    /// once per label.
    fn pre_templates(&mut self, label: Label) -> Vec<IntTemplate> {
        if let Some(cached) = self.pre_cache.get(&label) {
            return cached.clone();
        }
        let atoms: Vec<IntTemplate> = self
            .pre
            .get(label)
            .iter()
            .map(|atom| IntTemplate::from_polynomial(&atom.relaxed().poly, self.table))
            .collect();
        self.pre_cache.insert(label, atoms.clone());
        atoms
    }

    /// The pre-condition of a label with a substitution applied.
    fn pre_templates_substituted(
        &mut self,
        label: Label,
        subst: &[(VarId, IntPoly)],
    ) -> Vec<IntTemplate> {
        let atoms = self.pre_templates(label);
        atoms
            .iter()
            .map(|atom| substitute(atom, subst, self.table))
            .collect()
    }

    /// The interned invariant template conjuncts at a label (cloned; the
    /// conjunct lists are short and cloning unties them from `self`).
    fn invariant_conjuncts(&self, label: Label) -> Vec<IntTemplate> {
        self.invariants.get(&label).cloned().unwrap_or_default()
    }

    fn initiation(&mut self, entry: Label) {
        let context = self.pre_templates(entry);
        for goal in self.invariant_conjuncts(entry) {
            self.push_pair(
                context.clone(),
                goal,
                PairKind::Initiation,
                format!("initiation at {entry}"),
            );
        }
    }

    fn transition(&mut self, transition: &Transition) -> Result<(), ConstraintError> {
        let from = transition.from;
        let to = transition.to;
        match &transition.kind {
            TransitionKind::Update(updates) => {
                self.update_transition(from, to, updates);
            }
            TransitionKind::Guard(formula) => {
                // The guard is rewritten in DNF; each disjunct contributes a
                // separate family of constraint pairs.
                for (index, disjunct) in formula.to_dnf().into_iter().enumerate() {
                    self.guard_transition(from, to, &disjunct, index);
                }
            }
            TransitionKind::Nondet => {
                let mut context = self.pre_templates(from);
                context.extend(self.invariant_conjuncts(from));
                context.extend(self.pre_templates(to));
                for goal in self.invariant_conjuncts(to) {
                    self.push_pair(
                        context.clone(),
                        goal,
                        PairKind::Consecution,
                        format!("nondet {from} -> {to}"),
                    );
                }
            }
            TransitionKind::Havoc(var) => {
                // The havoced variable takes an arbitrary value after the
                // transition; model it with a fresh variable v*.
                let fresh = self.fresh_var();
                let subst = vec![(*var, IntPoly::variable(fresh, self.table))];
                let mut context = self.pre_templates(from);
                context.extend(self.invariant_conjuncts(from));
                context.extend(self.pre_templates_substituted(to, &subst));
                for goal in self.invariant_conjuncts(to) {
                    let goal = substitute(&goal, &subst, self.table);
                    self.push_pair(
                        context.clone(),
                        goal,
                        PairKind::Consecution,
                        format!("havoc {from} -> {to}"),
                    );
                }
            }
            TransitionKind::Call { dest, callee, args } => {
                if !self.options.recursive {
                    return Err(ConstraintError::CallsRequireRecursiveMode {
                        label: from,
                        callee: callee.clone(),
                        line: self.program.line_of_label(from),
                    });
                }
                self.call_transition(from, to, *dest, callee, args)?;
            }
        }
        Ok(())
    }

    fn update_transition(
        &mut self,
        from: Label,
        to: Label,
        updates: &[(VarId, polyinv_poly::Polynomial)],
    ) {
        let subst: Vec<(VarId, IntPoly)> = updates
            .iter()
            .map(|(var, poly)| (*var, IntPoly::from_polynomial(poly, self.table)))
            .collect();
        let mut context = self.pre_templates(from);
        context.extend(self.invariant_conjuncts(from));
        context.extend(self.pre_templates_substituted(to, &subst));
        // Ordinary consecution into the invariant template of the target.
        for goal in self.invariant_conjuncts(to) {
            let goal = substitute(&goal, &subst, self.table);
            self.push_pair(
                context.clone(),
                goal,
                PairKind::Consecution,
                format!("update {from} -> {to}"),
            );
        }
        // Post-condition consecution (Step 2.b): return transitions target
        // the endpoint label of their function.
        if self.options.recursive {
            let function = self.program.label_function(from);
            if to == function.exit_label() {
                if let Some(post) = self.templates.postcondition(function.name()) {
                    let goals: Vec<IntTemplate> = post
                        .conjuncts
                        .iter()
                        .map(|c| IntTemplate::from_template(c, self.table))
                        .collect();
                    let name = function.name().to_string();
                    for goal in goals {
                        let goal = substitute(&goal, &subst, self.table);
                        self.push_pair(
                            context.clone(),
                            goal,
                            PairKind::PostConsecution,
                            format!("post-condition of {name} via {from}"),
                        );
                    }
                }
            }
        }
    }

    fn guard_transition(&mut self, from: Label, to: Label, disjunct: &[Atom], index: usize) {
        let mut context = self.pre_templates(from);
        context.extend(self.invariant_conjuncts(from));
        context.extend(self.pre_templates(to));
        context.extend(
            disjunct
                .iter()
                .map(|atom| IntTemplate::from_polynomial(&atom.relaxed().poly, self.table)),
        );
        for goal in self.invariant_conjuncts(to) {
            self.push_pair(
                context.clone(),
                goal,
                PairKind::Consecution,
                format!("guard {from} -> {to} (disjunct {index})"),
            );
        }
    }

    fn call_transition(
        &mut self,
        from: Label,
        to: Label,
        dest: VarId,
        callee: &str,
        args: &[VarId],
    ) -> Result<(), ConstraintError> {
        let callee_fn =
            self.program
                .function(callee)
                .ok_or_else(|| ConstraintError::UnknownCallee {
                    label: from,
                    callee: callee.to_string(),
                })?;
        let post = self.templates.postcondition(callee).ok_or_else(|| {
            ConstraintError::MissingPostcondition {
                label: from,
                callee: callee.to_string(),
            }
        })?;
        let post_conjuncts: Vec<IntTemplate> = post
            .conjuncts
            .iter()
            .map(|c| IntTemplate::from_template(c, self.table))
            .collect();

        // v₀* models the value of `dest` after the call.
        let fresh = self.fresh_var();

        // Substitution for the callee's entry pre-condition:
        // parameters and shadow parameters are replaced by the caller's
        // argument variables.
        let params = callee_fn.params().to_vec();
        let shadows = callee_fn.shadow_params().to_vec();
        let mut entry_subst: Vec<(VarId, IntPoly)> = Vec::new();
        for (list, arg) in [(&params, args), (&shadows, args)] {
            for (pos, &param) in list.iter().enumerate() {
                entry_subst.push((param, IntPoly::variable(arg[pos], self.table)));
            }
        }
        // Atoms of the callee's entry pre-condition that only constrain the
        // values being passed in, i.e. whose variables are all parameters or
        // shadow parameters (the substitution domain). Atoms about the
        // callee's other variables describe the *callee frame* (locals and
        // `ret_g` are zero on entry) and say nothing about the caller's
        // state — importing them is unsound for self-recursive calls, where
        // the callee's locals are the caller's own variables. (Found by the
        // `polyinv-validate` fuzzer: the leaked `m = 0 ∧ ret = 0` facts let
        // the solver synthesize invariants that real runs falsify.)
        let subst_domain: HashSet<VarId> = params.iter().chain(shadows.iter()).copied().collect();
        let mut entry_pre: Vec<IntTemplate> = Vec::new();
        for poly in self.pre_templates(callee_fn.entry_label()) {
            let in_domain = poly
                .variables(self.table)
                .iter()
                .all(|v| subst_domain.contains(v));
            if in_domain {
                entry_pre.push(substitute(&poly, &entry_subst, self.table));
            }
        }

        // Substitution for the callee's post-condition template:
        // ret_f' ↦ v₀*, v̄'ᵢ ↦ argᵢ.
        let mut post_subst: Vec<(VarId, IntPoly)> =
            vec![(callee_fn.ret_var(), IntPoly::variable(fresh, self.table))];
        for (pos, &shadow) in shadows.iter().enumerate() {
            post_subst.push((shadow, IntPoly::variable(args[pos], self.table)));
        }
        let post_templates: Vec<IntTemplate> = post_conjuncts
            .iter()
            .map(|c| substitute(c, &post_subst, self.table))
            .collect();

        // Substitution replacing the destination variable by v₀* in the
        // target label's pre-condition and invariant template.
        let dest_subst = vec![(dest, IntPoly::variable(fresh, self.table))];

        let mut context = self.pre_templates(from);
        context.extend(self.invariant_conjuncts(from));
        context.extend(entry_pre);
        context.extend(post_templates);
        context.extend(self.pre_templates_substituted(to, &dest_subst));

        for goal in self.invariant_conjuncts(to) {
            let goal = substitute(&goal, &dest_subst, self.table);
            self.push_pair(
                context.clone(),
                goal,
                PairKind::CallConsecution,
                format!("call {callee} at {from} -> {to}"),
            );
        }
        Ok(())
    }
}

/// Applies a `variable ↦ polynomial` substitution to an interned template.
fn substitute(
    template: &IntTemplate,
    subst: &[(VarId, IntPoly)],
    table: &mut MonomialTable,
) -> IntTemplate {
    template.substitute(
        |v| subst.iter().find(|(var, _)| *var == v).map(|(_, p)| p),
        table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unknowns::UnknownRegistry;
    use polyinv_lang::parse_program;
    use polyinv_lang::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    fn setup(
        source: &str,
        recursive: bool,
    ) -> (
        Program,
        Result<Vec<ConstraintPair>, ConstraintError>,
        MonomialTable,
    ) {
        let program = parse_program(source).unwrap();
        let cfg = Cfg::build(&program);
        let pre = Precondition::from_program(&program);
        let mut registry = UnknownRegistry::new();
        let templates = TemplateSet::build(&program, &mut registry, 2, 1, recursive);
        let mut table = MonomialTable::new();
        let pairs = generate_pairs(
            &program,
            &cfg,
            &pre,
            &templates,
            PairOptions { recursive },
            &mut table,
        );
        (program, pairs, table)
    }

    fn setup_ok(source: &str, recursive: bool) -> (Program, Vec<ConstraintPair>, MonomialTable) {
        let (program, pairs, table) = setup(source, recursive);
        (program, pairs.expect("pair generation succeeds"), table)
    }

    #[test]
    fn running_example_produces_one_pair_per_transition_plus_initiation() {
        let (_, pairs, _) = setup_ok(RUNNING_EXAMPLE_SOURCE, false);
        // 10 CFG transitions (all guards are atomic, so one disjunct each)
        // + 1 initiation pair, with n = 1 conjunct per label.
        assert_eq!(pairs.len(), 11);
        assert_eq!(
            pairs
                .iter()
                .filter(|p| p.kind == PairKind::Initiation)
                .count(),
            1
        );
        // Every pair's scope contains at most |V^sum| + 1 variables.
        for pair in &pairs {
            assert!(pair.scope_vars.len() <= 6);
            assert!(!pair.goal.is_zero());
        }
    }

    #[test]
    fn initiation_pair_context_is_the_entry_precondition() {
        let (program, pairs, _) = setup_ok(RUNNING_EXAMPLE_SOURCE, false);
        let initiation = pairs
            .iter()
            .find(|p| p.kind == PairKind::Initiation)
            .unwrap();
        let pre = Precondition::from_program(&program);
        let entry = program.main().entry_label();
        assert_eq!(initiation.context.len(), pre.get(entry).len());
    }

    #[test]
    fn recursive_example_has_call_and_post_pairs() {
        let (_, pairs, _) = setup_ok(RECURSIVE_EXAMPLE_SOURCE, true);
        let call_pairs = pairs
            .iter()
            .filter(|p| p.kind == PairKind::CallConsecution)
            .count();
        let post_pairs = pairs
            .iter()
            .filter(|p| p.kind == PairKind::PostConsecution)
            .count();
        // One call statement, one conjunct -> one call-consecution pair.
        assert_eq!(call_pairs, 1);
        // Two return statements -> two post-condition consecution pairs.
        assert_eq!(post_pairs, 2);
    }

    #[test]
    fn call_pair_scope_contains_the_fresh_variable() {
        let (program, pairs, _) = setup_ok(RECURSIVE_EXAMPLE_SOURCE, true);
        let call_pair = pairs
            .iter()
            .find(|p| p.kind == PairKind::CallConsecution)
            .unwrap();
        let max_program_var = program.var_table().len();
        assert!(call_pair
            .scope_vars
            .iter()
            .any(|v| v.index() >= max_program_var));
    }

    #[test]
    fn update_pairs_substitute_the_assignment() {
        // For the transition `i := 1` (entry of the running example), the
        // goal polynomial must not contain the variable i.
        let (program, pairs, table) = setup_ok(RUNNING_EXAMPLE_SOURCE, false);
        let i = program.var_table().id_of("sum", "i").unwrap();
        let entry = program.main().entry_label();
        let pair = pairs
            .iter()
            .find(|p| {
                p.kind == PairKind::Consecution
                    && p.description.contains(&format!("update {entry}"))
            })
            .unwrap();
        assert!(!pair.goal.variables(&table).contains(&i));
    }

    #[test]
    fn calls_without_recursive_mode_are_a_typed_error_with_a_span() {
        let (program, outcome, _) = setup(RECURSIVE_EXAMPLE_SOURCE, false);
        let error = outcome.expect_err("call transitions need recursive mode");
        match &error {
            ConstraintError::CallsRequireRecursiveMode {
                label,
                callee,
                line,
            } => {
                assert_eq!(callee, "rsum");
                // The span points at the call statement in the source.
                assert_eq!(*line, program.line_of_label(*label));
                assert!(line.is_some());
            }
            other => panic!("expected CallsRequireRecursiveMode, got {other:?}"),
        }
        assert!(error.to_string().contains("recursive"));
        assert!(error.to_string().contains("rsum"));
    }

    #[test]
    fn guard_with_disjunction_produces_multiple_pairs() {
        let source = r#"
            f(x) {
                while x >= 0 || x <= 0 - 10 do
                    x := x - 1
                od;
                return x
            }
        "#;
        let (_, pairs, _) = setup_ok(source, false);
        // The loop guard has 2 disjuncts; its negation (a conjunction) has 1.
        // Transitions: guard-true (2 disjuncts), guard-false (1), body
        // update, return, plus initiation = 2 + 1 + 1 + 1 + 1 = 6.
        assert_eq!(pairs.len(), 6);
    }
}
