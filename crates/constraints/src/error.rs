//! Typed errors of constraint generation.

use std::fmt;

use polyinv_lang::Label;

/// A structural problem detected while generating constraint pairs.
///
/// Constraint generation used to abort the process on these; they are now
/// ordinary errors so that long-running services built on `polyinv-api` can
/// surface them as diagnostics instead of dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// The program contains a function-call transition but the recursive
    /// variants of the algorithm (Steps 1.a, 2.a and 2.b) were not enabled,
    /// so the callee has no post-condition template to abstract the call
    /// with.
    CallsRequireRecursiveMode {
        /// The label of the call statement.
        label: Label,
        /// The callee's name.
        callee: String,
        /// 1-based source line of the call statement, when known.
        line: Option<usize>,
    },
    /// A call transition references a callee the program does not define.
    /// The resolver rejects such programs, so reaching this variant means
    /// the caller assembled inconsistent inputs (e.g. a CFG from a different
    /// program).
    UnknownCallee {
        /// The label of the call statement.
        label: Label,
        /// The unresolved callee name.
        callee: String,
    },
    /// A call transition's callee has no post-condition template even though
    /// recursive mode is on — the template set was built for a different
    /// program or with `recursive = false`.
    MissingPostcondition {
        /// The label of the call statement.
        label: Label,
        /// The callee missing a post-condition template.
        callee: String,
    },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::CallsRequireRecursiveMode {
                label,
                callee,
                line,
            } => {
                write!(f, "call to `{callee}` at {label}")?;
                if let Some(line) = line {
                    write!(f, " (line {line})")?;
                }
                write!(
                    f,
                    " requires recursive synthesis (Steps 1.a/2.a/2.b); \
                     the pairs were generated with recursive mode off"
                )
            }
            ConstraintError::UnknownCallee { label, callee } => {
                write!(
                    f,
                    "call at {label} references undefined function `{callee}`"
                )
            }
            ConstraintError::MissingPostcondition { label, callee } => write!(
                f,
                "call to `{callee}` at {label} has no post-condition template; \
                 the template set was not built for recursive synthesis"
            ),
        }
    }
}

impl std::error::Error for ConstraintError {}

impl ConstraintError {
    /// The 1-based source line associated with the error, when known.
    pub fn line(&self) -> Option<usize> {
        match self {
            ConstraintError::CallsRequireRecursiveMode { line, .. } => *line,
            _ => None,
        }
    }

    /// The label the error is anchored at.
    pub fn label(&self) -> Label {
        match self {
            ConstraintError::CallsRequireRecursiveMode { label, .. }
            | ConstraintError::UnknownCallee { label, .. }
            | ConstraintError::MissingPostcondition { label, .. } => *label,
        }
    }
}
