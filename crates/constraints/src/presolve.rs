//! Affine presolve over quadratic systems (DESIGN.md §10).
//!
//! The Putinar translation hands Step 4 systems roughly 7× the size the
//! paper reports: the mass of the surplus is bookkeeping — rows that pin
//! one unknown outright (`a·x + b = 0`), tie two unknowns affinely
//! (`a·x + b·y + c = 0`), or *define* an unknown that occurs nowhere else
//! in a quadratic position (`a·w + rest = 0` with `rest` quadratic in the
//! surviving unknowns), plus rows that become trivial or duplicated once
//! those unknowns are substituted away. This module runs the standard
//! presolve fixpoint over a [`QuadraticSystem`]:
//!
//! 1. **Pin seeding** — externally fixed unknowns (weak synthesis pins the
//!    template rows of its target assertions) enter the substitution map
//!    first, generalizing the partial evaluation the solver bridge used to
//!    perform.
//! 2. **Elimination** — every *equality* row with a linear occurrence of an
//!    eliminable unknown `w` solves for it: `w := -(rest)/a`. When `rest`
//!    is affine this is the powdr-style affine propagation; when `rest` is
//!    quadratic the rule additionally requires that `w` occurs in no
//!    quadratic term anywhere (so substitution keeps every row quadratic)
//!    and that `rest` stays under a fill-in cap. A zero sum of squares
//!    (`Σ cᵢ·uᵢ² = 0`, all `cᵢ` of one sign) fixes each `uᵢ := 0`.
//!    Unknowns appearing in PSD blocks are never eliminated by rows (the
//!    block bookkeeping must keep addressing them).
//! 3. **Simplification** — substituted rows that become `0 = 0` or `c ≥ 0`
//!    (with `c ≥ 0`) are dropped; rows that become constant *false* are
//!    kept, so an infeasible system stays visibly infeasible. Remaining
//!    rows are normalized to leading coefficient `1` (equalities) or
//!    leading magnitude `1` (inequalities, positive scaling only) and
//!    deduplicated by hashing the canonical [`QuadExpr`]s.
//! 4. **Fixpoint** — substitution exposes new eliminable rows, so the
//!    passes repeat until a round changes nothing. Every productive round
//!    removes at least one unknown or one row, so termination needs no
//!    fuel; a round cap is kept as a safety net.
//!
//! The [`PresolveMap`] records every elimination in *canonical* form — the
//! right-hand side of each elimination references only surviving unknowns —
//! so a solver assignment over the reduced system back-substitutes to the
//! original unknown space in a single order-independent pass. Templates,
//! invariant extraction and the exact-rational re-check all keep seeing the
//! original registry.
//!
//! All derived coefficients are computed with checked rational arithmetic;
//! a round that would overflow (or would push a row past degree two) is
//! rolled back and its candidate unknowns are left free — presolve degrades
//! gracefully to a weaker reduction, never to a wrong one.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use polyinv_arith::Rational;
use polyinv_poly::{QuadExpr, UnknownId};

use crate::system::QuadraticSystem;

/// Tuning knobs of the presolve fixpoint.
#[derive(Debug, Clone)]
pub struct PresolveOptions {
    /// Safety cap on fixpoint rounds. The fixpoint terminates on its own
    /// (each productive round removes an unknown or a row); the cap only
    /// bounds the work if that argument is ever violated by a future rule.
    pub max_rounds: usize,
    /// Maximum number of terms a solved right-hand side may carry.
    /// Substituting an `m`-term definition into `k` occurrences costs
    /// `m·k` fill-in terms; the cap keeps the reduced system sparse.
    pub max_fill_terms: usize,
}

impl Default for PresolveOptions {
    fn default() -> Self {
        PresolveOptions {
            max_rounds: 64,
            max_fill_terms: 8,
        }
    }
}

/// One recorded elimination. Right-hand sides reference only unknowns that
/// survive presolve (canonical form), so back-substitution is a single pass
/// in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Elimination {
    /// `unknown := value`.
    Fixed {
        /// The eliminated unknown.
        unknown: UnknownId,
        /// Its exact value.
        value: Rational,
    },
    /// `unknown := coeff · other + offset` with `other` surviving.
    Affine {
        /// The eliminated unknown.
        unknown: UnknownId,
        /// The coefficient of `other`.
        coeff: Rational,
        /// The surviving unknown the elimination references.
        other: UnknownId,
        /// The constant offset.
        offset: Rational,
    },
    /// `unknown := expr` for a general (at most quadratic) right-hand side
    /// over surviving unknowns.
    Solved {
        /// The eliminated unknown.
        unknown: UnknownId,
        /// Its defining expression.
        expr: QuadExpr,
    },
    /// One half of a difference-of-squares pair `c·a² − c·b²` whose row
    /// became vacuous: `a² − b² = v` has the rational solution
    /// `a = (v+1)/2`, `b = (v−1)/2`, and because the pair occurs nowhere
    /// else the signs are free, so `unknown := |(value ± 1)/2|` (the
    /// absolute value also satisfies any dropped `unknown ≥ 0` bound).
    FreeSquare {
        /// The eliminated unknown.
        unknown: UnknownId,
        /// The expression whose value is `v = a² − b²`, over surviving
        /// unknowns.
        value: QuadExpr,
        /// `true` for the `a = (v+1)/2` half, `false` for `b = (v−1)/2`.
        plus: bool,
    },
    /// Sign normalization of a *surviving* unknown whose one-sided sign
    /// bound was dropped because every other occurrence is a square:
    /// `unknown := |unknown|` (or `−|unknown|` when `negative`). Not an
    /// elimination — the unknown stays a solver variable.
    Rectified {
        /// The normalized unknown.
        unknown: UnknownId,
        /// `true` when the dropped bound forced the unknown non-positive.
        negative: bool,
    },
}

impl Elimination {
    /// The unknown this elimination removes (or, for
    /// [`Elimination::Rectified`], normalizes).
    pub fn unknown(&self) -> UnknownId {
        match *self {
            Elimination::Fixed { unknown, .. }
            | Elimination::Affine { unknown, .. }
            | Elimination::Solved { unknown, .. }
            | Elimination::FreeSquare { unknown, .. }
            | Elimination::Rectified { unknown, .. } => unknown,
        }
    }

    /// `true` when the entry removes the unknown from the solver's search
    /// space (everything except [`Elimination::Rectified`]).
    pub fn eliminates(&self) -> bool {
        !matches!(self, Elimination::Rectified { .. })
    }
}

/// The record of every elimination performed by [`presolve`], in canonical
/// form (right-hand sides reference surviving unknowns only).
#[derive(Debug, Clone, Default)]
pub struct PresolveMap {
    eliminations: Vec<Elimination>,
}

impl PresolveMap {
    /// Number of eliminated unknowns.
    pub fn len(&self) -> usize {
        self.eliminations.len()
    }

    /// `true` when nothing was eliminated.
    pub fn is_empty(&self) -> bool {
        self.eliminations.is_empty()
    }

    /// Iterates over the recorded eliminations (ordered by unknown index).
    pub fn iter(&self) -> impl Iterator<Item = &Elimination> {
        self.eliminations.iter()
    }

    /// `mask[i] == true` iff unknown `i` was eliminated (rectified unknowns
    /// survive and stay unmasked).
    pub fn eliminated_mask(&self, num_unknowns: usize) -> Vec<bool> {
        let mut mask = vec![false; num_unknowns];
        for elim in &self.eliminations {
            let index = elim.unknown().index();
            if elim.eliminates() && index < num_unknowns {
                mask[index] = true;
            }
        }
        mask
    }

    /// Rewrites the eliminated entries of a full-length assignment from the
    /// surviving entries. Because the map is canonical, one pass suffices.
    pub fn back_substitute(&self, assignment: &mut [f64]) {
        for elim in &self.eliminations {
            let value = match elim {
                Elimination::Fixed { value, .. } => value.to_f64(),
                Elimination::Affine {
                    coeff,
                    other,
                    offset,
                    ..
                } => {
                    let base = assignment.get(other.index()).copied().unwrap_or(0.0);
                    coeff.to_f64() * base + offset.to_f64()
                }
                Elimination::Solved { expr, .. } => {
                    expr.eval(|u| assignment.get(u.index()).copied().unwrap_or(0.0))
                }
                Elimination::FreeSquare { value, plus, .. } => {
                    let v = value.eval(|u| assignment.get(u.index()).copied().unwrap_or(0.0));
                    let shift = if *plus { 1.0 } else { -1.0 };
                    ((v + shift) / 2.0).abs()
                }
                Elimination::Rectified { unknown, negative } => {
                    let current = assignment.get(unknown.index()).copied().unwrap_or(0.0);
                    if *negative {
                        -current.abs()
                    } else {
                        current.abs()
                    }
                }
            };
            if let Some(slot) = assignment.get_mut(elim.unknown().index()) {
                *slot = value;
            }
        }
    }

    /// Exact-rational counterpart of [`back_substitute`](Self::back_substitute).
    /// Returns `false` if checked arithmetic overflowed (the assignment is
    /// left partially rewritten and must not be trusted).
    pub fn back_substitute_rational(&self, values: &mut [Rational]) -> bool {
        for elim in &self.eliminations {
            let value_of =
                |u: UnknownId| -> Rational { values.get(u.index()).copied().unwrap_or_default() };
            let value = match elim {
                Elimination::Fixed { value, .. } => *value,
                Elimination::Affine {
                    coeff,
                    other,
                    offset,
                    ..
                } => {
                    let Ok(product) = coeff.checked_mul(&value_of(*other)) else {
                        return false;
                    };
                    let Ok(value) = product.checked_add(offset) else {
                        return false;
                    };
                    value
                }
                Elimination::Solved { expr, .. } => {
                    let Some(acc) = eval_expr_checked(expr, &value_of) else {
                        return false;
                    };
                    acc
                }
                Elimination::FreeSquare { value, plus, .. } => {
                    let Some(v) = eval_expr_checked(value, &value_of) else {
                        return false;
                    };
                    let shift = if *plus {
                        Rational::one()
                    } else {
                        -Rational::one()
                    };
                    let Ok(sum) = v.checked_add(&shift) else {
                        return false;
                    };
                    let Ok(half) = sum.checked_mul(&Rational::new(1, 2)) else {
                        return false;
                    };
                    half.abs()
                }
                Elimination::Rectified { unknown, negative } => {
                    let current = value_of(*unknown).abs();
                    if *negative {
                        -current
                    } else {
                        current
                    }
                }
            };
            if let Some(slot) = values.get_mut(elim.unknown().index()) {
                *slot = value;
            }
        }
        true
    }
}

/// Evaluates `expr` at the given unknown values with checked rational
/// arithmetic; `None` on overflow.
fn eval_expr_checked(
    expr: &QuadExpr,
    value_of: &impl Fn(UnknownId) -> Rational,
) -> Option<Rational> {
    let mut acc = expr.constant_part();
    for &(u, c) in expr.linear_terms() {
        let term = c.checked_mul(&value_of(u)).ok()?;
        acc = acc.checked_add(&term).ok()?;
    }
    for &((a, b), c) in expr.quadratic_terms() {
        let product = value_of(a).checked_mul(&value_of(b)).ok()?;
        let term = c.checked_mul(&product).ok()?;
        acc = acc.checked_add(&term).ok()?;
    }
    Some(acc)
}

/// Size and composition statistics of one presolve run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PresolveStats {
    /// `|S|` of the input system.
    pub size_before: usize,
    /// `|S|` of the presolved system.
    pub size_after: usize,
    /// Unknowns of the input system (the full registry).
    pub unknowns_before: usize,
    /// Unknowns left free after elimination.
    pub unknowns_after: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Unknowns eliminated by externally supplied pins.
    pub pinned: usize,
    /// Unknowns fixed to a constant by rows.
    pub fixed: usize,
    /// Unknowns eliminated in favor of one other unknown
    /// (`x := a·y + b`).
    pub affine: usize,
    /// Unknowns eliminated with a general quadratic definition.
    pub solved: usize,
    /// Unknowns eliminated as halves of free difference-of-squares pairs.
    pub freed: usize,
    /// Surviving unknowns whose one-sided sign bound was dropped in favor
    /// of a `|·|` normalization in the back-substitution map.
    pub rectified: usize,
    /// Rows dropped as trivially satisfied.
    pub dropped: usize,
    /// Rows dropped as syntactic duplicates (after normalization).
    pub duplicates: usize,
    /// Wall-clock seconds spent in the fixpoint.
    pub seconds: f64,
}

impl PresolveStats {
    /// Fraction of rows removed, in `[0, 1]`.
    pub fn size_reduction(&self) -> f64 {
        if self.size_before == 0 {
            0.0
        } else {
            1.0 - self.size_after as f64 / self.size_before as f64
        }
    }
}

/// The output of [`presolve`]: the reduced system (same registry, reduced
/// rows), the elimination record, and the run statistics.
#[derive(Debug, Clone)]
pub struct PresolvedSystem {
    /// The reduced system. Its registry is the *original* registry — the
    /// eliminated unknowns simply no longer occur in any row.
    pub system: QuadraticSystem,
    /// Every elimination, in canonical back-substitutable form.
    pub map: PresolveMap,
    /// Run statistics.
    pub stats: PresolveStats,
}

/// Runs the presolve fixpoint. `pinned` maps externally fixed unknowns to
/// their exact values; the pins are honored unconditionally (short of
/// checked-arithmetic overflow — see [`PresolvedSystem`]) and recorded in
/// the returned map like any other elimination. Callers must re-apply any
/// pin that does *not* appear in the returned map (the overflow fallback).
pub fn presolve(
    system: &QuadraticSystem,
    pinned: &HashMap<UnknownId, Rational>,
    options: &PresolveOptions,
) -> PresolvedSystem {
    let start = Instant::now();
    let mut stats = PresolveStats {
        size_before: system.size(),
        unknowns_before: system.num_unknowns(),
        ..PresolveStats::default()
    };

    // Unknowns addressed by PSD blocks must survive: the block constraints
    // reference them positionally and cannot express substituted
    // combinations. The set also absorbs unknowns whose elimination was
    // rolled back (overflow / degree guard).
    let mut blocked: HashSet<UnknownId> = HashSet::new();
    for block in &system.psd_blocks {
        blocked.extend(block.entries.iter().copied());
    }

    let mut eqs = system.equalities.clone();
    let mut ineqs = system.inequalities.clone();
    // The substitution map: eliminated unknown → its definition. Kept
    // canonical (definitions reference live unknowns only) by the
    // substitution pass, which rewrites definitions like rows.
    let mut subs: HashMap<UnknownId, QuadExpr> = HashMap::new();
    // Unknowns eliminated since the last substitution pass.
    let mut dirty: HashSet<UnknownId> = HashSet::new();
    // Halves of free difference-of-squares pairs: (unknown, v, plus) with
    // the pair value `v = a² − b²` over surviving unknowns (rewritten like
    // the substitution map to stay canonical).
    let mut free_squares: Vec<(UnknownId, QuadExpr, bool)> = Vec::new();
    // Sign-normalized surviving unknowns: (unknown, negative).
    let mut rectified: Vec<(UnknownId, bool)> = Vec::new();

    for (&unknown, &value) in pinned {
        subs.insert(unknown, QuadExpr::constant(value));
        dirty.insert(unknown);
    }

    loop {
        // (a) Substitute pending eliminations through every row and every
        // stored definition, to a local fixpoint, with rollback: if checked
        // arithmetic overflows or a product would exceed degree two, the
        // round's candidates stay free instead of producing wrong rows.
        if !dirty.is_empty() {
            let snapshot_eqs = eqs.clone();
            let snapshot_ineqs = ineqs.clone();
            let snapshot_subs = subs.clone();
            let snapshot_free = free_squares.clone();
            if substitute_to_fixpoint(&mut eqs, &mut ineqs, &mut subs, &mut free_squares).is_none()
            {
                eqs = snapshot_eqs;
                ineqs = snapshot_ineqs;
                subs = snapshot_subs;
                free_squares = snapshot_free;
                for unknown in dirty.drain() {
                    subs.remove(&unknown);
                    blocked.insert(unknown);
                }
                continue;
            }
            dirty.clear();
        }

        // (b) Drop trivial rows, normalize scaling, dedup.
        simplify_rows(&mut eqs, true, &mut stats);
        simplify_rows(&mut ineqs, false, &mut stats);

        if stats.rounds >= options.max_rounds {
            break;
        }
        stats.rounds += 1;

        // (c0) Known products: a row `α·u·v + γ = 0` pins the *monomial*
        // `u·v` to a constant. Substituting that value through every other
        // row adds a multiple of the (kept) defining row — a solution-set-
        // preserving rewrite that strips quadratic occurrences of `u` and
        // `v`, often unlocking solved-variable eliminations below.
        let mut found = propagate_known_products(&mut eqs, &mut ineqs);

        // (c1) WLOG rules on square-only unknowns: drop one-sided sign
        // bounds in favor of a `|·|` normalization, and collapse rows made
        // vacuous by an exclusive difference-of-squares pair.
        found |= rectify_and_free_squares(
            &mut eqs,
            &mut ineqs,
            &subs,
            &mut free_squares,
            &mut rectified,
            &blocked,
        );

        // (c) Harvest new eliminations from equality rows. Rows that
        // mention an unknown eliminated earlier in this same scan are
        // skipped; the next round sees them substituted.
        let mut quad_occurring = quadratically_occurring(&eqs, &ineqs, &subs, &free_squares);
        for expr in &eqs {
            if expr.unknowns().any(|u| dirty.contains(&u)) {
                continue;
            }
            for (unknown, rhs) in
                candidate_eliminations(expr, &blocked, &subs, &quad_occurring, options)
            {
                if subs.contains_key(&unknown) || dirty.contains(&unknown) {
                    continue;
                }
                for (a, b) in rhs.quadratic_terms().iter().map(|&(pair, _)| pair) {
                    quad_occurring.insert(a);
                    quad_occurring.insert(b);
                }
                subs.insert(unknown, rhs);
                dirty.insert(unknown);
                found = true;
            }
        }
        if !found && dirty.is_empty() {
            break;
        }
    }

    let eliminated = subs.len() + free_squares.len();
    let mut eliminations: Vec<Elimination> = subs
        .iter()
        .map(|(&unknown, rhs)| classify(unknown, rhs))
        .collect();
    for (unknown, value, plus) in free_squares {
        eliminations.push(Elimination::FreeSquare {
            unknown,
            value,
            plus,
        });
    }
    eliminations.sort_by_key(|e| e.unknown().index());
    for elim in &eliminations {
        if pinned.contains_key(&elim.unknown()) {
            stats.pinned += 1;
        } else {
            match elim {
                Elimination::Fixed { .. } => stats.fixed += 1,
                Elimination::Affine { .. } => stats.affine += 1,
                Elimination::Solved { .. } => stats.solved += 1,
                Elimination::FreeSquare { .. } => stats.freed += 1,
                Elimination::Rectified { .. } => {}
            }
        }
    }
    // Rectifications act on surviving unknowns; apply them after every
    // value-producing entry so the `|·|` sees the final values.
    rectified.sort_by_key(|&(unknown, _)| unknown.index());
    stats.rectified = rectified.len();
    for (unknown, negative) in rectified {
        eliminations.push(Elimination::Rectified { unknown, negative });
    }

    let mut reduced = QuadraticSystem::new(system.registry.clone());
    reduced.equalities = eqs;
    reduced.inequalities = ineqs;
    reduced.psd_blocks = system.psd_blocks.clone();
    reduced.num_pairs = system.num_pairs;

    stats.size_after = reduced.size();
    stats.unknowns_after = stats.unknowns_before - eliminated;
    stats.seconds = start.elapsed().as_secs_f64();

    PresolvedSystem {
        system: reduced,
        map: PresolveMap { eliminations },
        stats,
    }
}

/// Presents a definition as the most specific [`Elimination`] variant.
fn classify(unknown: UnknownId, rhs: &QuadExpr) -> Elimination {
    if rhs.linear_terms().is_empty() && rhs.quadratic_terms().is_empty() {
        return Elimination::Fixed {
            unknown,
            value: rhs.constant_part(),
        };
    }
    if rhs.quadratic_terms().is_empty() && rhs.linear_terms().len() == 1 {
        let (other, coeff) = rhs.linear_terms()[0];
        return Elimination::Affine {
            unknown,
            coeff,
            other,
            offset: rhs.constant_part(),
        };
    }
    Elimination::Solved {
        unknown,
        expr: rhs.clone(),
    }
}

/// Finds every equality of the shape `α·u·v + γ = 0` (one quadratic term,
/// no linear terms) and replaces the monomial `u·v` by its implied constant
/// value `-γ/α` in every *other* row. The defining row is kept, so the
/// rewrite is exactly "add a multiple of an equality" and preserves the
/// solution set. Returns `true` if any row changed.
fn propagate_known_products(eqs: &mut [QuadExpr], ineqs: &mut [QuadExpr]) -> bool {
    let mut products: HashMap<(UnknownId, UnknownId), (usize, Rational)> = HashMap::new();
    for (index, expr) in eqs.iter().enumerate() {
        if !expr.linear_terms().is_empty() || expr.quadratic_terms().len() != 1 {
            continue;
        }
        let (pair, coeff) = expr.quadratic_terms()[0];
        let Ok(value) = expr.constant_part().checked_div(&-coeff) else {
            continue;
        };
        products.entry(pair).or_insert((index, value));
    }
    if products.is_empty() {
        return false;
    }
    let mut changed = false;
    for (index, row) in eqs.iter_mut().enumerate() {
        if let Some(rewritten) = apply_known_products(row, &products, Some(index)) {
            *row = rewritten;
            changed = true;
        }
    }
    for row in ineqs.iter_mut() {
        if let Some(rewritten) = apply_known_products(row, &products, None) {
            *row = rewritten;
            changed = true;
        }
    }
    changed
}

/// Rewrites one row against the known-product table; `defining` is the
/// row's own index among the equalities (its own definition is skipped).
/// Returns `None` when nothing applies. Terms whose rewrite would overflow
/// are left in place.
fn apply_known_products(
    expr: &QuadExpr,
    products: &HashMap<(UnknownId, UnknownId), (usize, Rational)>,
    defining: Option<usize>,
) -> Option<QuadExpr> {
    let applies = |pair: &(UnknownId, UnknownId)| {
        products
            .get(pair)
            .is_some_and(|&(index, _)| defining != Some(index))
    };
    if !expr.quadratic_terms().iter().any(|(pair, _)| applies(pair)) {
        return None;
    }
    let mut out = QuadExpr::constant(expr.constant_part());
    for &(u, c) in expr.linear_terms() {
        out.add_linear(u, c);
    }
    let mut changed = false;
    for &((a, b), c) in expr.quadratic_terms() {
        match products.get(&(a, b)) {
            Some(&(index, value)) if defining != Some(index) => match c.checked_mul(&value) {
                Ok(term) => {
                    out.add_constant(term);
                    changed = true;
                }
                Err(_) => out.add_quadratic(a, b, c),
            },
            _ => out.add_quadratic(a, b, c),
        }
    }
    changed.then_some(out)
}

/// Applies the two WLOG rules for unknowns that occur only in squares:
///
/// * **Rectification**: an inequality `c·u + d ≥ 0` with `d ≥ 0` whose `u`
///   occurs nowhere else linearly and in no mixed product is only a sign
///   normalization — every other constraint is invariant under `u → −u`.
///   The row is dropped and the map records `u := ±|u|`.
/// * **Free pairs**: an equality containing `c·a² − c·b²` where `a` and
///   `b` occur nowhere else imposes no constraint at all (`a² − b² = v`
///   has the rational solution `a = (v+1)/2`, `b = (v−1)/2` for every
///   `v`), so the row is dropped and both unknowns are eliminated.
///
/// Fired rows are zeroed in place; the next simplification pass drops and
/// counts them. Returns `true` if anything fired.
fn rectify_and_free_squares(
    eqs: &mut [QuadExpr],
    ineqs: &mut [QuadExpr],
    subs: &HashMap<UnknownId, QuadExpr>,
    free_squares: &mut Vec<(UnknownId, QuadExpr, bool)>,
    rectified: &mut Vec<(UnknownId, bool)>,
    blocked: &HashSet<UnknownId>,
) -> bool {
    let mut linear_occ: HashMap<UnknownId, usize> = HashMap::new();
    let mut square_occ: HashMap<UnknownId, usize> = HashMap::new();
    let mut mixed: HashSet<UnknownId> = HashSet::new();
    for expr in eqs
        .iter()
        .chain(ineqs.iter())
        .chain(subs.values())
        .chain(free_squares.iter().map(|(_, value, _)| value))
    {
        for &(u, _) in expr.linear_terms() {
            *linear_occ.entry(u).or_default() += 1;
        }
        for &((a, b), _) in expr.quadratic_terms() {
            if a == b {
                *square_occ.entry(a).or_default() += 1;
            } else {
                mixed.insert(a);
                mixed.insert(b);
            }
        }
    }
    let already: HashSet<UnknownId> = rectified.iter().map(|&(u, _)| u).collect();
    let mut changed = false;

    for row in ineqs.iter_mut() {
        if !row.quadratic_terms().is_empty() || row.linear_terms().len() != 1 {
            continue;
        }
        if row.constant_part().is_negative() {
            continue;
        }
        let (unknown, coeff) = row.linear_terms()[0];
        if blocked.contains(&unknown)
            || subs.contains_key(&unknown)
            || already.contains(&unknown)
            || linear_occ.get(&unknown) != Some(&1)
            || mixed.contains(&unknown)
        {
            continue;
        }
        rectified.push((unknown, coeff.is_negative()));
        *row = QuadExpr::zero();
        changed = true;
    }

    for row in eqs.iter_mut() {
        let eligible = |u: UnknownId| {
            !blocked.contains(&u)
                && !subs.contains_key(&u)
                && square_occ.get(&u) == Some(&1)
                && !linear_occ.contains_key(&u)
                && !mixed.contains(&u)
        };
        let squares: Vec<(UnknownId, Rational)> = row
            .quadratic_terms()
            .iter()
            .filter(|&&((a, b), _)| a == b)
            .map(|&((a, _), c)| (a, c))
            .collect();
        let mut pair = None;
        'search: for (i, &(a, ca)) in squares.iter().enumerate() {
            if !eligible(a) {
                continue;
            }
            for &(b, cb) in &squares[i + 1..] {
                if cb == -ca && eligible(b) {
                    pair = Some((a, b, ca));
                    break 'search;
                }
            }
        }
        let Some((plus, minus, coeff)) = pair else {
            continue;
        };
        let Some(value) = free_pair_value(row, plus, minus, coeff) else {
            continue;
        };
        free_squares.push((plus, value.clone(), true));
        free_squares.push((minus, value, false));
        *row = QuadExpr::zero();
        changed = true;
        // The occurrence tables are now stale for the unknowns of the
        // dropped row's remaining terms; stale counts only ever overcount,
        // so the rest of this pass is merely conservative.
    }
    changed
}

/// `row = coeff·plus² − coeff·minus² + rest = 0` ⇒ the pair value
/// `v = plus² − minus² = rest / (−coeff)`. `None` on overflow.
fn free_pair_value(
    row: &QuadExpr,
    plus: UnknownId,
    minus: UnknownId,
    coeff: Rational,
) -> Option<QuadExpr> {
    let divisor = -coeff;
    let mut value = QuadExpr::constant(row.constant_part().checked_div(&divisor).ok()?);
    for &(u, c) in row.linear_terms() {
        value.add_linear(u, c.checked_div(&divisor).ok()?);
    }
    for &((x, y), c) in row.quadratic_terms() {
        if (x, y) == (plus, plus) || (x, y) == (minus, minus) {
            continue;
        }
        value.add_quadratic(x, y, c.checked_div(&divisor).ok()?);
    }
    Some(value)
}

/// All unknowns occurring in a quadratic term of any row or any stored
/// definition. Eliminating such an unknown with a *quadratic* definition
/// would push a product past degree two.
fn quadratically_occurring(
    eqs: &[QuadExpr],
    ineqs: &[QuadExpr],
    subs: &HashMap<UnknownId, QuadExpr>,
    free_squares: &[(UnknownId, QuadExpr, bool)],
) -> HashSet<UnknownId> {
    let mut set = HashSet::new();
    for expr in eqs
        .iter()
        .chain(ineqs)
        .chain(subs.values())
        .chain(free_squares.iter().map(|(_, value, _)| value))
    {
        for &((a, b), _) in expr.quadratic_terms() {
            set.insert(a);
            set.insert(b);
        }
    }
    set
}

/// The eliminations one equality row yields: either a zero sum of squares
/// (fixing every square's unknown to zero) or a single solved variable.
fn candidate_eliminations(
    expr: &QuadExpr,
    blocked: &HashSet<UnknownId>,
    subs: &HashMap<UnknownId, QuadExpr>,
    quad_occurring: &HashSet<UnknownId>,
    options: &PresolveOptions,
) -> Vec<(UnknownId, QuadExpr)> {
    // Zero sum of squares: Σ cᵢ·uᵢ² = 0 with every cᵢ of one sign forces
    // every uᵢ to zero (blocked unknowns simply stay; fixing the others is
    // still implied).
    if expr.linear_terms().is_empty()
        && expr.constant_part().is_zero()
        && !expr.quadratic_terms().is_empty()
        && expr.quadratic_terms().iter().all(|&((a, b), _)| a == b)
    {
        let positive = expr.quadratic_terms().iter().all(|(_, c)| !c.is_negative());
        let negative = expr.quadratic_terms().iter().all(|(_, c)| c.is_negative());
        if positive || negative {
            return expr
                .quadratic_terms()
                .iter()
                .filter(|&&((a, _), _)| !blocked.contains(&a) && !subs.contains_key(&a))
                .map(|&((a, _), _)| (a, QuadExpr::zero()))
                .collect();
        }
    }

    // Solved variable: pick one linear occurrence `a·w` and define
    // `w := -(expr - a·w)/a`. Prefer the later-allocated unknown
    // (multiplier/certificate variables) so the template coefficients stay
    // the surviving representatives.
    let quadratic_rhs = !expr.quadratic_terms().is_empty();
    let mut candidates: Vec<(UnknownId, Rational)> = expr
        .linear_terms()
        .iter()
        .copied()
        .filter(|(u, _)| !blocked.contains(u) && !subs.contains_key(u))
        .filter(|(u, _)| !quadratic_rhs || !quad_occurring.contains(u))
        .collect();
    candidates.sort_by_key(|&(u, _)| std::cmp::Reverse(u.index()));
    for (unknown, coeff) in candidates {
        let Some(rhs) = solved_rhs(expr, unknown, coeff) else {
            continue;
        };
        if rhs.linear_terms().len() + rhs.quadratic_terms().len() > options.max_fill_terms {
            continue;
        }
        return vec![(unknown, rhs)];
    }
    Vec::new()
}

/// `expr = a·unknown + rest = 0  ⇒  unknown := rest / (-a)`.
/// `None` on overflow.
fn solved_rhs(expr: &QuadExpr, unknown: UnknownId, coeff: Rational) -> Option<QuadExpr> {
    let divisor = -coeff;
    let mut rhs = QuadExpr::constant(expr.constant_part().checked_div(&divisor).ok()?);
    for &(u, c) in expr.linear_terms() {
        if u == unknown {
            continue;
        }
        rhs.add_linear(u, c.checked_div(&divisor).ok()?);
    }
    for &((a, b), c) in expr.quadratic_terms() {
        rhs.add_quadratic(a, b, c.checked_div(&divisor).ok()?);
    }
    Some(rhs)
}

/// Substitutes the map through rows and stored definitions until nothing
/// mentions an eliminated unknown. Terminates because same-round
/// definitions only reference later-eliminated unknowns (the reference
/// relation is acyclic). `None` on overflow or a degree-two violation; the
/// structures may then be partially rewritten and must be discarded.
fn substitute_to_fixpoint(
    eqs: &mut [QuadExpr],
    ineqs: &mut [QuadExpr],
    subs: &mut HashMap<UnknownId, QuadExpr>,
    free_squares: &mut [(UnknownId, QuadExpr, bool)],
) -> Option<()> {
    loop {
        let mut changed = false;
        for row in eqs.iter_mut().chain(ineqs.iter_mut()) {
            if row.unknowns().any(|u| subs.contains_key(&u)) {
                *row = substitute_expr(row, subs)?;
                changed = true;
            }
        }
        for (_, value, _) in free_squares.iter_mut() {
            if value.unknowns().any(|u| subs.contains_key(&u)) {
                *value = substitute_expr(value, subs)?;
                changed = true;
            }
        }
        let stale: Vec<UnknownId> = subs
            .iter()
            .filter(|(_, rhs)| rhs.unknowns().any(|u| subs.contains_key(&u)))
            .map(|(&u, _)| u)
            .collect();
        for unknown in stale {
            let rhs = subs.get(&unknown).expect("present").clone();
            let rewritten = substitute_expr(&rhs, subs)?;
            subs.insert(unknown, rewritten);
            changed = true;
        }
        if !changed {
            return Some(());
        }
    }
}

/// Applies the substitution map to one expression. `None` on overflow or
/// when a product of definitions would exceed degree two.
fn substitute_expr(expr: &QuadExpr, subs: &HashMap<UnknownId, QuadExpr>) -> Option<QuadExpr> {
    let mut out = QuadExpr::constant(expr.constant_part());
    for &(u, c) in expr.linear_terms() {
        match subs.get(&u) {
            None => out.add_linear(u, c),
            Some(rhs) => add_scaled_checked(&mut out, rhs, c)?,
        }
    }
    for &((a, b), c) in expr.quadratic_terms() {
        add_product_checked(&mut out, c, subs.get(&a), a, subs.get(&b), b)?;
    }
    Some(out)
}

/// `out += factor · rhs` with checked arithmetic.
fn add_scaled_checked(out: &mut QuadExpr, rhs: &QuadExpr, factor: Rational) -> Option<()> {
    out.add_constant(factor.checked_mul(&rhs.constant_part()).ok()?);
    for &(u, c) in rhs.linear_terms() {
        out.add_linear(u, factor.checked_mul(&c).ok()?);
    }
    for &((x, y), c) in rhs.quadratic_terms() {
        out.add_quadratic(x, y, factor.checked_mul(&c).ok()?);
    }
    Some(())
}

/// `out += c · A · B` where each factor is either a live unknown or its
/// definition. `None` on overflow or when the product would exceed degree
/// two.
fn add_product_checked(
    out: &mut QuadExpr,
    c: Rational,
    ra: Option<&QuadExpr>,
    a: UnknownId,
    rb: Option<&QuadExpr>,
    b: UnknownId,
) -> Option<()> {
    let degree = |rhs: &QuadExpr| {
        if !rhs.quadratic_terms().is_empty() {
            2
        } else if !rhs.linear_terms().is_empty() {
            1
        } else {
            0
        }
    };
    match (ra, rb) {
        (None, None) => {
            out.add_quadratic(a, b, c);
        }
        (Some(ra), None) | (None, Some(ra)) => {
            // The free factor contributes degree one.
            if degree(ra) > 1 {
                return None;
            }
            let free = if rb.is_none() { b } else { a };
            out.add_linear(free, c.checked_mul(&ra.constant_part()).ok()?);
            for &(x, k) in ra.linear_terms() {
                out.add_quadratic(x, free, c.checked_mul(&k).ok()?);
            }
        }
        (Some(ra), Some(rb)) => {
            if degree(ra) + degree(rb) > 2 {
                return None;
            }
            let (ca, cb) = (ra.constant_part(), rb.constant_part());
            out.add_constant(c.checked_mul(&ca).ok()?.checked_mul(&cb).ok()?);
            for &(x, k) in ra.linear_terms() {
                out.add_linear(x, c.checked_mul(&k).ok()?.checked_mul(&cb).ok()?);
            }
            for &(y, k) in rb.linear_terms() {
                out.add_linear(y, c.checked_mul(&k).ok()?.checked_mul(&ca).ok()?);
            }
            for &(x, kx) in ra.linear_terms() {
                for &(y, ky) in rb.linear_terms() {
                    out.add_quadratic(x, y, c.checked_mul(&kx).ok()?.checked_mul(&ky).ok()?);
                }
            }
            for &((x, y), k) in ra.quadratic_terms() {
                out.add_quadratic(x, y, c.checked_mul(&k).ok()?.checked_mul(&cb).ok()?);
            }
            for &((x, y), k) in rb.quadratic_terms() {
                out.add_quadratic(x, y, c.checked_mul(&k).ok()?.checked_mul(&ca).ok()?);
            }
        }
    }
    Some(())
}

/// Drops trivially satisfied rows, normalizes scaling and removes
/// syntactic duplicates. Constant-*false* rows are kept untouched so an
/// infeasible system remains visibly infeasible (mirroring the solver
/// bridge's partial evaluation).
fn simplify_rows(rows: &mut Vec<QuadExpr>, equality: bool, stats: &mut PresolveStats) {
    let mut seen: HashSet<QuadExpr> = HashSet::with_capacity(rows.len());
    let mut kept: Vec<QuadExpr> = Vec::with_capacity(rows.len());
    for expr in rows.drain(..) {
        if expr.linear_terms().is_empty() && expr.quadratic_terms().is_empty() {
            let constant = expr.constant_part();
            let satisfied = if equality {
                constant.is_zero()
            } else {
                !constant.is_negative()
            };
            if satisfied {
                stats.dropped += 1;
            } else {
                kept.push(expr);
            }
            continue;
        }
        let normalized = normalize_row(expr, equality);
        if seen.insert(normalized.clone()) {
            kept.push(normalized);
        } else {
            stats.duplicates += 1;
        }
    }
    *rows = kept;
}

/// Scales a non-constant row to leading coefficient `1` (the coefficient of
/// the smallest linear term, else the smallest quadratic term). Equalities
/// may flip sign; inequalities only admit positive scaling, so the leading
/// coefficient becomes `±1`. Rows whose scaling would overflow are kept
/// unscaled (dedup is merely weaker for them).
fn normalize_row(expr: QuadExpr, equality: bool) -> QuadExpr {
    let leading = expr
        .linear_terms()
        .first()
        .map(|&(_, c)| c)
        .or_else(|| expr.quadratic_terms().first().map(|&(_, c)| c));
    let Some(leading) = leading else {
        return expr;
    };
    let factor = if equality { leading } else { leading.abs() };
    if factor == Rational::one() {
        return expr;
    }
    match checked_unscale(&expr, factor) {
        Some(scaled) => scaled,
        None => expr,
    }
}

/// `expr / factor` with checked arithmetic; `None` on overflow.
fn checked_unscale(expr: &QuadExpr, factor: Rational) -> Option<QuadExpr> {
    let mut out = QuadExpr::constant(expr.constant_part().checked_div(&factor).ok()?);
    for &(u, c) in expr.linear_terms() {
        out.add_linear(u, c.checked_div(&factor).ok()?);
    }
    for &((a, b), c) in expr.quadratic_terms() {
        out.add_quadratic(a, b, c.checked_div(&factor).ok()?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PsdBlock;
    use crate::unknowns::{UnknownKind, UnknownRegistry};

    fn affine(terms: &[(UnknownId, i64)], constant: i64) -> QuadExpr {
        let mut expr = QuadExpr::constant(Rational::from_int(constant));
        for &(u, c) in terms {
            expr.add_linear(u, Rational::from_int(c));
        }
        expr
    }

    fn fresh_system(num_witnesses: usize) -> (QuadraticSystem, Vec<UnknownId>) {
        let mut registry = UnknownRegistry::new();
        let ids: Vec<UnknownId> = (0..num_witnesses)
            .map(|pair| registry.fresh(UnknownKind::Witness { pair }))
            .collect();
        (QuadraticSystem::new(registry), ids)
    }

    #[test]
    fn single_unknown_rows_fix_and_propagate() {
        let (mut system, ids) = fresh_system(3);
        let [x, y, z] = [ids[0], ids[1], ids[2]];
        // 2x - 4 = 0, x + y - 5 = 0, x·z + y - z - 5 = 0.
        system.equalities.push(affine(&[(x, 2)], -4));
        system.equalities.push(affine(&[(x, 1), (y, 1)], -5));
        let mut quad = affine(&[(y, 1), (z, -1)], -5);
        quad.add_quadratic(x, z, Rational::one());
        system.equalities.push(quad);

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        // x := 2, then y := 3, then the quadratic row becomes 2z + 3 - z - 5
        // = z - 2 = 0, so z := 2 and everything collapses.
        assert_eq!(
            result.stats.fixed + result.stats.affine + result.stats.solved,
            3
        );
        assert_eq!(result.system.size(), 0);
        assert_eq!(result.stats.unknowns_after, 0);

        let mut assignment = vec![0.0; 3];
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment, vec![2.0, 3.0, 2.0]);
        assert_eq!(system.max_violation(&assignment), 0.0);
    }

    #[test]
    fn two_unknown_rows_eliminate_the_later_unknown() {
        let (mut system, ids) = fresh_system(2);
        let [x, y] = [ids[0], ids[1]];
        // 2y - 4x + 6 = 0  ⇒  y := 2x - 3; plus an inequality over y.
        system.equalities.push(affine(&[(x, -4), (y, 2)], 6));
        system.inequalities.push(affine(&[(y, 1)], -1));

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.stats.affine, 1);
        assert_eq!(result.system.equalities.len(), 0);
        // The inequality y - 1 ≥ 0 became 2x - 4 ≥ 0, normalized to x - 2.
        assert_eq!(result.system.inequalities.len(), 1);
        let ineq = &result.system.inequalities[0];
        assert_eq!(ineq.linear_terms(), &[(x, Rational::one())]);
        assert_eq!(ineq.constant_part(), Rational::from_int(-2));

        let mut assignment = vec![0.0; 2];
        assignment[x.index()] = 5.0;
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment[y.index()], 7.0);
        assert_eq!(system.max_violation(&assignment), 0.0);
    }

    #[test]
    fn pins_seed_the_fixpoint() {
        let (mut system, ids) = fresh_system(2);
        let [s, t] = [ids[0], ids[1]];
        // s·t - 6 = 0 is quadratic until the pin s := 2 arrives.
        let mut row = QuadExpr::constant(Rational::from_int(-6));
        row.add_quadratic(s, t, Rational::one());
        system.equalities.push(row);

        let pins: HashMap<UnknownId, Rational> = [(s, Rational::from_int(2))].into_iter().collect();
        let result = presolve(&system, &pins, &PresolveOptions::default());
        assert_eq!(result.stats.pinned, 1);
        assert_eq!(result.stats.fixed, 1);
        assert_eq!(result.system.size(), 0);
        let mut assignment = vec![0.0; 2];
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment, vec![2.0, 3.0]);
    }

    #[test]
    fn solved_variables_substitute_quadratic_definitions() {
        let (mut system, ids) = fresh_system(3);
        let [x, y, w] = [ids[0], ids[1], ids[2]];
        // x·y - 2w + 6 = 0 defines w := (x·y + 6)/2 (w occurs nowhere
        // quadratically); 3w + x - 3 = 0 then becomes quadratic in x, y.
        let mut def = affine(&[(w, -2)], 6);
        def.add_quadratic(x, y, Rational::one());
        system.equalities.push(def);
        system.equalities.push(affine(&[(w, 3), (x, 1)], -3));

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.stats.solved, 1);
        assert_eq!(result.system.equalities.len(), 1);
        // The surviving row is (3/2)·x·y + x + 9 - 3 = 0 normalized to
        // leading coefficient one: x + (3/2)·x·y + 6 = 0 → x + ... /1.
        let row = &result.system.equalities[0];
        assert!(!row.quadratic_terms().is_empty());

        // Back-substitution: pick x = 2, y = -4 ⇒ w = (−8 + 6)/2 = −1.
        let mut assignment = vec![0.0; 3];
        assignment[x.index()] = 2.0;
        assignment[y.index()] = -4.0;
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment[w.index()], -1.0);
        // The defining row of the original system is exactly satisfied.
        let lookup = |u: UnknownId| assignment[u.index()];
        assert_eq!(system.equalities[0].eval(lookup), 0.0);
    }

    #[test]
    fn zero_sum_of_squares_fixes_all_unknowns() {
        let (mut system, ids) = fresh_system(3);
        let [x, y, z] = [ids[0], ids[1], ids[2]];
        // x² + 2y² = 0 forces x = y = 0; z² - 4 = 0 stays (two roots).
        let mut squares = QuadExpr::zero();
        squares.add_quadratic(x, x, Rational::one());
        squares.add_quadratic(y, y, Rational::from_int(2));
        system.equalities.push(squares);
        let mut two_roots = QuadExpr::constant(Rational::from_int(-4));
        two_roots.add_quadratic(z, z, Rational::one());
        system.equalities.push(two_roots);

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.stats.fixed, 2);
        assert_eq!(result.system.equalities.len(), 1);
        let mut assignment = vec![7.0; 3];
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment[x.index()], 0.0);
        assert_eq!(assignment[y.index()], 0.0);
        assert_eq!(assignment[z.index()], 7.0);
    }

    #[test]
    fn trivial_rows_drop_but_infeasible_markers_stay() {
        let (mut system, ids) = fresh_system(1);
        let x = ids[0];
        system.equalities.push(affine(&[(x, 1)], -1)); // x := 1
        system.equalities.push(affine(&[(x, 2)], -2)); // becomes 0 = 0
        system.equalities.push(affine(&[(x, 1)], 1)); // becomes 2 = 0: false
        system.inequalities.push(affine(&[(x, 1)], 0)); // becomes 1 ≥ 0
        system.inequalities.push(affine(&[(x, -1)], 0)); // becomes -1 ≥ 0: false

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        let is_constant =
            |e: &QuadExpr| e.linear_terms().is_empty() && e.quadratic_terms().is_empty();
        assert_eq!(result.system.equalities.len(), 1);
        assert!(is_constant(&result.system.equalities[0]));
        assert_eq!(result.system.inequalities.len(), 1);
        assert!(is_constant(&result.system.inequalities[0]));
        assert!(result.stats.dropped >= 2);
    }

    #[test]
    fn duplicate_rows_merge_up_to_scaling() {
        let (mut system, ids) = fresh_system(2);
        let [x, y] = [ids[0], ids[1]];
        let mut quad = QuadExpr::zero();
        quad.add_quadratic(x, x, Rational::one());
        quad.add_quadratic(y, y, Rational::from_int(-3));
        quad.add_linear(y, Rational::from_int(2));
        quad.add_linear(x, Rational::from_int(5));
        system.equalities.push(quad.clone());
        system.equalities.push(quad.scale(Rational::from_int(-3)));
        system.inequalities.push(quad.clone());
        system.inequalities.push(quad.scale(Rational::from_int(5)));
        // Negative scaling must NOT merge inequalities.
        system.inequalities.push(quad.scale(Rational::from_int(-1)));

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.system.equalities.len(), 1);
        assert_eq!(result.system.inequalities.len(), 2);
        assert_eq!(result.stats.duplicates, 2);
    }

    #[test]
    fn psd_entries_are_protected_from_row_eliminations() {
        let (mut system, ids) = fresh_system(2);
        let [g, x] = [ids[0], ids[1]];
        system.psd_blocks.push(PsdBlock {
            pair: 0,
            multiplier: 0,
            dim: 1,
            entries: vec![g],
        });
        // g - x = 0 may only eliminate x (g is a PSD entry).
        system.equalities.push(affine(&[(g, 1), (x, -1)], 0));
        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.map.len(), 1);
        assert_eq!(result.map.iter().next().unwrap().unknown(), x);

        // A single-unknown row pinning a PSD entry is left alone.
        let (mut system2, ids2) = fresh_system(1);
        system2.psd_blocks.push(PsdBlock {
            pair: 0,
            multiplier: 0,
            dim: 1,
            entries: vec![ids2[0]],
        });
        system2.equalities.push(affine(&[(ids2[0], 1)], -1));
        let result2 = presolve(&system2, &HashMap::new(), &PresolveOptions::default());
        assert!(result2.map.is_empty());
        assert_eq!(result2.system.equalities.len(), 1);
    }

    #[test]
    fn back_substitution_is_exact_in_rationals() {
        let (mut system, ids) = fresh_system(3);
        let [x, y, z] = [ids[0], ids[1], ids[2]];
        // 3x - y = 0 and 2y - z - 1 = 0: the earliest unknown x survives,
        // y := 3x and z := 6x - 1.
        system.equalities.push(affine(&[(x, 3), (y, -1)], 0));
        system.equalities.push(affine(&[(y, 2), (z, -1)], -1));
        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.map.len(), 2);
        assert_eq!(result.system.size(), 0);

        let mut values = vec![Rational::zero(); 3];
        values[x.index()] = Rational::new(1, 3);
        assert!(result.map.back_substitute_rational(&mut values));
        assert_eq!(values[y.index()], Rational::one());
        assert_eq!(values[z.index()], Rational::one());
        for eq in &system.equalities {
            let residual = eq.eval_rational(|u| values[u.index()]);
            assert!(residual.is_zero());
        }
    }

    #[test]
    fn chained_eliminations_stay_canonical() {
        let (mut system, ids) = fresh_system(4);
        let [a, b, c, d] = [ids[0], ids[1], ids[2], ids[3]];
        // d = c + 1, c = b + 1, b = a + 1: the map must express b, c and d
        // directly in terms of the surviving a.
        system.equalities.push(affine(&[(d, 1), (c, -1)], -1));
        system.equalities.push(affine(&[(c, 1), (b, -1)], -1));
        system.equalities.push(affine(&[(b, 1), (a, -1)], -1));
        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.map.len(), 3);
        for elim in result.map.iter() {
            match elim {
                Elimination::Affine { other, .. } => assert_eq!(*other, a),
                _ => panic!("expected affine chains, got {elim:?}"),
            }
        }
        let mut assignment = vec![0.0; 4];
        assignment[a.index()] = 10.0;
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment, vec![10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn normalization_produces_leading_one_rows() {
        let (mut system, ids) = fresh_system(2);
        let [x, y] = [ids[0], ids[1]];
        // A row whose unknowns cannot be eliminated (both occur
        // quadratically): -2x + 4y + 8x·y + 4x² + 4y² + 6 = 0.
        let mut row = affine(&[(x, -2), (y, 4)], 6);
        row.add_quadratic(x, y, Rational::from_int(8));
        row.add_quadratic(x, x, Rational::from_int(4));
        row.add_quadratic(y, y, Rational::from_int(4));
        system.equalities.push(row);
        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        let eq = &result.system.equalities[0];
        assert_eq!(eq.linear_terms()[0], (x, Rational::one()));
        assert_eq!(eq.linear_terms()[1], (y, Rational::from_int(-2)));
        assert_eq!(eq.constant_part(), Rational::from_int(-3));
        assert_eq!(eq.quadratic_terms()[0], ((x, x), Rational::from_int(-2)));
    }

    #[test]
    fn sign_bounds_over_square_only_unknowns_rectify() {
        let (mut system, ids) = fresh_system(2);
        let [u, v] = [ids[0], ids[1]];
        // u occurs squared in an equality and linearly only in the bound
        // 2u + 3 ≥ 0, so the bound drops and u is rectified non-negative;
        // v's bound −3v + 6 ≥ 0 rectifies it non-positive the same way.
        let mut eq = QuadExpr::constant(Rational::from_int(-4));
        eq.add_quadratic(u, u, Rational::one());
        eq.add_quadratic(v, v, Rational::one());
        system.equalities.push(eq);
        system.inequalities.push(affine(&[(u, 2)], 3));
        system.inequalities.push(affine(&[(v, -3)], 6));

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.stats.rectified, 2);
        assert!(result.system.inequalities.is_empty());
        assert_eq!(result.system.equalities.len(), 1);
        // Rectified unknowns stay solver variables.
        assert_eq!(result.stats.unknowns_after, 2);
        let mask = result.map.eliminated_mask(2);
        assert_eq!(mask, vec![false, false]);

        // A solution of the reduced system with the "wrong" signs is folded
        // onto the dropped bounds exactly: squares are sign-invariant.
        let mut assignment = vec![0.0; 2];
        assignment[u.index()] = -2.0;
        assignment[v.index()] = 0.0;
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment, vec![2.0, 0.0]);
        assert_eq!(system.max_violation(&assignment), 0.0);

        let mut values = vec![Rational::zero(); 2];
        values[u.index()] = Rational::from_int(-2);
        assert!(result.map.back_substitute_rational(&mut values));
        assert_eq!(values[u.index()], Rational::from_int(2));
        assert!(!values[v.index()].is_negative());
    }

    #[test]
    fn exclusive_difference_of_squares_pairs_are_freed() {
        let (mut system, ids) = fresh_system(3);
        let [a, b, x] = [ids[0], ids[1], ids[2]];
        // a² − b² − x + 1 = 0 with a, b occurring nowhere else: the pair is
        // freely solvable as a = |(v+1)/2|, b = |(v−1)/2| for v = x − 1, so
        // the row drops and both unknowns leave the search space. x survives
        // because it also occurs squared in x² − 9 = 0.
        let mut pair_row = affine(&[(x, -1)], 1);
        pair_row.add_quadratic(a, a, Rational::one());
        pair_row.add_quadratic(b, b, -Rational::one());
        system.equalities.push(pair_row);
        let mut keep_x = QuadExpr::constant(Rational::from_int(-9));
        keep_x.add_quadratic(x, x, Rational::one());
        system.equalities.push(keep_x);

        let result = presolve(&system, &HashMap::new(), &PresolveOptions::default());
        assert_eq!(result.stats.freed, 2);
        assert_eq!(result.system.equalities.len(), 1);
        assert_eq!(result.stats.unknowns_after, 1);
        let mask = result.map.eliminated_mask(3);
        assert_eq!(mask, vec![true, true, false]);

        // x = 3 ⇒ v = 2 ⇒ a = 3/2, b = 1/2; the original row is exact.
        let mut assignment = vec![0.0; 3];
        assignment[x.index()] = 3.0;
        result.map.back_substitute(&mut assignment);
        assert_eq!(assignment[a.index()], 1.5);
        assert_eq!(assignment[b.index()], 0.5);
        assert_eq!(system.max_violation(&assignment), 0.0);

        // Exact in rationals too, including for v < 0 (x = −3 ⇒ v = −4 ⇒
        // a = |−3/2| = 3/2, b = |−5/2| = 5/2, and a² − b² = 9/4 − 25/4 = −4).
        let mut values = vec![Rational::zero(); 3];
        values[x.index()] = Rational::from_int(-3);
        assert!(result.map.back_substitute_rational(&mut values));
        assert_eq!(values[a.index()], Rational::new(3, 2));
        assert_eq!(values[b.index()], Rational::new(5, 2));
        let diff = values[a.index()] * values[a.index()] - values[b.index()] * values[b.index()];
        assert_eq!(diff, values[x.index()] - Rational::one());
    }

    #[test]
    fn running_example_presolve_round_trips() {
        use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;
        let program = polyinv_lang::parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = polyinv_lang::Precondition::from_program(&program);
        let generated =
            crate::generate(&program, &pre, &crate::SynthesisOptions::default()).unwrap();
        let result = presolve(
            &generated.system,
            &HashMap::new(),
            &PresolveOptions::default(),
        );
        assert!(result.stats.size_after <= result.stats.size_before);
        assert!(result.stats.unknowns_after <= result.stats.unknowns_before);
        assert!(result.stats.rounds >= 1);

        // Any assignment extended through the map satisfies the surviving
        // reduced rows exactly as it satisfies their original counterparts;
        // the defining rows are exactly satisfied by construction.
        let mut assignment = vec![0.37; generated.system.num_unknowns()];
        result.map.back_substitute(&mut assignment);
        let reduced_violation = result.system.max_violation(&assignment);
        let original_violation = generated.system.max_violation(&assignment);
        assert!(
            original_violation <= 1e4 * reduced_violation + 1e-6,
            "original {original_violation} vs reduced {reduced_violation}"
        );
    }
}
