//! Property suite for the affine presolve engine: presolve is
//! solution-preserving in both directions.
//!
//! Systems are generated *around* a known rational witness `x*`: every
//! equality is built to vanish at `x*` and every inequality to be
//! non-negative there, so the generated system is feasible by construction
//! and the witness is available for exact-rational checks. The properties:
//!
//! * **forward** — the witness (restricted to surviving unknowns) satisfies
//!   the presolved system exactly: presolve never cuts a solution away;
//! * **backward** — back-substituting the surviving part of the witness
//!   yields a full assignment that satisfies the *original* system exactly
//!   (this exercises Fixed/Affine/Solved reconstruction, the FreeSquare
//!   rational repair and the Rectified sign normalization), in rational and
//!   in f64 arithmetic;
//! * **monotone** — presolve never grows `|S|` or the unknown count, and
//!   its stats agree with the surviving system;
//! * **idempotent** — presolve reaches a fixpoint: a second pass finds
//!   nothing left to do.

use std::collections::HashMap;

use polyinv_arith::Rational;
use polyinv_constraints::{
    presolve, PresolveOptions, QuadraticSystem, UnknownKind, UnknownRegistry,
};
use polyinv_poly::{QuadExpr, UnknownId};
use proptest::prelude::*;

/// One generated row: terms plus how to anchor it at the witness. Unknown
/// indices are raw draws reduced modulo the system's unknown count when the
/// plan is materialized.
#[derive(Debug, Clone)]
enum RowPlan {
    /// `expr - expr(x*) = 0` — an equality satisfied at the witness.
    Equality {
        linear: Vec<(usize, i64)>,
        quad: Vec<(usize, usize, i64)>,
    },
    /// `expr - expr(x*) + slack ≥ 0` with `slack ≥ 0`.
    Inequality {
        linear: Vec<(usize, i64)>,
        quad: Vec<(usize, usize, i64)>,
        slack: i64,
    },
    /// `c·u - c·u* + slack ≥ 0` — a one-sided sign bound (fodder for the
    /// rectification rule).
    SignBound {
        unknown: usize,
        coeff: i64,
        slack: i64,
    },
    /// `u² - (u*)² = 0` — a square row (fodder for zero-sum-of-squares and
    /// the difference-of-squares pairing).
    Square { unknown: usize },
}

#[derive(Debug, Clone)]
struct SystemPlan {
    /// Witness values, as (numerator, denominator ∈ {1, 2}).
    witness: Vec<(i64, i64)>,
    rows: Vec<RowPlan>,
    /// Pin unknown 0 to its witness value (exercises the pin seeding).
    pin_first: bool,
}

fn arb_row() -> impl Strategy<Value = RowPlan> {
    (
        0i64..9,
        prop::collection::vec((0usize..16, -3i64..4), 1..4),
        prop::collection::vec((0usize..16, 0usize..16, -2i64..3), 0..3),
        0i64..3,
    )
        .prop_map(|(kind, linear, quad, slack)| {
            let (anchor, coeff) = linear[0];
            match kind {
                0..=2 => RowPlan::Equality { linear, quad },
                3..=5 => RowPlan::Inequality {
                    linear,
                    quad,
                    slack,
                },
                6..=7 => RowPlan::SignBound {
                    unknown: anchor,
                    coeff: if coeff == 0 { 1 } else { coeff },
                    slack,
                },
                _ => RowPlan::Square { unknown: anchor },
            }
        })
}

fn arb_plan() -> impl Strategy<Value = SystemPlan> {
    (
        prop::collection::vec((-3i64..4, 0i64..2), 2..7),
        prop::collection::vec(arb_row(), 2..11),
        0i64..2,
    )
        .prop_map(|(witness, rows, pin)| SystemPlan {
            witness: witness
                .into_iter()
                .map(|(numer, denom_tag)| (numer, denom_tag + 1))
                .collect(),
            rows,
            pin_first: pin == 1,
        })
}

/// Materializes a plan: the system, the witness, and the pins.
fn build(plan: &SystemPlan) -> (QuadraticSystem, Vec<Rational>, HashMap<UnknownId, Rational>) {
    let n = plan.witness.len();
    let mut registry = UnknownRegistry::new();
    let ids: Vec<UnknownId> = (0..n)
        .map(|pair| registry.fresh(UnknownKind::Witness { pair }))
        .collect();
    let witness: Vec<Rational> = plan
        .witness
        .iter()
        .map(|&(numer, denom)| Rational::new(i128::from(numer), i128::from(denom)))
        .collect();
    let at_witness = |expr: &QuadExpr| expr.eval_rational(|u: UnknownId| witness[u.index()]);

    let mut system = QuadraticSystem::new(registry);
    for row in &plan.rows {
        match row {
            RowPlan::Equality { linear, quad } | RowPlan::Inequality { linear, quad, .. } => {
                let mut expr = QuadExpr::zero();
                for &(u, c) in linear {
                    expr.add_linear(ids[u % n], Rational::from_int(c));
                }
                for &(a, b, c) in quad {
                    expr.add_quadratic(ids[a % n], ids[b % n], Rational::from_int(c));
                }
                expr.add_constant(-at_witness(&expr));
                match row {
                    RowPlan::Equality { .. } => system.equalities.push(expr),
                    RowPlan::Inequality { slack, .. } => {
                        expr.add_constant(Rational::from_int(*slack));
                        system.inequalities.push(expr);
                    }
                    _ => unreachable!(),
                }
            }
            RowPlan::SignBound {
                unknown,
                coeff,
                slack,
            } => {
                let mut expr = QuadExpr::zero();
                expr.add_linear(ids[unknown % n], Rational::from_int(*coeff));
                let anchor = at_witness(&expr);
                expr.add_constant(Rational::from_int(*slack) - anchor);
                system.inequalities.push(expr);
            }
            RowPlan::Square { unknown } => {
                let mut expr = QuadExpr::zero();
                let id = ids[unknown % n];
                expr.add_quadratic(id, id, Rational::one());
                expr.add_constant(-at_witness(&expr));
                system.equalities.push(expr);
            }
        }
    }
    let mut pins = HashMap::new();
    if plan.pin_first {
        pins.insert(ids[0], witness[0]);
    }
    (system, witness, pins)
}

/// Exact satisfaction check: equalities vanish, inequalities non-negative.
fn check_exactly(label: &str, system: &QuadraticSystem, values: &[Rational]) {
    let lookup = |u: UnknownId| values[u.index()];
    for (index, row) in system.equalities.iter().enumerate() {
        let value = row.eval_rational(lookup);
        assert!(
            value.is_zero(),
            "{label}: equality {index} evaluates to {value}"
        );
    }
    for (index, row) in system.inequalities.iter().enumerate() {
        let value = row.eval_rational(lookup);
        assert!(
            !value.is_negative(),
            "{label}: inequality {index} evaluates to {value}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn presolve_preserves_solutions_in_both_directions(plan in arb_plan()) {
        let (system, witness, pins) = build(&plan);
        let result = presolve(&system, &pins, &PresolveOptions::default());

        // Monotone, and the stats agree with the surviving system.
        prop_assert!(result.stats.size_after <= result.stats.size_before);
        prop_assert!(result.stats.unknowns_after <= result.stats.unknowns_before);
        prop_assert_eq!(result.stats.size_after, result.system.size());

        // Forward: the witness satisfies the presolved system exactly
        // (presolved rows reference surviving unknowns only, so the full
        // witness vector can be used as-is).
        check_exactly("witness lost by presolve", &result.system, &witness);

        // Backward (rational): wipe the eliminated entries, back-substitute
        // from the surviving part of the witness, and re-check the ORIGINAL
        // system exactly.
        let mask = result.map.eliminated_mask(witness.len());
        let mut reconstructed = witness.clone();
        for (index, eliminated) in mask.iter().enumerate() {
            if *eliminated {
                reconstructed[index] = Rational::from_int(91); // poison
            }
        }
        prop_assert!(
            result.map.back_substitute_rational(&mut reconstructed),
            "rational back-substitution overflowed"
        );
        check_exactly(
            "back-substituted assignment violates the original system",
            &system,
            &reconstructed,
        );

        // Backward (f64): the pipeline's actual path. Witness coordinates
        // are halves, so the arithmetic is exact in doubles too.
        let mut floats: Vec<f64> = witness.iter().map(Rational::to_f64).collect();
        for (index, eliminated) in mask.iter().enumerate() {
            if *eliminated {
                floats[index] = 91.0;
            }
        }
        result.map.back_substitute(&mut floats);
        let violation = system.max_violation(&floats);
        prop_assert!(
            violation <= 1e-9,
            "f64 back-substitution violates the original system by {violation:.3e}"
        );

        // Near-idempotent: a second pass eliminates no unknowns and finds
        // no duplicates. (It may still *rectify* — the first pass
        // conservatively refuses to sign-normalize unknowns referenced by
        // recorded elimination right-hand sides, and a fresh pass on the
        // reduced system has no such references to respect.)
        let again = presolve(&result.system, &HashMap::new(), &PresolveOptions::default());
        prop_assert!(
            again.map.iter().all(|entry| !entry.eliminates()),
            "second presolve pass still eliminated unknowns: {:?}",
            again.stats
        );
        prop_assert_eq!(again.stats.duplicates, 0);
    }
}
