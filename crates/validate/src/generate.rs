//! Grammar-based generation of well-formed `.poly` programs.
//!
//! The generator walks the statement grammar of Figure 5 with a seeded
//! generator and a fuel budget, producing source text that is well-formed
//! *by construction*:
//!
//! * every function carries a `@pre(...)` spec constraining its parameters
//!   to the non-negative range the input sampler draws from, so seeded
//!   interpreter runs are valid in the paper's sense;
//! * while loops follow the bounded-counter pattern (`k := 0; while k <= c
//!   do …; k := k + 1 od` with the counter never reassigned inside the
//!   body), so every generated program terminates on every oracle;
//! * recursive helpers follow the structurally-decreasing pattern of the
//!   paper's Figure 4 (`h(n) = … h(n - 1) …` guarded by `n <= 0`), and
//!   call arguments are freshly-assigned non-negative constants, so the
//!   callee's pre-condition always holds;
//! * non-determinism (`if *` branches and havoc assignments) is generated
//!   only when the configuration allows it.
//!
//! Generated programs are size-bounded by [`GenConfig`] and deterministic
//! per seed. They round-trip through the real parser — the crate's property
//! tests pin `parse(print(parse(source)))` as a fixpoint.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Bounds and feature switches of the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of parameters of the main function (at least 1).
    pub max_params: usize,
    /// Maximum statements generated per block.
    pub max_block_stmts: usize,
    /// Maximum nesting depth of compound statements.
    pub max_depth: usize,
    /// Generate a recursive helper function (and calls to it).
    pub recursion: bool,
    /// Generate non-deterministic branches and havoc assignments.
    pub nondet: bool,
    /// Upper bound of the bounded-loop counters.
    pub loop_bound: i64,
    /// Magnitude bound of generated integer coefficients.
    pub max_coeff: i64,
    /// Total statement budget of the main function body.
    pub stmt_budget: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_params: 2,
            max_block_stmts: 3,
            max_depth: 2,
            recursion: true,
            nondet: true,
            loop_bound: 4,
            max_coeff: 3,
            stmt_budget: 12,
        }
    }
}

/// One generated program: the source text plus the shape decisions made,
/// so harnesses can report what a failing seed looked like.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The seed the program was generated from.
    pub seed: u64,
    /// The `.poly` source text.
    pub source: String,
    /// Whether a recursive helper function was generated.
    pub recursive: bool,
    /// Number of parameters of the main function.
    pub params: usize,
}

/// Generates one well-formed program from a seed.
pub fn generate_program(seed: u64, config: &GenConfig) -> GeneratedProgram {
    let mut gen = Generator {
        rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed)),
        config: config.clone(),
        locals: Vec::new(),
        counters: Vec::new(),
        next_local: 0,
        next_counter: 0,
        next_arg: 0,
        fuel: config.stmt_budget,
        helper: None,
    };
    let source = gen.program();
    GeneratedProgram {
        seed,
        source,
        recursive: gen.helper.is_some(),
        params: gen.params(),
    }
}

struct Generator {
    rng: StdRng,
    config: GenConfig,
    /// Assignable variables in scope of the main function (params + locals).
    locals: Vec<String>,
    /// Loop counters: readable but never reassigned by generated statements.
    counters: Vec<String>,
    next_local: usize,
    next_counter: usize,
    next_arg: usize,
    fuel: usize,
    helper: Option<String>,
}

impl Generator {
    fn params(&self) -> usize {
        self.locals
            .iter()
            .filter(|name| name.starts_with('p'))
            .count()
    }

    fn chance(&mut self, numer: u32, denom: u32) -> bool {
        self.rng.random_range(0..denom) < numer
    }

    fn coeff(&mut self) -> i64 {
        // Non-zero coefficient in [-max_coeff, max_coeff].
        let bound = self.config.max_coeff.max(1);
        let magnitude = self.rng.random_range(1..bound + 1);
        if self.chance(1, 2) {
            -magnitude
        } else {
            magnitude
        }
    }

    fn small_const(&mut self) -> i64 {
        self.rng.random_range(0..4i64)
    }

    /// A readable variable (params, locals or counters).
    fn readable(&mut self) -> String {
        let pool_len = self.locals.len() + self.counters.len();
        let index = self.rng.random_range(0..pool_len);
        if index < self.locals.len() {
            self.locals[index].clone()
        } else {
            self.counters[index - self.locals.len()].clone()
        }
    }

    /// An assignment target: an existing local/param or a fresh local.
    fn target(&mut self) -> String {
        if self.chance(1, 3) || self.locals.is_empty() {
            let name = format!("v{}", self.next_local);
            self.next_local += 1;
            self.locals.push(name.clone());
            name
        } else {
            let index = self.rng.random_range(0..self.locals.len());
            self.locals[index].clone()
        }
    }

    /// A random polynomial expression over the in-scope variables:
    /// 1–3 terms of degree ≤ 2 with small integer coefficients.
    fn poly_expr(&mut self) -> String {
        let terms = self.rng.random_range(1..4usize);
        let mut out = String::new();
        for index in 0..terms {
            let coeff = self.coeff();
            let degree = self.rng.random_range(0..3u32);
            let mut factors: Vec<String> = Vec::new();
            for _ in 0..degree {
                factors.push(self.readable());
            }
            let term = if factors.is_empty() {
                coeff.abs().to_string()
            } else if coeff.abs() == 1 {
                factors.join("*")
            } else {
                format!("{}*{}", coeff.abs(), factors.join("*"))
            };
            if index == 0 {
                if coeff < 0 {
                    out.push_str("0 - ");
                }
                out.push_str(&term);
            } else {
                out.push_str(if coeff < 0 { " - " } else { " + " });
                out.push_str(&term);
            }
        }
        out
    }

    /// A comparison between a linear expression and a small constant.
    fn comparison(&mut self) -> String {
        let variable = self.readable();
        let op = ["<", "<=", ">", ">="][self.rng.random_range(0..4usize)];
        let bound = self.small_const();
        if self.chance(1, 3) {
            let other = self.readable();
            format!("{variable} + {other} {op} {bound}")
        } else {
            format!("{variable} {op} {bound}")
        }
    }

    fn program(&mut self) -> String {
        let mut out = String::new();
        let params: Vec<String> = (0..self.rng.random_range(1..self.config.max_params.max(1) + 1))
            .map(|index| format!("p{index}"))
            .collect();
        self.locals = params.clone();

        let has_helper = self.config.recursion && self.chance(1, 2);
        if has_helper {
            self.helper = Some("hrec".to_string());
        }

        let _ = writeln!(out, "fmain({}) {{", params.join(", "));
        let pre: Vec<String> = params
            .iter()
            .map(|p| format!("{p} >= 0 && {p} <= 8"))
            .collect();
        let _ = writeln!(out, "    @pre({});", pre.join(" && "));
        // A couple of initialized locals seed the variable pool.
        for _ in 0..self.rng.random_range(1..3usize) {
            let name = self.target();
            let value = self.small_const();
            let _ = writeln!(out, "    {name} := {value};");
        }
        let body = self.block(0);
        out.push_str(&body);
        let result = self.readable();
        let _ = writeln!(out, "    return {result}");
        out.push_str("}\n");

        if has_helper {
            out.push('\n');
            out.push_str(&self.helper_function());
        }
        out
    }

    /// A structurally-decreasing recursive helper in the shape of Figure 4.
    fn helper_function(&mut self) -> String {
        let base = self.small_const();
        let bump = if self.chance(1, 2) {
            "n".to_string()
        } else {
            format!("{}*n", self.rng.random_range(1..3i64))
        };
        let ret = match self.rng.random_range(0..3u32) {
            0 => "r".to_string(),
            1 => "r + n".to_string(),
            _ => format!("r + {}", self.small_const()),
        };
        let nondet_bump = if self.config.nondet && self.chance(1, 2) {
            format!(
                "        if * then\n            r := r + {bump}\n        else\n            skip\n        fi;\n"
            )
        } else {
            String::new()
        };
        format!(
            "hrec(n) {{\n    @pre(n >= 0);\n    if n <= 0 then\n        return {base}\n    else\n        m := n - 1;\n        r := hrec(m);\n{nondet_bump}        return {ret}\n    fi\n}}\n"
        )
    }

    /// A statement block at nesting depth `depth`, `;`-separated with one
    /// statement per line, indented for readability. Always non-empty.
    fn block(&mut self, depth: usize) -> String {
        let indent = "    ".repeat(depth + 1);
        let count = self
            .rng
            .random_range(1..self.config.max_block_stmts.max(1) + 1);
        let mut out = String::new();
        let mut emitted = 0;
        for _ in 0..count {
            if self.fuel == 0 && emitted > 0 {
                break;
            }
            self.fuel = self.fuel.saturating_sub(1);
            let stmt = self.statement(depth);
            out.push_str(&indent);
            out.push_str(&stmt);
            out.push_str(";\n");
            emitted += 1;
        }
        if emitted == 0 {
            out.push_str(&indent);
            out.push_str("skip;\n");
        }
        out
    }

    fn statement(&mut self, depth: usize) -> String {
        let deep = depth >= self.config.max_depth || self.fuel < 2;
        loop {
            match self.rng.random_range(0..8u32) {
                // Polynomial assignment: the workhorse.
                0..=2 => {
                    let target = self.target();
                    let expr = self.poly_expr();
                    return format!("{target} := {expr}");
                }
                3 if self.config.nondet => {
                    let target = self.target();
                    return format!("{target} := *");
                }
                4 if !deep => {
                    let indent = "    ".repeat(depth + 1);
                    let head = if self.config.nondet && self.chance(1, 2) {
                        "if * then\n".to_string()
                    } else {
                        format!("if {} then\n", self.comparison())
                    };
                    let then_branch = self.block(depth + 1);
                    let else_branch = self.block(depth + 1);
                    return format!("{head}{then_branch}{indent}else\n{else_branch}{indent}fi");
                }
                5 if !deep => {
                    // Bounded loop: fresh counter, never reassigned inside.
                    let counter = format!("k{}", self.next_counter);
                    self.next_counter += 1;
                    let bound = self.rng.random_range(1..self.config.loop_bound.max(1) + 1);
                    self.counters.push(counter.clone());
                    let body = self.block(depth + 1);
                    let indent = "    ".repeat(depth + 1);
                    return format!(
                        "{counter} := 0;\n{indent}while {counter} <= {bound} do\n{body}{indent}    {counter} := {counter} + 1\n{indent}od"
                    );
                }
                6 if self.helper.is_some() => {
                    // Call with a freshly-assigned non-negative argument, so
                    // the callee's `@pre(n >= 0)` holds on every run.
                    let arg = format!("a{}", self.next_arg);
                    self.next_arg += 1;
                    let value = self.small_const();
                    let target = self.target();
                    // The argument is a dedicated variable: it never becomes
                    // an assignment target, so it cannot collide with `dest`.
                    return format!(
                        "{arg} := {value};\n{}{target} := hrec({arg})",
                        "    ".repeat(depth + 1)
                    );
                }
                _ => {
                    if self.chance(1, 4) {
                        return "skip".to_string();
                    }
                    // Fall through and draw again.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::parse_program;

    #[test]
    fn generated_programs_parse_and_are_deterministic() {
        let config = GenConfig::default();
        for seed in 0..64 {
            let a = generate_program(seed, &config);
            let b = generate_program(seed, &config);
            assert_eq!(a.source, b.source, "seed {seed} is not deterministic");
            parse_program(&a.source)
                .unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{}", a.source));
        }
    }

    #[test]
    fn different_seeds_explore_different_programs() {
        let config = GenConfig::default();
        let distinct: std::collections::HashSet<String> = (0..32)
            .map(|seed| generate_program(seed, &config).source)
            .collect();
        assert!(
            distinct.len() > 24,
            "only {} distinct programs",
            distinct.len()
        );
    }

    #[test]
    fn recursion_and_nondet_can_be_disabled() {
        let config = GenConfig {
            recursion: false,
            nondet: false,
            ..GenConfig::default()
        };
        for seed in 0..32 {
            let generated = generate_program(seed, &config);
            assert!(!generated.recursive);
            assert!(!generated.source.contains("hrec"));
            assert!(!generated.source.contains(":= *"));
            assert!(!generated.source.contains("if * then"));
            let program = parse_program(&generated.source).unwrap();
            assert!(program.is_simple());
        }
    }

    #[test]
    fn recursive_helpers_appear_and_resolve() {
        let config = GenConfig::default();
        let mut saw_recursive = false;
        for seed in 0..64 {
            let generated = generate_program(seed, &config);
            if generated.recursive {
                saw_recursive = true;
                let program = parse_program(&generated.source).unwrap();
                assert!(program.function("hrec").is_some());
            }
        }
        assert!(saw_recursive, "no recursive program in 64 seeds");
    }
}
