//! The fuzz driver: generate → round-trip → synthesize → validate.
//!
//! Every case runs the full soundness loop on a freshly generated program:
//!
//! 1. the generated source must parse, and the pretty-printed program must
//!    re-parse to the same canonical form (pinning `Display` to the
//!    parser);
//! 2. weak synthesis runs with no targets (any feasible point of the
//!    quadratic system claims to be an inductive invariant);
//! 3. when the solver claims feasibility, the claim is attacked with trace
//!    falsification and the exact-rational re-check.
//!
//! A solver that fails to converge is *not* a violation (the guarantee is
//! one-directional); a feasible claim refuted by either check is. The
//! summary carries everything needed to reproduce a failing case: the seed,
//! the source and the minimized counterexample.

use polyinv::SolvePlan;
use polyinv_constraints::SynthesisOptions;
use polyinv_lang::{parse_program, Precondition};
use polyinv_qcqp::LmOptions;

use crate::generate::{generate_program, GenConfig};
use crate::{synthesize_and_validate, ValidationConfig, ValidationReport};

/// Configuration of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed: case `k` is generated from `seed + k`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub count: usize,
    /// Program-generator bounds.
    pub gen: GenConfig,
    /// Reduction options of the synthesis attempt. The default keeps the
    /// systems small (degree 1, one conjunct, constant multipliers) so a
    /// 200-case smoke run finishes in CI time.
    pub options: SynthesisOptions,
    /// Validation settings for feasible claims.
    pub validation: ValidationConfig,
    /// Solver settings of the synthesis attempt.
    pub solver: LmOptions,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            count: 100,
            gen: GenConfig::default(),
            options: SynthesisOptions::with_degree_and_size(1, 1).with_upsilon(0),
            validation: ValidationConfig::default(),
            solver: LmOptions {
                max_iterations: 120,
                restarts: 2,
                ..LmOptions::default()
            },
        }
    }
}

/// The outcome of one fuzz case.
#[derive(Debug, Clone)]
pub enum CaseStatus {
    /// The printed program did not re-parse to the same canonical form.
    RoundTripMismatch {
        /// First print of the parsed program.
        printed: String,
        /// Print of the re-parsed program (differs).
        reprinted: String,
    },
    /// The constraint generator rejected the program (a generator bug —
    /// generated programs are well-formed by construction).
    GenerationError(String),
    /// The solver did not reach feasibility; nothing to validate.
    Unsolved {
        /// The solver's best violation.
        violation: f64,
    },
    /// Feasibility was claimed and survived both checks.
    Sound {
        /// Valid traces checked.
        trace_runs: usize,
        /// States checked across those traces.
        trace_states: usize,
        /// The exact re-check's worst violation (float rendering).
        exact_violation: f64,
    },
    /// Feasibility was claimed and refuted — a soundness violation.
    Violation(Box<ValidationReport>),
}

impl CaseStatus {
    /// `true` for outcomes that falsify the soundness guarantee (or the
    /// printer/parser agreement).
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            CaseStatus::Violation(_)
                | CaseStatus::RoundTripMismatch { .. }
                | CaseStatus::GenerationError(_)
        )
    }

    /// Stable one-word label for summaries.
    pub fn label(&self) -> &'static str {
        match self {
            CaseStatus::RoundTripMismatch { .. } => "round-trip-mismatch",
            CaseStatus::GenerationError(_) => "generation-error",
            CaseStatus::Unsolved { .. } => "unsolved",
            CaseStatus::Sound { .. } => "sound",
            CaseStatus::Violation(_) => "violation",
        }
    }
}

/// One fuzz case: the program and what happened to it.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Case index within the campaign.
    pub index: usize,
    /// The generation seed (reproduces the program exactly).
    pub seed: u64,
    /// The generated source.
    pub source: String,
    /// What happened.
    pub status: CaseStatus,
}

/// The result of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Every case, in order.
    pub cases: Vec<FuzzCase>,
}

impl FuzzSummary {
    /// The failing cases (soundness violations, round-trip mismatches,
    /// generation errors).
    pub fn failures(&self) -> Vec<&FuzzCase> {
        self.cases
            .iter()
            .filter(|case| case.status.is_failure())
            .collect()
    }

    /// `true` when no case failed.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// Number of cases with a given status label.
    pub fn count(&self, label: &str) -> usize {
        self.cases
            .iter()
            .filter(|case| case.status.label() == label)
            .count()
    }
}

/// Runs one fuzz case (exposed so the CLI can parallelize / stream).
pub fn run_case(index: usize, config: &FuzzConfig) -> FuzzCase {
    let seed = config.seed.wrapping_add(index as u64);
    let generated = generate_program(seed, &config.gen);
    let source = generated.source;
    let status = check_case(&source, config);
    FuzzCase {
        index,
        seed,
        source,
        status,
    }
}

fn check_case(source: &str, config: &FuzzConfig) -> CaseStatus {
    // Generated programs are well-formed by construction; a parse error
    // here is a generator bug and panics loudly with the source.
    let program = parse_program(source)
        .unwrap_or_else(|e| panic!("generated program does not parse: {e}\n{source}"));

    // 1. Printer/parser agreement.
    let printed = program.to_string();
    let reparsed = match parse_program(&printed) {
        Ok(reparsed) => reparsed,
        Err(error) => {
            return CaseStatus::RoundTripMismatch {
                printed,
                reprinted: format!("(does not parse: {error})"),
            }
        }
    };
    let reprinted = reparsed.to_string();
    if printed != reprinted {
        return CaseStatus::RoundTripMismatch { printed, reprinted };
    }

    // 2. Synthesis with no targets: any feasible point claims soundness.
    // The fuzz loop keeps the orchestrator lean — the configured LM lane
    // only, no polish — so a campaign's cost profile matches the old
    // single-solver loop; the point is attacking claims, not winning
    // certificates.
    let pre = Precondition::from_program(&program);
    let mut plan = SolvePlan::new(config.options.clone());
    plan.lm = config.solver.clone();
    plan.penalty = None;
    plan.polish_rounds = 0;
    let outcome = match synthesize_and_validate(&program, &pre, &[], &plan, &config.validation) {
        Ok(outcome) => outcome,
        Err(error) => return CaseStatus::GenerationError(error.to_string()),
    };
    if !outcome.feasible {
        return CaseStatus::Unsolved {
            violation: outcome.violation,
        };
    }

    // 3. The claim was validated inside synthesize_and_validate.
    let validation = outcome.validation.expect("feasible outcomes validate");
    if validation.sound() {
        CaseStatus::Sound {
            trace_runs: validation.trace.valid_runs,
            trace_states: validation.trace.states_checked,
            exact_violation: validation
                .exact
                .as_ref()
                .map(|e| e.worst_violation.to_f64())
                .unwrap_or(0.0),
        }
    } else {
        CaseStatus::Violation(Box::new(validation))
    }
}

impl FuzzCase {
    /// Serializes the case — including the source and, for violations, the
    /// full counterexample — as a JSON object (the CI artifact format).
    pub fn to_json(&self) -> polyinv_api::Json {
        use polyinv_api::Json;
        let mut fields = vec![
            ("index".to_string(), Json::Number(self.index as f64)),
            ("seed".to_string(), Json::string(self.seed.to_string())),
            ("status".to_string(), Json::string(self.status.label())),
            ("source".to_string(), Json::string(self.source.clone())),
        ];
        match &self.status {
            CaseStatus::RoundTripMismatch { printed, reprinted } => {
                fields.push(("printed".to_string(), Json::string(printed.clone())));
                fields.push(("reprinted".to_string(), Json::string(reprinted.clone())));
            }
            CaseStatus::GenerationError(message) => {
                fields.push(("error".to_string(), Json::string(message.clone())));
            }
            CaseStatus::Unsolved { violation } => {
                fields.push(("violation".to_string(), Json::Number(*violation)));
            }
            CaseStatus::Sound {
                trace_runs,
                trace_states,
                exact_violation,
            } => {
                fields.push(("trace_runs".to_string(), Json::Number(*trace_runs as f64)));
                fields.push((
                    "trace_states".to_string(),
                    Json::Number(*trace_states as f64),
                ));
                fields.push((
                    "exact_violation".to_string(),
                    Json::Number(*exact_violation),
                ));
            }
            CaseStatus::Violation(report) => {
                fields.push(("validation".to_string(), report.to_json()));
            }
        }
        Json::Object(fields)
    }
}

impl FuzzSummary {
    /// Serializes the campaign: per-status counts plus the failing cases in
    /// full (sound/unsolved cases are summarized by count only).
    pub fn to_json(&self) -> polyinv_api::Json {
        use polyinv_api::Json;
        let counts = Json::object(
            [
                "sound",
                "unsolved",
                "violation",
                "round-trip-mismatch",
                "generation-error",
            ]
            .iter()
            .map(|&label| (label, Json::Number(self.count(label) as f64)))
            .collect::<Vec<_>>(),
        );
        Json::object(vec![
            ("schema", Json::string("polyinv-fuzz/v1")),
            ("cases", Json::Number(self.cases.len() as f64)),
            ("passed", Json::Bool(self.passed())),
            ("counts", counts),
            (
                "failures",
                Json::Array(self.failures().iter().map(|case| case.to_json()).collect()),
            ),
        ])
    }
}

/// Runs a full fuzz campaign.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzSummary {
    let cases = (0..config.count)
        .map(|index| run_case(index, config))
        .collect();
    FuzzSummary { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_cases_round_trip_without_solving() {
        // Solver-free slice of the fuzz loop: parse + print round-trip over
        // many generated programs (the solving path is exercised by the
        // release-mode e2e test below and the CI smoke job).
        let config = FuzzConfig::default();
        for index in 0..50 {
            let seed = config.seed.wrapping_add(index as u64);
            let generated = generate_program(seed, &config.gen);
            let program = parse_program(&generated.source).unwrap();
            let printed = program.to_string();
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("round-trip failed: {e}\n{printed}"));
            assert_eq!(printed, reparsed.to_string(), "seed {seed}");
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn small_fuzz_campaign_finds_no_soundness_violation() {
        let config = FuzzConfig {
            count: 10,
            validation: ValidationConfig {
                trace: crate::TraceCheckConfig {
                    runs: 200,
                    ..crate::TraceCheckConfig::default()
                },
                ..ValidationConfig::default()
            },
            ..FuzzConfig::default()
        };
        let summary = run_fuzz(&config);
        assert_eq!(summary.cases.len(), 10);
        assert!(
            summary.passed(),
            "failures: {:?}",
            summary
                .failures()
                .iter()
                .map(|c| (c.seed, c.status.label()))
                .collect::<Vec<_>>()
        );
        // The cheap configuration should solve at least some cases, so the
        // soundness loop actually runs.
        assert!(summary.count("sound") > 0, "no case reached validation");
    }
}
