//! # polyinv-validate — the soundness validation subsystem
//!
//! The paper's guarantee is *soundness*: a feasible solution of the
//! generated quadratic system instantiates to an inductive invariant. This
//! crate adversarially checks that guarantee, independently of the
//! machinery that produced the solution:
//!
//! * [`generate`] — a seeded, grammar-based `.poly` program generator
//!   (recursion- and nondet-aware, size-bounded, always emitting well-formed
//!   `@pre` specs), opening an unbounded workload beyond the 27 embedded
//!   Table 2/3 programs;
//! * [`trace`] — a falsification harness running every synthesized
//!   invariant against thousands of seeded [`Interpreter`] traces
//!   (per-label obligations, post-conditions at endpoints, minimized
//!   counterexamples);
//! * [`exact`] — an exact-rational inductiveness re-check: the rounded
//!   coefficients substituted back into the Step-3 constraints and every
//!   (in)equality evaluated with [`Rational`](polyinv_arith::Rational)
//!   arithmetic, no floats and no solver;
//! * [`fuzz`] — the driver combining all three: generate, synthesize,
//!   validate, and report any soundness violation with its counterexample.
//!
//! [`Interpreter`]: polyinv_lang::interp::Interpreter

pub mod driver;

pub mod fuzz;
pub mod generate;
pub mod trace;

use polyinv::pipeline::StageTimings;
use polyinv::{Orchestrator, OrchestratorStats, SolvePlan, TargetAssertion};
use polyinv_api::report::{ExactRecord, ValidationRecord};
use polyinv_constraints::ConstraintError;
use polyinv_lang::{InvariantMap, Postcondition, Precondition, Program};

pub use driver::{run_validated, run_validated_with_plan};
pub use fuzz::{run_fuzz, CaseStatus, FuzzCase, FuzzConfig, FuzzSummary};
pub use generate::{generate_program, GenConfig, GeneratedProgram};
pub use polyinv_constraints::exact::{
    exact_assignment, exact_recheck, instantiate_exact, ExactCheckConfig, ExactReport,
};
pub use trace::{falsify_traces, TraceCheckConfig, TraceReport, TraceViolation};

/// Configuration of a full validation pass (trace + exact).
#[derive(Debug, Clone, Default)]
pub struct ValidationConfig {
    /// Trace-falsification settings (defaults to 1000 valid runs).
    pub trace: TraceCheckConfig,
    /// Exact re-check settings (defaults to tolerance 1/1000).
    pub exact: ExactCheckConfig,
}

/// The outcome of validating one synthesized invariant.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// The trace-falsification outcome.
    pub trace: TraceReport,
    /// The exact re-check outcome (absent when no solved system was
    /// available, e.g. the candidate came from outside the pipeline).
    pub exact: Option<ExactReport>,
}

impl ValidationReport {
    /// `true` when the invariant survived both checks.
    pub fn sound(&self) -> bool {
        let exact_ok = match &self.exact {
            Some(exact) => exact.passed(),
            None => true,
        };
        self.trace.passed() && exact_ok
    }

    /// The serializable summary attached to API reports.
    pub fn to_record(&self) -> ValidationRecord {
        ValidationRecord {
            trace_runs: self.trace.valid_runs,
            trace_states: self.trace.states_checked,
            trace_violations: self.trace.violations.len(),
            exact: self.exact.as_ref().map(|exact| ExactRecord {
                constraints: exact.constraints,
                worst_violation: format!(
                    "{}/{}",
                    exact.worst_violation.numer(),
                    exact.worst_violation.denom()
                ),
                worst_violation_f64: exact.worst_violation.to_f64(),
                tolerance: format!("{}/{}", exact.tolerance.numer(), exact.tolerance.denom()),
                passed: exact.passed(),
            }),
            passed: self.sound(),
        }
    }

    /// Serializes the full report — including counterexample traces — as a
    /// JSON object (the artifact format the fuzz driver writes for CI).
    pub fn to_json(&self) -> polyinv_api::Json {
        use polyinv_api::Json;
        let rational = |value: &polyinv_arith::Rational| Json::string(value.to_string());
        let violations: Vec<Json> = self
            .trace
            .violations
            .iter()
            .map(|violation| {
                Json::object(vec![
                    ("label", Json::string(violation.label.to_string())),
                    ("atom", Json::string(violation.atom.clone())),
                    ("run_seed", Json::string(violation.run_seed.to_string())),
                    (
                        "inputs",
                        Json::Array(violation.inputs.iter().map(rational).collect()),
                    ),
                    (
                        "minimized_inputs",
                        Json::Array(violation.minimized_inputs.iter().map(rational).collect()),
                    ),
                    (
                        "valuation",
                        Json::Object(
                            violation
                                .valuation
                                .iter()
                                .map(|(name, value)| (name.clone(), rational(value)))
                                .collect(),
                        ),
                    ),
                    ("trace_prefix", Json::Number(violation.trace_prefix as f64)),
                ])
            })
            .collect();
        Json::object(vec![
            (
                "trace",
                Json::object(vec![
                    ("valid_runs", Json::Number(self.trace.valid_runs as f64)),
                    (
                        "attempted_runs",
                        Json::Number(self.trace.attempted_runs as f64),
                    ),
                    (
                        "states_checked",
                        Json::Number(self.trace.states_checked as f64),
                    ),
                    ("violations", Json::Array(violations)),
                ]),
            ),
            (
                "exact",
                match &self.exact {
                    None => Json::Null,
                    Some(exact) => Json::object(vec![
                        ("constraints", Json::Number(exact.constraints as f64)),
                        ("worst_violation", rational(&exact.worst_violation)),
                        (
                            "worst_constraint",
                            Json::string(exact.worst_constraint.clone()),
                        ),
                        ("tolerance", rational(&exact.tolerance)),
                        ("overflowed", Json::Bool(exact.overflowed)),
                        ("passed", Json::Bool(exact.passed())),
                    ]),
                },
            ),
            ("sound", Json::Bool(self.sound())),
        ])
    }

    /// A one-cell summary for tables: `ok(1000tr, 2.1e-9)` or the failing
    /// check.
    pub fn summary(&self) -> String {
        if self.sound() {
            match &self.exact {
                Some(exact) => format!(
                    "ok({}tr, {:.1e})",
                    self.trace.valid_runs,
                    exact.worst_violation.to_f64()
                ),
                None => format!("ok({}tr)", self.trace.valid_runs),
            }
        } else if !self.trace.passed() {
            format!("TRACE-VIOLATION({})", self.trace.violations.len())
        } else {
            "EXACT-VIOLATION".to_string()
        }
    }
}

/// Validates a solved pipeline run: trace-falsifies the instantiated
/// invariant (and post-conditions) and exactly re-checks the quadratic
/// system at the solution's assignment.
///
/// `pre` should be the plain program pre-condition
/// ([`Precondition::from_program`]) — it defines run validity for the
/// interpreter, independent of any bounded-reals augmentation the reduction
/// may have used.
pub fn validate_solution(
    program: &Program,
    pre: &Precondition,
    generated: &polyinv_constraints::GeneratedSystem,
    solution: &polyinv::pipeline::Solution,
    config: &ValidationConfig,
) -> ValidationReport {
    // Both checks attack the same object: the templates instantiated at the
    // exact-rational rounding of the solver's assignment.
    let values = exact_assignment(&generated.system, &solution.assignment, &config.exact);
    let (invariant, postconditions) = instantiate_exact(program, generated, &values);
    let trace = falsify_traces(program, pre, &invariant, &postconditions, &config.trace);
    let exact = exact_recheck(&generated.system, &solution.assignment, &config.exact);
    ValidationReport {
        trace,
        exact: Some(exact),
    }
}

/// Validates a candidate invariant that did not come out of the pipeline
/// (no quadratic system to re-check): trace falsification only.
pub fn validate_candidate(
    program: &Program,
    pre: &Precondition,
    invariant: &InvariantMap,
    post: &Postcondition,
    config: &ValidationConfig,
) -> ValidationReport {
    ValidationReport {
        trace: falsify_traces(program, pre, invariant, post, &config.trace),
        exact: None,
    }
}

/// The result of [`synthesize_and_validate`].
#[derive(Debug, Clone)]
pub struct ValidatedOutcome {
    /// Whether the quadratic system was solved within the float tolerance.
    pub feasible: bool,
    /// Whether the snapped candidate passed the orchestrator's
    /// exact-rational certificate (the "synthesized" criterion).
    pub certified: bool,
    /// The instantiated invariant map (rounded coefficients).
    pub invariant: InvariantMap,
    /// The instantiated post-conditions (recursive programs only).
    pub postconditions: Postcondition,
    /// `|S|` of the accepted rung's system.
    pub system_size: usize,
    /// Unknown count of the accepted rung's system.
    pub num_unknowns: usize,
    /// The solver's worst (float) constraint violation.
    pub violation: f64,
    /// The back-end that produced the point.
    pub backend: &'static str,
    /// Accumulated per-stage timings across ladder rungs.
    pub timings: StageTimings,
    /// Solver statistics of the accepted (or last) rung's solve.
    pub solver: polyinv_qcqp::SolverStats,
    /// Affine presolve statistics of the accepted (or last) rung (`None`
    /// when presolve was disabled).
    pub presolve: Option<polyinv_constraints::PresolveStats>,
    /// The orchestration summary (attempts, rung reached, winning lane,
    /// certificate status).
    pub stats: OrchestratorStats,
    /// The validation outcome (present iff the solve produced a candidate
    /// worth attacking: float-feasible or certified).
    pub validation: Option<ValidationReport>,
}

/// Weak synthesis with validation: runs the solve orchestrator (ϒ ladder,
/// portfolio race, polish, snap-and-certify) and — when a candidate is
/// float-feasible or certified — trace-falsifies the instantiated invariant.
/// The exact re-check of the validation report *is* the orchestrator's
/// certificate: both attack the same snapped assignment under the plan's
/// acceptance tolerance, so a `certified` outcome and a passing
/// `validation.exact` cannot disagree.
///
/// # Errors
///
/// Returns a [`ConstraintError`] when the generation stages reject the
/// program.
///
/// # Panics
///
/// Panics if a target mentions a monomial outside the template basis at its
/// label (same contract as the weak driver).
pub fn synthesize_and_validate(
    program: &Program,
    pre: &Precondition,
    targets: &[TargetAssertion],
    plan: &SolvePlan,
    config: &ValidationConfig,
) -> Result<ValidatedOutcome, ConstraintError> {
    let outcome = Orchestrator::new(plan.clone()).solve(program, pre, targets)?;
    let validation = (outcome.feasible || outcome.certified).then(|| {
        // Attack the same snapped point the certificate covers.
        let values = exact_assignment(
            &outcome.generated.system,
            &outcome.assignment,
            &plan.certificate,
        );
        let (invariant, postconditions) = instantiate_exact(program, &outcome.generated, &values);
        let trace = falsify_traces(program, pre, &invariant, &postconditions, &config.trace);
        ValidationReport {
            trace,
            exact: outcome.exact.clone(),
        }
    });
    Ok(ValidatedOutcome {
        feasible: outcome.feasible,
        certified: outcome.certified,
        invariant: outcome.invariant,
        postconditions: outcome.postconditions,
        system_size: outcome.system_size,
        num_unknowns: outcome.num_unknowns,
        violation: outcome.violation,
        backend: outcome.backend,
        timings: outcome.timings,
        solver: outcome.solver,
        presolve: outcome.presolve,
        stats: outcome.stats,
        validation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_constraints::SynthesisOptions;
    use polyinv_lang::{parse_assertion, parse_program};

    const INC: &str = r#"
        inc(x) {
            @pre(x >= 0);
            while x <= 10 do
                x := x + 1
            od;
            return x
        }
    "#;

    #[test]
    fn candidate_validation_refutes_a_wrong_invariant() {
        let program = parse_program(INC).unwrap();
        let pre = Precondition::from_program(&program);
        let mut invariant = InvariantMap::new();
        let (poly, _) = parse_assertion(&program, "inc", "5 - x > 0").unwrap();
        invariant.add(program.main().exit_label(), poly);
        let report = validate_candidate(
            &program,
            &pre,
            &invariant,
            &Postcondition::new(),
            &ValidationConfig::default(),
        );
        assert!(!report.sound());
        let record = report.to_record();
        assert!(!record.passed);
        assert!(record.trace_violations > 0);
        assert!(record.exact.is_none());
        assert!(report.summary().contains("TRACE-VIOLATION"));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn synthesized_invariants_validate_end_to_end() {
        let program = parse_program(INC).unwrap();
        let pre = Precondition::from_program(&program);
        let (target, _) = parse_assertion(&program, "inc", "x + 1 > 0").unwrap();
        let options = SynthesisOptions::with_degree_and_size(1, 1).with_upsilon(2);
        let plan = SolvePlan::new(options);
        let outcome = synthesize_and_validate(
            &program,
            &pre,
            &[TargetAssertion::new(program.main().exit_label(), target)],
            &plan,
            &ValidationConfig::default(),
        )
        .unwrap();
        assert!(outcome.feasible, "violation {}", outcome.violation);
        assert!(outcome.certified, "exact {:?}", outcome.stats);
        let validation = outcome.validation.expect("feasible runs validate");
        assert!(
            validation.sound(),
            "trace: {:?}, exact: {:?}",
            validation.trace.violations,
            validation.exact
        );
        assert_eq!(validation.trace.valid_runs, 1000);
        let record = validation.to_record();
        assert!(record.passed);
        let exact = record.exact.expect("pipeline runs re-check exactly");
        assert!(exact.passed);
        assert!(exact.constraints > 0);
    }
}
