//! Request-level driver: serves a weak-mode [`SynthesisRequest`] through
//! [`synthesize_and_validate`](crate::synthesize_and_validate) and returns
//! an API [`SynthesisReport`] with the [`ValidationRecord`] block filled.
//!
//! This is the engine the `polyinv validate` subcommand and the
//! `reproduce --validate` harness run on. It deliberately shares the
//! Engine's label/assertion resolution helpers so a label index or target
//! text means exactly the same thing as in a plain `synth` request.

use polyinv::SolvePlan;
use polyinv_api::engine::{escalate_degree, resolve_weak_targets};
use polyinv_api::{ApiError, Mode, ReportStatus, SynthesisReport, SynthesisRequest};
use polyinv_lang::Precondition;
use polyinv_qcqp::backend_by_name;

use crate::{synthesize_and_validate, ValidationConfig};

/// Serves a weak-mode request with validation: synthesize through the
/// orchestrator, then attack the result with trace falsification and the
/// exact-rational re-check.
///
/// The returned report is shaped like an Engine weak-mode report, with the
/// `validate` field filled when the solve produced a candidate. A certified
/// solve that fails trace validation keeps [`ReportStatus::Synthesized`]
/// (the solver's claim) — callers decide how hard to fail on
/// `validate.passed == false` (the CLI exits non-zero).
///
/// # Errors
///
/// Returns the same [`ApiError`]s as an Engine weak request: parse errors
/// with spans, unknown back-ends/labels, over-degree targets.
pub fn run_validated(
    request: &SynthesisRequest,
    config: &ValidationConfig,
) -> Result<SynthesisReport, ApiError> {
    if let Some(name) = &request.backend {
        // Same rejection the Engine applies: an unknown back-end name is a
        // request error, not a silently ignored preference.
        backend_by_name(name).ok_or_else(|| ApiError::UnknownBackend { name: name.clone() })?;
    }
    run_validated_with_plan(request, config, |options| {
        let mut plan = SolvePlan::new(options).with_solve_budget(request.solve_budget_seconds);
        if let Some(name) = &request.backend {
            plan = plan.with_backend_preference(name);
        }
        plan
    })
}

/// [`run_validated`] with a caller-supplied solve plan (the bench harness
/// passes its budgeted table plan). `make_plan` receives the
/// degree-escalated options of the request; the request's `backend` field
/// is ignored in favor of whatever portfolio the plan encodes.
///
/// # Errors
///
/// Same contract as [`run_validated`].
pub fn run_validated_with_plan(
    request: &SynthesisRequest,
    config: &ValidationConfig,
    make_plan: impl FnOnce(polyinv_constraints::SynthesisOptions) -> SolvePlan,
) -> Result<SynthesisReport, ApiError> {
    if request.mode != Mode::Weak {
        return Err(ApiError::InvalidRequest {
            message: "validated synthesis serves weak-mode requests only".to_string(),
        });
    }
    let program = polyinv_lang::parse_program(&request.source)?;
    // The exact request validation the Engine's weak mode applies: both
    // entry points accept and reject the same requests.
    let targets = resolve_weak_targets(&program, request)?;
    let (options, escalation) = escalate_degree(&request.options, &targets);
    let plan = make_plan(options);

    let pre = Precondition::from_program(&program);
    let outcome = synthesize_and_validate(&program, &pre, &targets, &plan, config)?;

    let status = if outcome.certified {
        ReportStatus::Synthesized
    } else {
        ReportStatus::Failed
    };
    let mut report = SynthesisReport {
        id: request.id.clone(),
        mode: Mode::Weak,
        status,
        backend: outcome.backend.to_string(),
        system_size: outcome.system_size,
        num_unknowns: outcome.num_unknowns,
        violation: outcome.violation,
        pairs_total: 0,
        pairs_certified: 0,
        invariants: Vec::new(),
        postconditions: Vec::new(),
        timings: outcome
            .timings
            .iter()
            .map(|(stage, duration)| (stage.to_string(), duration.as_secs_f64()))
            .collect(),
        diagnostics: Vec::new(),
        validate: None,
        solver: Some(polyinv_api::SolverRecord::from(&outcome.solver)),
        presolve: outcome
            .presolve
            .as_ref()
            .map(polyinv_api::PresolveRecord::from),
        orchestrator: Some(polyinv_api::report::OrchestratorRecord::from(
            &outcome.stats,
        )),
    };
    if let Some(note) = escalation {
        report.diagnostics.push(note);
    }
    if outcome.certified {
        report.invariants = outcome
            .invariant
            .render(&program)
            .lines()
            .map(str::to_string)
            .collect();
        for (function, atoms) in outcome.postconditions.iter() {
            for atom in atoms {
                report.postconditions.push(format!(
                    "{function}: {} {} 0",
                    program.render_poly(&atom.poly),
                    if atom.strict { ">" } else { ">=" }
                ));
            }
        }
        report.postconditions.sort();
    } else {
        report.diagnostics.push(format!(
            "solver `{}` stopped at violation {:.3e}",
            outcome.backend, outcome.violation
        ));
    }
    if let Some(validation) = &outcome.validation {
        for violation in &validation.trace.violations {
            report.diagnostics.push(format!(
                "trace violation at {}: `{}` fails on inputs {:?} (seed {})",
                violation.label, violation.atom, violation.minimized_inputs, violation.run_seed
            ));
        }
        if let Some(exact) = &validation.exact {
            if !exact.passed() {
                report.diagnostics.push(format!(
                    "exact re-check failed: {} violated by {} (tolerance {})",
                    exact.worst_constraint, exact.worst_violation, exact.tolerance
                ));
            }
        }
        report.validate = Some(validation.to_record());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_weak_requests_are_rejected() {
        let request = SynthesisRequest::check("f(x) { return x }");
        let error = run_validated(&request, &ValidationConfig::default()).unwrap_err();
        assert!(matches!(error, ApiError::InvalidRequest { .. }));
    }

    #[test]
    fn request_validation_matches_the_engine() {
        let request = SynthesisRequest::weak("f(x) { return x }").with_backend("loqo");
        assert!(matches!(
            run_validated(&request, &ValidationConfig::default()),
            Err(ApiError::UnknownBackend { .. })
        ));
        let request = SynthesisRequest::weak("f(x) { return x }").with_target_at(99, "x > 0");
        assert!(matches!(
            run_validated(&request, &ValidationConfig::default()),
            Err(ApiError::UnknownLabel { index: 99, .. })
        ));
        // An over-degree target no longer rejects the request: like the
        // Engine, the driver escalates the template degree to fit it.
        let request = SynthesisRequest::weak("f(x) { return x }").with_target("x*x*x + 1 > 0");
        let program = polyinv_lang::parse_program(&request.source).unwrap();
        let targets = resolve_weak_targets(&program, &request).unwrap();
        let (options, note) = escalate_degree(&request.options, &targets);
        assert_eq!(options.degree, 3);
        assert!(note.expect("escalation is diagnosed").contains("escalated"));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow without optimizations; run with `cargo test --release`"
    )]
    fn validated_weak_requests_fill_the_record() {
        let request = SynthesisRequest::weak(
            r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x + 1
                od;
                return x
            }
            "#,
        )
        .with_id("inc/validate")
        .with_degree(1)
        .with_target("x + 1 > 0");
        let report = run_validated(&request, &ValidationConfig::default()).unwrap();
        assert_eq!(report.status, ReportStatus::Synthesized);
        let record = report
            .validate
            .clone()
            .expect("feasible runs carry a record");
        assert!(record.passed, "diagnostics: {:?}", report.diagnostics);
        assert_eq!(record.trace_runs, 1000);
        assert!(record.exact.expect("exact re-check ran").passed);
        // The record survives the JSON round trip.
        let text = report.to_json_string();
        let reparsed = SynthesisReport::from_json_str(&text).unwrap();
        assert_eq!(reparsed, report);
    }
}
