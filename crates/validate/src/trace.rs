//! Trace falsification: adversarial checking of a candidate invariant
//! against thousands of seeded interpreter runs.
//!
//! The obligation checked is per-label, exactly as in Definition 2.2 of the
//! paper: on every *valid* run (one whose visited states all satisfy the
//! pre-condition of their label), every visit to a label must satisfy the
//! invariant attached to that label. A reachable state violating the
//! invariant is a definitive refutation — this direction needs no solver
//! and is completely independent of the synthesis pipeline.
//!
//! Violations are minimized before being reported: inputs are greedily
//! shrunk towards zero while the violation (under the same oracle seed)
//! persists, and the reported trace is truncated at the first violating
//! state.

use polyinv_arith::Rational;
use polyinv_lang::guard::Atom;
use polyinv_lang::interp::{Interpreter, SeededOracle, StateRecord};
use polyinv_lang::{InvariantMap, Label, Postcondition, Precondition, Program};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the trace falsifier.
#[derive(Debug, Clone)]
pub struct TraceCheckConfig {
    /// Number of *valid* traces to check (invalid runs are re-drawn).
    pub runs: usize,
    /// Base seed; run `k` derives its oracle and inputs from `seed` and `k`.
    pub seed: u64,
    /// Interpreter step limit per run.
    pub step_limit: usize,
    /// Havoc values are drawn from `[-havoc_range, havoc_range]`.
    pub havoc_range: i64,
    /// Inputs are drawn from `[-2, input_range]`, biased non-negative.
    pub input_range: i64,
    /// Cap on total attempted runs (valid + discarded).
    pub max_attempts: usize,
}

impl Default for TraceCheckConfig {
    fn default() -> Self {
        TraceCheckConfig {
            runs: 1000,
            seed: 0,
            step_limit: 50_000,
            havoc_range: 8,
            input_range: 8,
            max_attempts: 20_000,
        }
    }
}

/// A reachable state violating the candidate invariant, with the minimized
/// counterexample run that reaches it.
#[derive(Debug, Clone)]
pub struct TraceViolation {
    /// The label whose invariant is violated.
    pub label: Label,
    /// The violated conjunct, rendered with the program's variable names.
    pub atom: String,
    /// The run seed that reproduces the violation.
    pub run_seed: u64,
    /// The original inputs that exposed the violation.
    pub inputs: Vec<Rational>,
    /// The smallest inputs (greedy shrink towards zero) still violating.
    pub minimized_inputs: Vec<Rational>,
    /// The violating state's valuation, as `(variable, value)` pairs.
    pub valuation: Vec<(String, Rational)>,
    /// Number of states of the minimized trace up to the violation.
    pub trace_prefix: usize,
}

/// The outcome of a trace-falsification pass.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The number of valid traces requested.
    pub requested_runs: usize,
    /// The number of valid traces actually checked.
    pub valid_runs: usize,
    /// Total runs attempted (including discarded invalid runs).
    pub attempted_runs: usize,
    /// Total per-label obligations checked (states visited on valid runs).
    pub states_checked: usize,
    /// The violations found (empty for a sound invariant).
    pub violations: Vec<TraceViolation>,
}

impl TraceReport {
    /// `true` when no reachable state violated the invariant *and* the
    /// requested coverage was reached. A report with zero violations but
    /// fewer valid runs than requested (the pre-condition rejected almost
    /// every drawn input within `max_attempts`) does NOT pass — a vacuous
    /// "nothing checked, nothing failed" must fail the soundness gate
    /// loudly, not slip through it.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.covered()
    }

    /// `true` when at least the requested number of valid runs executed.
    pub fn covered(&self) -> bool {
        self.valid_runs >= self.requested_runs
    }
}

/// Draws the main-function inputs of run `k`: small integers biased to the
/// non-negative range (which the benchmark pre-conditions accept), with an
/// occasional negative probe.
fn draw_inputs(rng: &mut StdRng, arity: usize, input_range: i64) -> Vec<Rational> {
    (0..arity)
        .map(|_| {
            let range = input_range.max(1);
            let value = if rng.random_range(0..5u32) == 0 {
                rng.random_range(-2..range + 1)
            } else {
                rng.random_range(0..range + 1)
            };
            Rational::from_int(value)
        })
        .collect()
}

/// Which obligation a violating state breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obligation {
    /// Conjunct `index` of the invariant at the state's label.
    Invariant(usize),
    /// Conjunct `index` of the post-condition of the state's function
    /// (checked at endpoint labels only).
    Post(usize),
}

/// What a single seeded run yielded.
enum RunOutcome {
    /// A visited state broke its label's pre-condition: not a valid run in
    /// the paper's sense, discarded.
    Invalid,
    /// A valid run with every obligation satisfied on the first `checked`
    /// states (obligation evaluation past that point overflowed `i128`
    /// rational arithmetic and is conservatively skipped).
    Clean {
        /// Number of states whose obligations were fully checked.
        checked: usize,
    },
    /// State `state_index` violates `obligation` — a definitive refutation.
    Violating {
        /// The recorded states of the run.
        states: Vec<StateRecord>,
        /// Index of the violating state.
        state_index: usize,
        /// The violated obligation.
        obligation: Obligation,
    },
}

/// Executes one seeded run and checks validity plus every per-label
/// obligation with overflow-safe rational evaluation.
#[allow(clippy::too_many_arguments)]
fn check_run(
    interpreter: &Interpreter<'_>,
    program: &Program,
    pre: &Precondition,
    invariant: &InvariantMap,
    post: &Postcondition,
    inputs: &[Rational],
    oracle_seed: u64,
    havoc_range: i64,
) -> RunOutcome {
    let mut oracle = SeededOracle::new(oracle_seed, havoc_range);
    let trace = interpreter.run(inputs, &mut oracle);
    let mut checked = 0;
    for (index, state) in trace.states.iter().enumerate() {
        let lookup = |v| state.valuation.get(&v).copied().unwrap_or_default();
        // Run validity at this state. An overflowing pre-condition cannot
        // be decided: stop checking the run here (earlier states stand).
        for atom in pre.get(state.label) {
            match atom.checked_eval(lookup) {
                Some(true) => {}
                Some(false) => return RunOutcome::Invalid,
                None => return RunOutcome::Clean { checked },
            }
        }
        for (atom_index, atom) in invariant.get(state.label).iter().enumerate() {
            match atom.checked_eval(lookup) {
                Some(true) => {}
                Some(false) => {
                    return RunOutcome::Violating {
                        states: trace.states,
                        state_index: index,
                        obligation: Obligation::Invariant(atom_index),
                    }
                }
                None => return RunOutcome::Clean { checked },
            }
        }
        // Post-condition obligation at function endpoints: the trace only
        // records an endpoint state on completed frames, where `ret_f` and
        // the shadow parameters are in the valuation.
        let function = program.label_function(state.label);
        if state.label == function.exit_label() {
            for (atom_index, atom) in post.get(function.name()).iter().enumerate() {
                match atom.checked_eval(lookup) {
                    Some(true) => {}
                    Some(false) => {
                        return RunOutcome::Violating {
                            states: trace.states,
                            state_index: index,
                            obligation: Obligation::Post(atom_index),
                        }
                    }
                    None => return RunOutcome::Clean { checked },
                }
            }
        }
        checked = index + 1;
    }
    RunOutcome::Clean { checked }
}

/// Greedily shrinks the inputs of a violating run towards zero while the
/// violation (under the same oracle seed) persists.
#[allow(clippy::too_many_arguments)]
fn minimize_inputs(
    interpreter: &Interpreter<'_>,
    program: &Program,
    pre: &Precondition,
    invariant: &InvariantMap,
    post: &Postcondition,
    inputs: &[Rational],
    oracle_seed: u64,
    havoc_range: i64,
) -> Vec<Rational> {
    let mut best = inputs.to_vec();
    let still_violates = |candidate: &[Rational]| {
        matches!(
            check_run(
                interpreter,
                program,
                pre,
                invariant,
                post,
                candidate,
                oracle_seed,
                havoc_range
            ),
            RunOutcome::Violating { .. }
        )
    };
    let mut changed = true;
    while changed {
        changed = false;
        for index in 0..best.len() {
            let current = best[index];
            if current.is_zero() {
                continue;
            }
            let halved = Rational::from_int(current.numer() as i64 / 2);
            for candidate_value in [Rational::zero(), halved] {
                if candidate_value == current {
                    continue;
                }
                let mut candidate = best.clone();
                candidate[index] = candidate_value;
                if still_violates(&candidate) {
                    best = candidate;
                    changed = true;
                    break;
                }
            }
        }
    }
    best
}

/// Runs the trace falsifier: `config.runs` valid seeded traces, per-label
/// invariant obligations checked on every recorded state and post-condition
/// obligations at every function endpoint.
pub fn falsify_traces(
    program: &Program,
    pre: &Precondition,
    invariant: &InvariantMap,
    post: &Postcondition,
    config: &TraceCheckConfig,
) -> TraceReport {
    let interpreter = Interpreter::new(program, config.step_limit);
    let arity = program.main().params().len();
    let mut report = TraceReport {
        requested_runs: config.runs,
        valid_runs: 0,
        attempted_runs: 0,
        states_checked: 0,
        violations: Vec::new(),
    };
    let mut attempt = 0u64;
    while report.valid_runs < config.runs && report.attempted_runs < config.max_attempts {
        let run_seed = config
            .seed
            .wrapping_add(attempt.wrapping_mul(0x9e3779b97f4a7c15));
        attempt += 1;
        report.attempted_runs += 1;
        let mut rng = StdRng::seed_from_u64(run_seed);
        let inputs = draw_inputs(&mut rng, arity, config.input_range);
        let (states, state_index, obligation) = match check_run(
            &interpreter,
            program,
            pre,
            invariant,
            post,
            &inputs,
            run_seed,
            config.havoc_range,
        ) {
            RunOutcome::Invalid => continue, // not a counterexample
            RunOutcome::Clean { checked } => {
                // A run whose very first state could not be evaluated
                // (immediate overflow) contributes no checked obligations
                // and must not inflate the coverage count.
                if checked > 0 {
                    report.valid_runs += 1;
                    report.states_checked += checked;
                }
                continue;
            }
            RunOutcome::Violating {
                states,
                state_index,
                obligation,
            } => {
                report.valid_runs += 1;
                report.states_checked += state_index + 1;
                (states, state_index, obligation)
            }
        };
        let minimized = minimize_inputs(
            &interpreter,
            program,
            pre,
            invariant,
            post,
            &inputs,
            run_seed,
            config.havoc_range,
        );
        // Re-run with the minimized inputs to report the minimized state.
        let (min_states, state_index, obligation) = match check_run(
            &interpreter,
            program,
            pre,
            invariant,
            post,
            &minimized,
            run_seed,
            config.havoc_range,
        ) {
            RunOutcome::Violating {
                states,
                state_index,
                obligation,
            } => (states, state_index, obligation),
            // Minimization only keeps inputs that still violate.
            _ => (states, state_index, obligation),
        };
        let state = &min_states[state_index];
        let atom: &Atom = match obligation {
            Obligation::Invariant(atom_index) => &invariant.get(state.label)[atom_index],
            Obligation::Post(atom_index) => {
                let function = program.label_function(state.label);
                &post.get(function.name())[atom_index]
            }
        };
        let mut valuation: Vec<(String, Rational)> = state
            .valuation
            .iter()
            .map(|(&var, &value)| (program.var_table().display_name(var).to_string(), value))
            .collect();
        valuation.sort();
        report.violations.push(TraceViolation {
            label: state.label,
            atom: format!(
                "{} {} 0",
                program.render_poly(&atom.poly),
                if atom.strict { ">" } else { ">=" }
            ),
            run_seed,
            inputs,
            minimized_inputs: minimized,
            valuation,
            trace_prefix: state_index + 1,
        });
        // One counterexample per invariant is enough to refute; keep
        // scanning other runs only until a handful are collected.
        if report.violations.len() >= 5 {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;
    use polyinv_lang::{parse_assertion, parse_program};

    fn setup() -> (Program, Precondition) {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        (program, pre)
    }

    #[test]
    fn true_invariants_survive_a_thousand_traces() {
        let (program, pre) = setup();
        let mut invariant = InvariantMap::new();
        // The paper's endpoint bound holds on every valid run.
        let (poly, _) =
            parse_assertion(&program, "sum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0").unwrap();
        invariant.add(program.main().exit_label(), poly);
        let report = falsify_traces(
            &program,
            &pre,
            &invariant,
            &Postcondition::new(),
            &TraceCheckConfig::default(),
        );
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.valid_runs, 1000);
        assert!(report.states_checked > 1000);
    }

    #[test]
    fn wrong_invariants_are_falsified_and_minimized() {
        let (program, pre) = setup();
        let mut invariant = InvariantMap::new();
        // `s < 1` at the return label: false once the loop adds i = 1.
        let (poly, _) = parse_assertion(&program, "sum", "1 - s > 0").unwrap();
        let return_label = program.main().labels()[7];
        invariant.add(return_label, poly);
        let report = falsify_traces(
            &program,
            &pre,
            &invariant,
            &Postcondition::new(),
            &TraceCheckConfig::default(),
        );
        assert!(!report.passed());
        let violation = &report.violations[0];
        assert_eq!(violation.label, return_label);
        assert!(violation.atom.contains("1 - s"));
        // Minimization shrinks the single input but keeps the violation:
        // n = 1 still allows s = 1 (the loop body can add i = 1).
        let minimized = violation.minimized_inputs[0];
        assert!(minimized <= violation.inputs[0]);
        assert!(minimized >= Rational::zero());
        assert!(violation.trace_prefix >= 1);
        // The reported valuation carries readable names.
        assert!(violation.valuation.iter().any(|(name, _)| name == "s"));
    }

    #[test]
    fn invalid_runs_are_discarded_not_reported() {
        let (program, pre) = setup();
        // `n > 0` holds at the entry of every *valid* run (@pre(n >= 1)),
        // so negative probe inputs must be discarded, not reported.
        let mut invariant = InvariantMap::new();
        let (poly, _) = parse_assertion(&program, "sum", "n > 0").unwrap();
        invariant.add(program.main().entry_label(), poly);
        let config = TraceCheckConfig {
            runs: 300,
            ..TraceCheckConfig::default()
        };
        let report = falsify_traces(&program, &pre, &invariant, &Postcondition::new(), &config);
        assert!(report.passed());
        assert!(report.attempted_runs > report.valid_runs);
    }

    #[test]
    fn postcondition_obligations_are_checked_at_endpoints() {
        use polyinv_lang::program::RECURSIVE_EXAMPLE_SOURCE;
        let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        // True post-condition: ret ≤ n(n+1)/2 < bound.
        let mut post = Postcondition::new();
        let (poly, _) =
            parse_assertion(&program, "rsum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0").unwrap();
        post.add("rsum", poly);
        let config = TraceCheckConfig {
            runs: 500,
            ..TraceCheckConfig::default()
        };
        let report = falsify_traces(&program, &pre, &InvariantMap::new(), &post, &config);
        assert!(report.passed(), "violations: {:?}", report.violations);

        // False post-condition: ret < 1 fails once the oracle adds n.
        let mut wrong = Postcondition::new();
        let (poly, _) = parse_assertion(&program, "rsum", "1 - ret > 0").unwrap();
        wrong.add("rsum", poly);
        let report = falsify_traces(&program, &pre, &InvariantMap::new(), &wrong, &config);
        assert!(!report.passed());
        assert_eq!(report.violations[0].label, program.main().exit_label());
    }
}
