//! Property: pretty-print → reparse is the identity on canonical programs.
//!
//! Programs come from the grammar-based generator (seeded by the property
//! input), parse through the real front-end, print through the new
//! `Display for Program`, and must re-parse to a program with the same
//! canonical print, the same label structure and the same variable table —
//! pinning the printer to the parser.

use polyinv_lang::{parse_program, Label};
use polyinv_validate::{generate_program, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_then_parse_is_identity(seed in 0i64..1_000_000) {
        let seed = seed as u64;
        let generated = generate_program(seed, &GenConfig::default());
        let program = parse_program(&generated.source)
            .unwrap_or_else(|e| panic!("seed {seed} does not parse: {e}\n{}", generated.source));
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: print does not re-parse: {e}\n{printed}"));

        // parse(print(p)) == p, compared through the canonical print (the
        // only difference between the two resolutions can be source lines).
        prop_assert_eq!(&printed, &reparsed.to_string());

        // The label structure and variable tables agree exactly.
        prop_assert_eq!(program.num_labels(), reparsed.num_labels());
        prop_assert_eq!(program.var_table().len(), reparsed.var_table().len());
        for index in 0..program.num_labels() {
            let label = Label::new(index);
            prop_assert_eq!(program.label_kind(label), reparsed.label_kind(label));
        }
        for (a, b) in program.functions().iter().zip(reparsed.functions()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.params().len(), b.params().len());
            prop_assert_eq!(a.vars().len(), b.vars().len());
            prop_assert_eq!(a.labels().len(), b.labels().len());
            prop_assert_eq!(a.pre_annotations().len(), b.pre_annotations().len());
        }
    }

    #[test]
    fn nondet_free_programs_round_trip_too(seed in 0i64..100_000) {
        let seed = seed as u64;
        let config = GenConfig {
            recursion: false,
            nondet: false,
            ..GenConfig::default()
        };
        let generated = generate_program(seed, &config);
        let program = parse_program(&generated.source).unwrap();
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(printed, reparsed.to_string());
    }
}

#[test]
fn paper_benchmarks_round_trip_through_the_printer() {
    for benchmark in polyinv_benchmarks_sources() {
        let program = parse_program(benchmark).unwrap();
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("benchmark print does not re-parse: {e}\n{printed}"));
        assert_eq!(printed, reparsed.to_string());
    }
}

/// A few structurally-diverse paper sources (the full set is covered by the
/// `programs/*.poly` parity tests in `polyinv-benchmarks`).
fn polyinv_benchmarks_sources() -> Vec<&'static str> {
    vec![
        polyinv_lang::program::RUNNING_EXAMPLE_SOURCE,
        polyinv_lang::program::RECURSIVE_EXAMPLE_SOURCE,
    ]
}
