//! Error-path corpus: a table of malformed `.poly` inputs asserting the
//! exact diagnostic and its line/column span for each failure class —
//! lexer errors, parser errors (unterminated blocks, bad guards), resolver
//! rejections and assertion-scope errors (unknown identifiers, degenerate
//! specs). Regressions in error wording or span tracking fail here, not in
//! downstream CLI output.

use polyinv_lang::{parse_assertion, parse_program};

/// One malformed program: source, expected message, expected span.
struct ProgramCase {
    name: &'static str,
    source: &'static str,
    message: &'static str,
    line: Option<usize>,
    column: Option<usize>,
}

#[test]
fn malformed_programs_report_exact_diagnostics() {
    let cases = [
        ProgramCase {
            name: "lexer: stray character",
            source: "f(x) { x := # }",
            message: "unexpected character `#`",
            line: Some(1),
            column: Some(13),
        },
        ProgramCase {
            name: "lexer: lone colon",
            source: "f(x) { x : 1 }",
            message: "expected `:=`",
            line: Some(1),
            column: Some(10),
        },
        ProgramCase {
            name: "lexer: single ampersand",
            source: "f(x) {\n  while x > 0 & x < 9 do skip od;\n  return x\n}",
            message: "expected `&&`",
            line: Some(2),
            column: Some(15),
        },
        ProgramCase {
            name: "lexer: unknown annotation",
            source: "f(x) { @post(x >= 0); return x }",
            message: "unknown annotation `@post` (only `@pre` is supported)",
            line: Some(1),
            column: Some(8),
        },
        ProgramCase {
            name: "parser: unterminated while block",
            source: "f(x) {\n  while x >= 0 do\n    x := x - 1\n}",
            message: "expected `od`, found `}`",
            line: Some(4),
            column: Some(1),
        },
        ProgramCase {
            // The `return` after the `;` still belongs to the else block;
            // the missing `fi` is discovered at the closing brace.
            name: "parser: unterminated if block",
            source: "f(x) { if x >= 0 then skip else skip ; return x }",
            message: "expected `fi`, found `}`",
            line: Some(1),
            column: Some(49),
        },
        ProgramCase {
            name: "parser: unterminated function body",
            source: "f(x) { return x",
            message: "expected `}`, found end of input",
            line: None,
            column: None,
        },
        ProgramCase {
            // The guard parser backtracks from the failed comparison and
            // reports from the start of the would-be primary expression.
            name: "parser: bad guard (no comparison)",
            source: "f(x) { while x do skip od; return x }",
            message: "expected `(` or a comparison, found identifier `x`",
            line: Some(1),
            column: Some(14),
        },
        ProgramCase {
            // Backtracking again reports from the primary expression start
            // (the failed comparison consumed `x >=` before giving up).
            name: "parser: guard missing right operand",
            source: "f(x) { if x >= then skip else skip fi; return x }",
            message: "expected `(` or a comparison, found identifier `x`",
            line: Some(1),
            column: Some(11),
        },
        ProgramCase {
            name: "parser: empty block",
            source: "f(x) { }",
            message: "expected a statement, found `}`",
            line: Some(1),
            column: Some(8),
        },
        ProgramCase {
            name: "resolver: duplicate parameter",
            source: "f(x, x) { return x }",
            message: "duplicate parameter `x` in function `f`",
            line: Some(1),
            column: None,
        },
        ProgramCase {
            name: "resolver: duplicate function",
            source: "f(x) { return x }\nf(y) { return y }",
            message: "function `f` is defined more than once",
            line: Some(2),
            column: None,
        },
        ProgramCase {
            name: "resolver: call to undefined function",
            source: "f(x) {\n  y := g(x);\n  return y\n}",
            message: "call to undefined function `g`",
            line: Some(2),
            column: None,
        },
        ProgramCase {
            name: "resolver: arity mismatch",
            source: "main(x) { y := h(x, x); return y }\nh(a) { return a }",
            message: "function `h` expects 1 argument(s), got 2",
            line: Some(1),
            column: None,
        },
        ProgramCase {
            name: "resolver: destination aliased as argument",
            source: "main(x) { x := h(x); return x }\nh(a) { return a }",
            message: "variable `x` appears on both sides of a call",
            line: Some(1),
            column: None,
        },
        ProgramCase {
            name: "resolver: trailing @pre",
            source: "f(x) { skip; @pre(x >= 0) }",
            message: "`@pre` annotation must be followed by a statement in the same block",
            line: None,
            column: None,
        },
        ProgramCase {
            name: "resolver: disjunctive @pre",
            source: "f(x) {\n  @pre(x >= 0 || x <= 0 - 5);\n  return x\n}",
            message: "`@pre` annotations must be conjunctions of comparisons",
            line: Some(2),
            column: None,
        },
    ];
    for case in cases {
        let error = parse_program(case.source)
            .err()
            .unwrap_or_else(|| panic!("{}: expected a parse error", case.name));
        assert_eq!(error.message(), case.message, "{}: message", case.name);
        assert_eq!(error.line(), case.line, "{}: line", case.name);
        assert_eq!(error.column(), case.column, "{}: column", case.name);
    }
}

#[test]
fn malformed_assertions_report_exact_diagnostics() {
    let program = parse_program("f(x) { y := x * x; return y }").unwrap();
    let cases = [
        (
            "unknown identifier",
            "z + 1 > 0",
            "unknown variable `z` in function `f`",
            None,
            None,
        ),
        (
            "degree-0 spec (no comparison)",
            "1",
            "expected a comparison operator, found end of input",
            None,
            None,
        ),
        (
            "two comparisons",
            "x > 0 && y > 0",
            "expected end of assertion, found `&&`",
            Some(1),
            Some(7),
        ),
        (
            "dangling operator",
            "x + > 1",
            "expected an arithmetic expression, found `>`",
            Some(1),
            Some(5),
        ),
    ];
    for (name, text, message, line, column) in cases {
        let error = parse_assertion(&program, "f", text)
            .err()
            .unwrap_or_else(|| panic!("{name}: expected an error"));
        assert_eq!(error.message(), message, "{name}: message");
        assert_eq!(error.line(), line, "{name}: line");
        assert_eq!(error.column(), column, "{name}: column");
    }
}

#[test]
fn unknown_function_scope_is_reported() {
    let program = parse_program("f(x) { return x }").unwrap();
    let error = parse_assertion(&program, "nope", "x > 0").unwrap_err();
    assert_eq!(error.message(), "unknown function `nope`");
}
