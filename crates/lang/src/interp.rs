//! A concrete interpreter of the stack semantics of Section 2.2.
//!
//! The interpreter executes a resolved program under a pluggable
//! non-determinism oracle and records every visited `(label, valuation)`
//! pair. It is used throughout the workspace as a *falsification* tool:
//! a candidate invariant that is violated by some recorded reachable state
//! is certainly not an invariant, which provides an end-to-end sanity check
//! that is independent of the constraint-solving pipeline.

use std::collections::HashMap;

use polyinv_arith::Rational;
use polyinv_poly::VarId;

use crate::program::{Function, LStmt, Label, Program, StmtKind};

/// Resolves the non-deterministic choices of a run.
pub trait NondetOracle {
    /// Chooses a branch of an `if ⋆` statement (`true` = then-branch).
    fn choose(&mut self) -> bool;

    /// Chooses the value of a havoc assignment `x := *`.
    fn havoc(&mut self) -> Rational;
}

/// A deterministic pseudo-random oracle based on a linear congruential
/// generator, so the interpreter needs no external dependencies and runs are
/// reproducible from the seed.
#[derive(Debug, Clone)]
pub struct SeededOracle {
    state: u64,
    /// Havoc values are drawn uniformly from `[-range, range]`.
    range: i64,
}

impl SeededOracle {
    /// Creates an oracle with the given seed, drawing havoc values from
    /// `[-range, range]`.
    pub fn new(seed: u64, range: i64) -> Self {
        SeededOracle {
            state: seed.wrapping_mul(6364136223846793005).wrapping_add(1),
            range: range.max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // Standard LCG step (Numerical Recipes constants).
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }
}

impl NondetOracle for SeededOracle {
    fn choose(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn havoc(&mut self) -> Rational {
        let span = (2 * self.range + 1) as u64;
        let value = (self.next_u64() % span) as i64 - self.range;
        Rational::from_int(value)
    }
}

/// A single recorded program state: the stack-top label and the valuation of
/// the enclosing function's variables.
#[derive(Debug, Clone)]
pub struct StateRecord {
    /// The label about to be executed (or the endpoint label).
    pub label: Label,
    /// The valuation of the function's variables.
    pub valuation: HashMap<VarId, Rational>,
}

/// The result of executing a program.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// Every visited state, in execution order, across all stack frames.
    pub states: Vec<StateRecord>,
    /// The value returned by `fmain`, if the run terminated within the step
    /// limit.
    pub return_value: Option<Rational>,
    /// `false` if the step limit was reached — or `i128` rational
    /// arithmetic overflowed — before termination. The recorded states are
    /// exact reachable states either way.
    pub completed: bool,
}

/// The interpreter configuration.
#[derive(Debug, Clone)]
pub struct Interpreter<'p> {
    program: &'p Program,
    step_limit: usize,
}

enum Flow {
    Normal,
    Returned,
    /// The step limit was exhausted, or exact rational arithmetic
    /// overflowed `i128` (programs iterating rational dynamics square
    /// their denominators every iteration). Either way the run stops and
    /// is reported as not completed.
    OutOfFuel,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program` with the given step limit.
    pub fn new(program: &'p Program, step_limit: usize) -> Self {
        Interpreter {
            program,
            step_limit,
        }
    }

    /// Runs `fmain` on the given argument values.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the arity of `fmain`.
    pub fn run(&self, inputs: &[Rational], oracle: &mut dyn NondetOracle) -> ExecutionTrace {
        let main = self.program.main();
        assert_eq!(
            inputs.len(),
            main.params().len(),
            "wrong number of arguments for `{}`",
            main.name()
        );
        let mut trace = ExecutionTrace {
            states: Vec::new(),
            return_value: None,
            completed: true,
        };
        let mut fuel = self.step_limit;
        let result = self.call(main, inputs, oracle, &mut trace, &mut fuel, 0);
        match result {
            Some(value) => trace.return_value = Some(value),
            None => trace.completed = false,
        }
        trace
    }

    /// Executes a function call and returns the return value (or `None` if
    /// the step limit or recursion-depth limit was exhausted).
    fn call(
        &self,
        function: &Function,
        args: &[Rational],
        oracle: &mut dyn NondetOracle,
        trace: &mut ExecutionTrace,
        fuel: &mut usize,
        depth: usize,
    ) -> Option<Rational> {
        if depth > 256 {
            return None;
        }
        let mut valuation: HashMap<VarId, Rational> = HashMap::new();
        for &var in function.vars() {
            valuation.insert(var, Rational::zero());
        }
        for (&param, &value) in function.params().iter().zip(args) {
            valuation.insert(param, value);
        }
        for (&shadow, &value) in function.shadow_params().iter().zip(args) {
            valuation.insert(shadow, value);
        }
        let flow = self.exec_list(
            function,
            function.body(),
            &mut valuation,
            oracle,
            trace,
            fuel,
            depth,
        );
        match flow {
            Flow::OutOfFuel => None,
            _ => {
                // Record the endpoint state.
                trace.states.push(StateRecord {
                    label: function.exit_label(),
                    valuation: valuation.clone(),
                });
                Some(valuation[&function.ret_var()])
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_list(
        &self,
        function: &Function,
        stmts: &[LStmt],
        valuation: &mut HashMap<VarId, Rational>,
        oracle: &mut dyn NondetOracle,
        trace: &mut ExecutionTrace,
        fuel: &mut usize,
        depth: usize,
    ) -> Flow {
        for stmt in stmts {
            match self.exec_stmt(function, stmt, valuation, oracle, trace, fuel, depth) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_stmt(
        &self,
        function: &Function,
        stmt: &LStmt,
        valuation: &mut HashMap<VarId, Rational>,
        oracle: &mut dyn NondetOracle,
        trace: &mut ExecutionTrace,
        fuel: &mut usize,
        depth: usize,
    ) -> Flow {
        if *fuel == 0 {
            return Flow::OutOfFuel;
        }
        *fuel -= 1;
        trace.states.push(StateRecord {
            label: stmt.label,
            valuation: valuation.clone(),
        });
        let lookup = |val: &HashMap<VarId, Rational>, v: VarId| -> Rational {
            val.get(&v).copied().unwrap_or_default()
        };
        match &stmt.kind {
            StmtKind::Skip => Flow::Normal,
            StmtKind::Assign { var, expr } => {
                let Some(value) = expr.checked_eval(|v| lookup(valuation, v)) else {
                    return Flow::OutOfFuel;
                };
                valuation.insert(*var, value);
                Flow::Normal
            }
            StmtKind::Havoc { var } => {
                valuation.insert(*var, oracle.havoc());
                Flow::Normal
            }
            StmtKind::Return { expr } => {
                let Some(value) = expr.checked_eval(|v| lookup(valuation, v)) else {
                    return Flow::OutOfFuel;
                };
                valuation.insert(function.ret_var(), value);
                Flow::Returned
            }
            StmtKind::Call { dest, callee, args } => {
                let callee_fn = self
                    .program
                    .function(callee)
                    .expect("resolver guarantees callee exists");
                let arg_values: Vec<Rational> =
                    args.iter().map(|&a| lookup(valuation, a)).collect();
                match self.call(callee_fn, &arg_values, oracle, trace, fuel, depth + 1) {
                    Some(value) => {
                        valuation.insert(*dest, value);
                        Flow::Normal
                    }
                    None => Flow::OutOfFuel,
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let Some(taken) = cond.checked_eval(&mut |v| lookup(valuation, v)) else {
                    return Flow::OutOfFuel;
                };
                let branch = if taken { then_branch } else { else_branch };
                self.exec_list(function, branch, valuation, oracle, trace, fuel, depth)
            }
            StmtKind::NondetIf {
                then_branch,
                else_branch,
            } => {
                let branch = if oracle.choose() {
                    then_branch
                } else {
                    else_branch
                };
                self.exec_list(function, branch, valuation, oracle, trace, fuel, depth)
            }
            StmtKind::While { cond, body } => {
                loop {
                    if *fuel == 0 {
                        return Flow::OutOfFuel;
                    }
                    let Some(taken) = cond.checked_eval(&mut |v| lookup(valuation, v)) else {
                        return Flow::OutOfFuel;
                    };
                    if !taken {
                        return Flow::Normal;
                    }
                    match self.exec_list(function, body, valuation, oracle, trace, fuel, depth) {
                        Flow::Normal => {}
                        other => return other,
                    }
                    // Re-record the loop head on every iteration, mirroring
                    // the run semantics where the label is visited again.
                    *fuel = fuel.saturating_sub(1);
                    trace.states.push(StateRecord {
                        label: stmt.label,
                        valuation: valuation.clone(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use crate::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    struct AlwaysTake(bool);
    impl NondetOracle for AlwaysTake {
        fn choose(&mut self) -> bool {
            self.0
        }
        fn havoc(&mut self) -> Rational {
            Rational::zero()
        }
    }

    #[test]
    fn summation_returns_full_sum_when_always_adding() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let interp = Interpreter::new(&program, 10_000);
        let trace = interp.run(&[Rational::from_int(5)], &mut AlwaysTake(true));
        assert!(trace.completed);
        assert_eq!(trace.return_value, Some(Rational::from_int(15)));
    }

    #[test]
    fn summation_returns_zero_when_never_adding() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let interp = Interpreter::new(&program, 10_000);
        let trace = interp.run(&[Rational::from_int(5)], &mut AlwaysTake(false));
        assert_eq!(trace.return_value, Some(Rational::zero()));
    }

    #[test]
    fn summation_respects_paper_bound_under_random_choices() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let interp = Interpreter::new(&program, 10_000);
        for seed in 0..50 {
            let mut oracle = SeededOracle::new(seed, 3);
            let n = (seed % 7) as i64;
            let trace = interp.run(&[Rational::from_int(n)], &mut oracle);
            let ret = trace.return_value.unwrap();
            // The paper's target invariant: ret < 0.5 n² + 0.5 n + 1.
            let bound = Rational::new(1, 2) * Rational::from_int(n * n)
                + Rational::new(1, 2) * Rational::from_int(n)
                + Rational::one();
            assert!(ret < bound, "seed {seed}: {ret} >= {bound}");
        }
    }

    #[test]
    fn recursive_summation_matches_iterative_behaviour() {
        let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
        let interp = Interpreter::new(&program, 100_000);
        let trace = interp.run(&[Rational::from_int(6)], &mut AlwaysTake(true));
        assert_eq!(trace.return_value, Some(Rational::from_int(21)));
        // Recursion produces states in the callee as well; entry label of the
        // callee frames must appear multiple times.
        let entry = program.main().entry_label();
        let entry_visits = trace.states.iter().filter(|s| s.label == entry).count();
        assert!(entry_visits >= 6);
    }

    #[test]
    fn step_limit_stops_divergent_programs() {
        let source = r#"
            loop(x) {
                while x >= 0 do
                    x := x + 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        let interp = Interpreter::new(&program, 500);
        let trace = interp.run(&[Rational::zero()], &mut AlwaysTake(true));
        assert!(!trace.completed);
        assert!(trace.return_value.is_none());
        assert!(!trace.states.is_empty());
    }

    #[test]
    fn traces_record_states_at_every_label_kind() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let interp = Interpreter::new(&program, 10_000);
        let mut oracle = SeededOracle::new(7, 2);
        let trace = interp.run(&[Rational::from_int(4)], &mut oracle);
        let visited: std::collections::HashSet<Label> =
            trace.states.iter().map(|s| s.label).collect();
        // All 9 labels of the running example are visited for n = 4.
        assert_eq!(visited.len(), 9);
    }

    #[test]
    fn seeded_oracle_is_reproducible() {
        let mut a = SeededOracle::new(42, 5);
        let mut b = SeededOracle::new(42, 5);
        for _ in 0..100 {
            assert_eq!(a.choose(), b.choose());
            assert_eq!(a.havoc(), b.havoc());
        }
    }
}
