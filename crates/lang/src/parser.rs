//! Recursive-descent parser for the grammar of Figure 5.

use polyinv_arith::Rational;

use crate::ast::{AstBExpr, AstExpr, AstFunction, AstProgram, AstStmt, AstStmtKind, CmpOp};
use crate::error::Error;
use crate::lexer::{Token, TokenKind};

/// Parses a token stream into a raw AST program.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error encountered.
pub fn parse(tokens: &[Token]) -> Result<AstProgram, Error> {
    let mut parser = Parser::new(tokens);
    let mut functions = Vec::new();
    while !parser.at_end() {
        functions.push(parser.function()?);
    }
    if functions.is_empty() {
        return Err(Error::new("a program must define at least one function"));
    }
    Ok(AstProgram { functions })
}

/// Parses a single comparison `e₁ ▷◁ e₂` (used for assertions supplied
/// outside program text, e.g. target invariants of the weak synthesis
/// problem).
///
/// # Errors
///
/// Returns an [`Error`] if the tokens do not form exactly one comparison.
pub fn parse_comparison(tokens: &[Token]) -> Result<AstBExpr, Error> {
    let mut parser = Parser::new(tokens);
    let cmp = parser.comparison()?;
    if !parser.at_end() {
        return Err(parser.unexpected("end of assertion"));
    }
    Ok(cmp)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, offset: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + offset).map(|t| &t.kind)
    }

    fn current_line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn advance(&mut self) -> Option<&'a Token> {
        let token = self.tokens.get(self.pos);
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn unexpected(&self, expected: &str) -> Error {
        match self.tokens.get(self.pos) {
            Some(token) => Error::at(
                format!("expected {expected}, found {}", token.kind.describe()),
                token.line,
                token.column,
            ),
            None => Error::new(format!("expected {expected}, found end of input")),
        }
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> Result<(), Error> {
        if self.peek() == Some(kind) {
            self.advance();
            Ok(())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        match self.peek() {
            Some(TokenKind::Ident(name)) if name == keyword => {
                self.advance();
                Ok(())
            }
            _ => Err(self.unexpected(&format!("`{keyword}`"))),
        }
    }

    fn peek_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(name)) if name == keyword)
    }

    fn ident(&mut self, expected: &str) -> Result<String, Error> {
        match self.peek() {
            Some(TokenKind::Ident(name)) if !is_keyword(name) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    fn function(&mut self) -> Result<AstFunction, Error> {
        let line = self.current_line();
        let name = self.ident("a function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != Some(&TokenKind::RParen) {
            loop {
                params.push(self.ident("a parameter name")?);
                if self.peek() == Some(&TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let body = self.stmt_list()?;
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(AstFunction {
            name,
            params,
            body,
            line,
        })
    }

    fn at_stmt_list_end(&self) -> bool {
        self.at_end()
            || self.peek() == Some(&TokenKind::RBrace)
            || self.peek_keyword("else")
            || self.peek_keyword("fi")
            || self.peek_keyword("od")
    }

    fn stmt_list(&mut self) -> Result<Vec<AstStmt>, Error> {
        let mut statements = Vec::new();
        loop {
            if self.at_stmt_list_end() {
                break;
            }
            statements.push(self.statement()?);
            if self.peek() == Some(&TokenKind::Semicolon) {
                // Consume separators (and tolerate a trailing semicolon).
                while self.peek() == Some(&TokenKind::Semicolon) {
                    self.advance();
                }
            } else {
                break;
            }
        }
        if statements.is_empty() {
            return Err(self.unexpected("a statement"));
        }
        Ok(statements)
    }

    fn statement(&mut self) -> Result<AstStmt, Error> {
        let line = self.current_line();
        let kind = match self.peek() {
            Some(TokenKind::AtPre) => {
                self.advance();
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.bexpr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                AstStmtKind::PreAnnotation { cond }
            }
            Some(TokenKind::Ident(name)) if name == "skip" => {
                self.advance();
                AstStmtKind::Skip
            }
            Some(TokenKind::Ident(name)) if name == "return" => {
                self.advance();
                let expr = self.expr()?;
                AstStmtKind::Return { expr }
            }
            Some(TokenKind::Ident(name)) if name == "if" => {
                self.advance();
                if self.peek() == Some(&TokenKind::Star) {
                    self.advance();
                    self.expect_keyword("then")?;
                    let then_branch = self.stmt_list()?;
                    self.expect_keyword("else")?;
                    let else_branch = self.stmt_list()?;
                    self.expect_keyword("fi")?;
                    AstStmtKind::NondetIf {
                        then_branch,
                        else_branch,
                    }
                } else {
                    let cond = self.bexpr()?;
                    self.expect_keyword("then")?;
                    let then_branch = self.stmt_list()?;
                    self.expect_keyword("else")?;
                    let else_branch = self.stmt_list()?;
                    self.expect_keyword("fi")?;
                    AstStmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    }
                }
            }
            Some(TokenKind::Ident(name)) if name == "while" => {
                self.advance();
                let cond = self.bexpr()?;
                self.expect_keyword("do")?;
                let body = self.stmt_list()?;
                self.expect_keyword("od")?;
                AstStmtKind::While { cond, body }
            }
            Some(TokenKind::Ident(name)) if !is_keyword(name) => {
                let var = name.clone();
                self.advance();
                self.expect(&TokenKind::Assign, "`:=`")?;
                match (self.peek(), self.peek_at(1)) {
                    (Some(TokenKind::Star), _) => {
                        self.advance();
                        AstStmtKind::Havoc { var }
                    }
                    (Some(TokenKind::Ident(callee)), Some(TokenKind::LParen))
                        if !is_keyword(callee) =>
                    {
                        let callee = callee.clone();
                        self.advance();
                        self.expect(&TokenKind::LParen, "`(`")?;
                        let mut args = Vec::new();
                        if self.peek() != Some(&TokenKind::RParen) {
                            loop {
                                args.push(self.ident("an argument variable")?);
                                if self.peek() == Some(&TokenKind::Comma) {
                                    self.advance();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&TokenKind::RParen, "`)`")?;
                        AstStmtKind::Call {
                            dest: var,
                            callee,
                            args,
                        }
                    }
                    _ => {
                        let expr = self.expr()?;
                        AstStmtKind::Assign { var, expr }
                    }
                }
            }
            _ => return Err(self.unexpected("a statement")),
        };
        Ok(AstStmt { kind, line })
    }

    // ----- boolean expressions ---------------------------------------------

    fn bexpr(&mut self) -> Result<AstBExpr, Error> {
        let mut lhs = self.band()?;
        while self.peek() == Some(&TokenKind::Or) {
            self.advance();
            let rhs = self.band()?;
            lhs = AstBExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn band(&mut self) -> Result<AstBExpr, Error> {
        let mut lhs = self.bnot()?;
        while self.peek() == Some(&TokenKind::And) {
            self.advance();
            let rhs = self.bnot()?;
            lhs = AstBExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bnot(&mut self) -> Result<AstBExpr, Error> {
        if self.peek() == Some(&TokenKind::Bang) {
            self.advance();
            let inner = self.bnot()?;
            return Ok(AstBExpr::Not(Box::new(inner)));
        }
        // A primary boolean expression is either a comparison or a
        // parenthesized boolean expression. `(` is ambiguous between the two,
        // so try the comparison first and backtrack on failure.
        let saved = self.pos;
        match self.comparison() {
            Ok(cmp) => Ok(cmp),
            Err(_) => {
                self.pos = saved;
                self.expect(&TokenKind::LParen, "`(` or a comparison")?;
                let inner = self.bexpr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
        }
    }

    fn comparison(&mut self) -> Result<AstBExpr, Error> {
        let lhs = self.expr()?;
        let op = match self.peek() {
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Ge) => CmpOp::Ge,
            Some(TokenKind::Gt) => CmpOp::Gt,
            _ => return Err(self.unexpected("a comparison operator")),
        };
        self.advance();
        let rhs = self.expr()?;
        Ok(AstBExpr::Cmp(lhs, op, rhs))
    }

    // ----- arithmetic expressions ------------------------------------------

    fn expr(&mut self) -> Result<AstExpr, Error> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(TokenKind::Plus) => {
                    self.advance();
                    let rhs = self.term()?;
                    lhs = AstExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(TokenKind::Minus) => {
                    self.advance();
                    let rhs = self.term()?;
                    lhs = AstExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<AstExpr, Error> {
        let mut lhs = self.factor()?;
        while self.peek() == Some(&TokenKind::Star) {
            self.advance();
            let rhs = self.factor()?;
            lhs = AstExpr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<AstExpr, Error> {
        match self.peek() {
            Some(TokenKind::Minus) => {
                self.advance();
                let inner = self.factor()?;
                Ok(AstExpr::Neg(Box::new(inner)))
            }
            Some(TokenKind::Number(value)) => {
                let value: Rational = *value;
                self.advance();
                Ok(AstExpr::Const(value))
            }
            Some(TokenKind::Ident(name)) if !is_keyword(name) => {
                let name = name.clone();
                self.advance();
                Ok(AstExpr::Var(name))
            }
            Some(TokenKind::LParen) => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            _ => Err(self.unexpected("an arithmetic expression")),
        }
    }
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "skip" | "if" | "then" | "else" | "fi" | "while" | "do" | "od" | "return"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_source(source: &str) -> Result<AstProgram, Error> {
        parse(&tokenize(source).unwrap())
    }

    #[test]
    fn parses_the_running_example() {
        let source = r#"
            sum(n) {
                i := 1;
                s := 0;
                while i <= n do
                    if * then
                        s := s + i
                    else
                        skip
                    fi;
                    i := i + 1
                od;
                return s
            }
        "#;
        let program = parse_source(source).unwrap();
        assert_eq!(program.functions.len(), 1);
        let func = &program.functions[0];
        assert_eq!(func.name, "sum");
        assert_eq!(func.params, vec!["n".to_string()]);
        assert_eq!(func.body.len(), 4);
        match &func.body[2].kind {
            AstStmtKind::While { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn parses_recursive_calls_and_annotations() {
        let source = r#"
            rsum(n) {
                @pre(n >= 0);
                if n <= 0 then
                    return n
                else
                    m := n - 1;
                    s := rsum(m);
                    if * then s := s + n else skip fi;
                    return s
                fi
            }
        "#;
        let program = parse_source(source).unwrap();
        let func = &program.functions[0];
        assert!(matches!(
            func.body[0].kind,
            AstStmtKind::PreAnnotation { .. }
        ));
        match &func.body[1].kind {
            AstStmtKind::If { else_branch, .. } => {
                assert!(matches!(
                    else_branch[1].kind,
                    AstStmtKind::Call { ref callee, .. } if callee == "rsum"
                ));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_havoc_and_decimal_constants() {
        let source = r#"
            f(x) {
                y := 0.5 * x;
                z := *;
                return y + z
            }
        "#;
        let program = parse_source(source).unwrap();
        let func = &program.functions[0];
        assert!(matches!(func.body[1].kind, AstStmtKind::Havoc { .. }));
        match &func.body[0].kind {
            AstStmtKind::Assign { expr, .. } => match expr {
                AstExpr::Mul(lhs, _) => {
                    assert_eq!(**lhs, AstExpr::Const(Rational::new(1, 2)));
                }
                other => panic!("expected multiplication, got {other:?}"),
            },
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_structure() {
        let source = r#"
            f(x, y) {
                while (x >= 0 && y >= 0) || !(x + y < 10) do
                    x := x - 1
                od;
                return x
            }
        "#;
        let program = parse_source(source).unwrap();
        match &program.functions[0].body[0].kind {
            AstStmtKind::While { cond, .. } => {
                assert!(matches!(cond, AstBExpr::Or(_, _)));
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_arithmetic_in_comparisons() {
        let source = "f(x) { if (x + 1) * x >= 2 then skip else skip fi; return x }";
        assert!(parse_source(source).is_ok());
    }

    #[test]
    fn reports_errors_with_context() {
        assert!(parse_source("f(x) { }").is_err());
        assert!(parse_source("f(x) { x := ; return x }").is_err());
        assert!(parse_source("f(x) { if x then skip fi; return x }").is_err());
        let err = parse_source("f(x) { while x do skip od; return x }").unwrap_err();
        assert!(err.message().contains("comparison"));
    }

    #[test]
    fn parse_comparison_accepts_exactly_one_comparison() {
        let tokens = tokenize("0.5*n*n + 0.5*n + 1 > r").unwrap();
        assert!(parse_comparison(&tokens).is_ok());
        let tokens = tokenize("x > 1 && y > 2").unwrap();
        assert!(parse_comparison(&tokens).is_err());
    }

    #[test]
    fn multiple_functions_parse() {
        let source = r#"
            main(x) { y := helper(x); return y }
            helper(z) { return z * z }
        "#;
        let program = parse_source(source).unwrap();
        assert_eq!(program.functions.len(), 2);
    }
}
