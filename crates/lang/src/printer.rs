//! Pretty-printing resolved programs back to parseable `.poly` source.
//!
//! [`Program`] implements [`std::fmt::Display`] through this module: the
//! printed text is valid input for [`crate::parse_program`], and re-parsing
//! it yields a program with the same labels, guards and (canonical)
//! polynomials. This is what lets generated programs round-trip through the
//! real parser, and what the `programs/*.poly` parity tests compare against.
//!
//! Two conventions keep the output inside the grammar of Figure 5:
//!
//! * polynomials are printed in their canonical term order with explicit
//!   `*` between factors (`0.5*n*n + 0.5*n + 1`), exponents expanded into
//!   repeated products;
//! * rational coefficients are printed as decimals whenever the denominator
//!   is of the form `2^a·5^b` — which covers every constant reachable from
//!   parsed source, since numeric literals are decimal and the language has
//!   no division. Other denominators (constructible only through the API)
//!   fall back to `p/q`, which deliberately does not re-parse.

use std::fmt;

use polyinv_arith::Rational;
use polyinv_poly::Polynomial;

use crate::guard::{Atom, BoolFormula};
use crate::program::{Function, LStmt, Program, StmtKind};

/// Renders a rational as a decimal literal when exact (`1/2` → `0.5`),
/// falling back to `p/q` for denominators that have no finite decimal form.
pub fn rational_to_source(value: &Rational) -> String {
    let numer = value.numer();
    let denom = value.denom();
    if denom == 1 {
        return numer.to_string();
    }
    // Count the 2s and 5s of the denominator; any other factor has no
    // finite decimal expansion.
    let mut rest = denom;
    let mut twos = 0u32;
    let mut fives = 0u32;
    while rest % 2 == 0 {
        rest /= 2;
        twos += 1;
    }
    while rest % 5 == 0 {
        rest /= 5;
        fives += 1;
    }
    let digits = twos.max(fives);
    if rest != 1 {
        return format!("{numer}/{denom}");
    }
    let scale = 10i128
        .checked_pow(digits)
        .and_then(|p| p.checked_div(denom));
    let Some(scale) = scale else {
        return format!("{numer}/{denom}");
    };
    let Some(scaled) = numer.checked_mul(scale) else {
        return format!("{numer}/{denom}");
    };
    let sign = if scaled < 0 { "-" } else { "" };
    let text = scaled.unsigned_abs().to_string();
    let digits = digits as usize;
    if text.len() <= digits {
        format!("{sign}0.{:0>width$}", text, width = digits)
    } else {
        let (whole, frac) = text.split_at(text.len() - digits);
        format!("{sign}{whole}.{frac}")
    }
}

/// Renders a polynomial as a parseable arithmetic expression over the
/// program's variable display names (`0` for the zero polynomial).
pub fn poly_to_source(program: &Program, poly: &Polynomial) -> String {
    if poly.is_zero() {
        return "0".to_string();
    }
    let mut out = String::new();
    for (index, (monomial, coeff)) in poly.iter().enumerate() {
        let negative = coeff.is_negative();
        let magnitude = coeff.abs();
        if index == 0 {
            if negative {
                out.push('-');
            }
        } else {
            out.push_str(if negative { " - " } else { " + " });
        }
        let mut factors: Vec<String> = Vec::new();
        if !magnitude.is_one() || monomial.is_one() {
            factors.push(rational_to_source(&magnitude));
        }
        for (var, exponent) in monomial.iter() {
            let name = program.var_table().display_name(var).to_string();
            for _ in 0..exponent {
                factors.push(name.clone());
            }
        }
        out.push_str(&factors.join("*"));
    }
    out
}

/// Renders an atomic assertion (`poly > 0` / `poly >= 0`).
pub fn atom_to_source(program: &Program, atom: &Atom) -> String {
    format!(
        "{} {} 0",
        poly_to_source(program, &atom.poly),
        if atom.strict { ">" } else { ">=" }
    )
}

/// Renders a guard formula as parseable source. Conjunctions and
/// disjunctions parenthesize every part, so nesting and mixed operators
/// re-parse to the same tree.
pub fn formula_to_source(program: &Program, formula: &BoolFormula) -> String {
    match formula {
        BoolFormula::Atom(atom) => atom_to_source(program, atom),
        // Empty conjunctions/disjunctions cannot come out of the parser;
        // print a parseable tautology/contradiction for API-built formulas.
        BoolFormula::And(parts) if parts.is_empty() => "0 >= 0".to_string(),
        BoolFormula::Or(parts) if parts.is_empty() => "0 > 0".to_string(),
        BoolFormula::And(parts) => parts
            .iter()
            .map(|p| format!("({})", formula_to_source(program, p)))
            .collect::<Vec<_>>()
            .join(" && "),
        BoolFormula::Or(parts) => parts
            .iter()
            .map(|p| format!("({})", formula_to_source(program, p)))
            .collect::<Vec<_>>()
            .join(" || "),
        BoolFormula::Not(inner) => format!("!({})", formula_to_source(program, inner)),
    }
}

/// Renders a resolved program as `.poly` source. This is the implementation
/// behind `Program`'s [`Display`](fmt::Display).
pub fn program_to_source(program: &Program) -> String {
    let mut out = String::new();
    for (index, function) in program.functions().iter().enumerate() {
        if index > 0 {
            out.push('\n');
        }
        write_function(program, function, &mut out);
    }
    out
}

fn write_function(program: &Program, function: &Function, out: &mut String) {
    let params: Vec<&str> = function
        .params()
        .iter()
        .map(|&p| program.var_table().display_name(p))
        .collect();
    out.push_str(&format!("{}({}) {{\n", function.name(), params.join(", ")));
    write_block(program, function, function.body(), 1, out);
    out.push_str("\n}\n");
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

/// Writes a statement block without a trailing newline (callers add the
/// separator appropriate for their position).
fn write_block(
    program: &Program,
    function: &Function,
    body: &[LStmt],
    depth: usize,
    out: &mut String,
) {
    for (index, stmt) in body.iter().enumerate() {
        if index > 0 {
            out.push_str(";\n");
        }
        if let Some(atoms) = function.pre_annotations().get(&stmt.label) {
            let rendered: Vec<String> = atoms
                .iter()
                .map(|atom| atom_to_source(program, atom))
                .collect();
            indent(depth, out);
            out.push_str(&format!("@pre({});\n", rendered.join(" && ")));
        }
        write_stmt(program, function, stmt, depth, out);
    }
}

fn write_stmt(
    program: &Program,
    function: &Function,
    stmt: &LStmt,
    depth: usize,
    out: &mut String,
) {
    indent(depth, out);
    let name = |v| program.var_table().display_name(v).to_string();
    match &stmt.kind {
        StmtKind::Skip => out.push_str("skip"),
        StmtKind::Assign { var, expr } => {
            out.push_str(&format!(
                "{} := {}",
                name(*var),
                poly_to_source(program, expr)
            ));
        }
        StmtKind::Havoc { var } => out.push_str(&format!("{} := *", name(*var))),
        StmtKind::Return { expr } => {
            out.push_str(&format!("return {}", poly_to_source(program, expr)));
        }
        StmtKind::Call { dest, callee, args } => {
            let args: Vec<String> = args.iter().map(|&a| name(a)).collect();
            out.push_str(&format!(
                "{} := {}({})",
                name(*dest),
                callee,
                args.join(", ")
            ));
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str(&format!("if {} then\n", formula_to_source(program, cond)));
            write_block(program, function, then_branch, depth + 1, out);
            out.push('\n');
            indent(depth, out);
            out.push_str("else\n");
            write_block(program, function, else_branch, depth + 1, out);
            out.push('\n');
            indent(depth, out);
            out.push_str("fi");
        }
        StmtKind::NondetIf {
            then_branch,
            else_branch,
        } => {
            out.push_str("if * then\n");
            write_block(program, function, then_branch, depth + 1, out);
            out.push('\n');
            indent(depth, out);
            out.push_str("else\n");
            write_block(program, function, else_branch, depth + 1, out);
            out.push('\n');
            indent(depth, out);
            out.push_str("fi");
        }
        StmtKind::While { cond, body } => {
            out.push_str(&format!("while {} do\n", formula_to_source(program, cond)));
            write_block(program, function, body, depth + 1, out);
            out.push('\n');
            indent(depth, out);
            out.push_str("od");
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&program_to_source(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use crate::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    fn reprint(source: &str) -> (String, String) {
        let program = parse_program(source).unwrap();
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program does not re-parse: {e}\n{printed}"));
        (printed, reparsed.to_string())
    }

    #[test]
    fn rationals_print_as_decimals_when_exact() {
        assert_eq!(rational_to_source(&Rational::from_int(3)), "3");
        assert_eq!(rational_to_source(&Rational::from_int(-7)), "-7");
        assert_eq!(rational_to_source(&Rational::new(1, 2)), "0.5");
        assert_eq!(rational_to_source(&Rational::new(-13, 4)), "-3.25");
        assert_eq!(rational_to_source(&Rational::new(1, 10_000)), "0.0001");
        assert_eq!(rational_to_source(&Rational::new(833, 5_000)), "0.1666");
        // No finite decimal form: deliberately unparseable.
        assert_eq!(rational_to_source(&Rational::new(1, 3)), "1/3");
    }

    #[test]
    fn printing_reaches_a_fixpoint_on_the_paper_examples() {
        for source in [RUNNING_EXAMPLE_SOURCE, RECURSIVE_EXAMPLE_SOURCE] {
            let (printed, reprinted) = reprint(source);
            assert_eq!(printed, reprinted);
        }
    }

    #[test]
    fn reparsed_programs_keep_their_shape() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let reparsed = parse_program(&program.to_string()).unwrap();
        assert_eq!(program.num_labels(), reparsed.num_labels());
        assert_eq!(program.var_table().len(), reparsed.var_table().len());
        for index in 0..program.num_labels() {
            let label = crate::program::Label::new(index);
            assert_eq!(program.label_kind(label), reparsed.label_kind(label));
        }
    }

    #[test]
    fn annotations_guards_and_calls_survive_printing() {
        let source = r#"
            main(x, y) {
                @pre(x >= 0 && y >= 1);
                while (x >= 0 && y >= 0) || !(x + y < 10) do
                    if * then
                        x := x - 0.5*y
                    else
                        z := helper(x, y)
                    fi;
                    y := y - 1
                od;
                return x
            }
            helper(a, b) {
                @pre(a >= 0);
                return a * b + 1
            }
        "#;
        let (printed, reprinted) = reprint(source);
        assert_eq!(printed, reprinted);
        // Comparisons are canonicalized: `y >= 1` becomes `-1 + y >= 0`.
        assert!(printed.contains("@pre(x >= 0 && -1 + y >= 0)"));
        assert!(printed.contains("z := helper(x, y)"));
        assert!(printed.contains("if * then"));
    }

    #[test]
    fn havoc_and_inner_annotations_round_trip() {
        let source = r#"
            f(s, e) {
                @pre(e >= s);
                j := *;
                @pre(j >= s && e >= j + 1);
                i := j + 1;
                return i
            }
        "#;
        let (printed, reprinted) = reprint(source);
        assert_eq!(printed, reprinted);
        assert!(printed.contains("j := *"));
    }
}
