//! Resolved programs: labels, variable tables and lowered statements.
//!
//! Resolution turns the raw AST into the representation used by the rest of
//! the workspace, mirroring Section 2 of the paper:
//!
//! * every statement receives a unique [`Label`] with its type
//!   ([`LabelKind`]: `L_a`, `L_b`, `L_c`, `L_d`), and every function an
//!   additional endpoint label of type `L_e`;
//! * every function `f` gets the *new variables* `ret_f` and `v̄₁ … v̄ₙ`
//!   (shadow parameters) of Section 2.2, and its variable set `V^f` collects
//!   the parameters, the new variables and every variable appearing in the
//!   body;
//! * arithmetic expressions are lowered to [`Polynomial`]s and guards to
//!   [`BoolFormula`]s;
//! * `@pre(...)` annotations are collected into a per-label pre-condition
//!   seed that [`crate::spec::Precondition`] can be built from.

use std::collections::HashMap;

use polyinv_poly::{Polynomial, VarId};

use crate::ast::{AstBExpr, AstExpr, AstFunction, AstProgram, AstStmt, AstStmtKind, CmpOp};
use crate::error::Error;
use crate::guard::{Atom, BoolFormula};

/// A program counter / label in the sense of Section 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(usize);

impl Label {
    /// Creates a label from a raw index.
    pub fn new(index: usize) -> Self {
        Label(index)
    }

    /// The raw index of the label.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The type of a label (the partition `L_a … L_e` of Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelKind {
    /// `L_a`: assignment, skip or return statements.
    Assign,
    /// `L_b`: conditional branching and while-loop statements.
    Branch,
    /// `L_c`: function-call statements.
    Call,
    /// `L_d`: non-deterministic branching statements (and havoc assignments).
    Nondet,
    /// `L_e`: function endpoints.
    End,
}

/// The role a variable plays within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// A function parameter `vᵢ`.
    Param,
    /// A shadow parameter `v̄ᵢ` holding the value passed by the caller.
    Shadow,
    /// The return-value variable `ret_f`.
    Return,
    /// Any other variable appearing in the body.
    Local,
}

/// Metadata about a program variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Pretty display name (e.g. `n`, `n_in`, `ret_sum`).
    pub display: String,
    /// The function owning the variable.
    pub function: String,
    /// The role of the variable.
    pub kind: VarKind,
}

/// The global table of program variables. Variable sets of different
/// functions are pairwise disjoint (as assumed w.l.o.g. in the paper), so a
/// single global table indexed by [`VarId`] suffices.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    infos: Vec<VarInfo>,
    lookup: HashMap<(String, String), VarId>,
}

impl VarTable {
    fn intern(&mut self, function: &str, name: &str, display: &str, kind: VarKind) -> VarId {
        let key = (function.to_string(), name.to_string());
        if let Some(&id) = self.lookup.get(&key) {
            return id;
        }
        let id = VarId::new(self.infos.len());
        self.infos.push(VarInfo {
            display: display.to_string(),
            function: function.to_string(),
            kind,
        });
        self.lookup.insert(key, id);
        id
    }

    /// Looks up a variable by function and source name.
    pub fn id_of(&self, function: &str, name: &str) -> Option<VarId> {
        self.lookup
            .get(&(function.to_string(), name.to_string()))
            .copied()
    }

    /// The metadata of a variable.
    pub fn info(&self, id: VarId) -> &VarInfo {
        &self.infos[id.index()]
    }

    /// The display name of a variable.
    pub fn display_name(&self, id: VarId) -> &str {
        &self.infos[id.index()].display
    }

    /// The total number of variables across all functions.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Returns `true` if no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }
}

/// A resolved, labeled statement.
#[derive(Debug, Clone, PartialEq)]
pub struct LStmt {
    /// The unique label of the statement.
    pub label: Label,
    /// The statement payload.
    pub kind: StmtKind,
    /// 1-based source line of the statement (`0` for synthesized statements
    /// such as the implicit trailing `return 0`).
    pub line: usize,
}

/// Resolved statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `skip`
    Skip,
    /// `v := e` with `e` lowered to a polynomial.
    Assign {
        /// Assigned variable.
        var: VarId,
        /// Right-hand side polynomial.
        expr: Polynomial,
    },
    /// `v := *` (non-deterministic assignment).
    Havoc {
        /// Assigned variable.
        var: VarId,
    },
    /// `if b then … else … fi`
    If {
        /// Branch condition.
        cond: BoolFormula,
        /// The `then` branch.
        then_branch: Vec<LStmt>,
        /// The `else` branch.
        else_branch: Vec<LStmt>,
    },
    /// `if ⋆ then … else … fi`
    NondetIf {
        /// The `then` branch.
        then_branch: Vec<LStmt>,
        /// The `else` branch.
        else_branch: Vec<LStmt>,
    },
    /// `while b do … od`
    While {
        /// Loop guard.
        cond: BoolFormula,
        /// Loop body.
        body: Vec<LStmt>,
    },
    /// `v := f(v₁, …, vₙ)`
    Call {
        /// Destination variable.
        dest: VarId,
        /// Callee function name.
        callee: String,
        /// Argument variables.
        args: Vec<VarId>,
    },
    /// `return e`
    Return {
        /// Returned polynomial expression.
        expr: Polynomial,
    },
}

/// A resolved function.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    params: Vec<VarId>,
    shadow_params: Vec<VarId>,
    ret_var: VarId,
    vars: Vec<VarId>,
    body: Vec<LStmt>,
    entry_label: Label,
    exit_label: Label,
    labels: Vec<Label>,
    pre_annotations: HashMap<Label, Vec<Atom>>,
}

impl Function {
    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter variables `v₁ … vₙ`.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// The shadow parameters `v̄₁ … v̄ₙ`.
    pub fn shadow_params(&self) -> &[VarId] {
        &self.shadow_params
    }

    /// The return-value variable `ret_f`.
    pub fn ret_var(&self) -> VarId {
        self.ret_var
    }

    /// The variable set `V^f`, sorted by id.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The resolved function body.
    pub fn body(&self) -> &[LStmt] {
        &self.body
    }

    /// The entry label `ℓ_in^f`.
    pub fn entry_label(&self) -> Label {
        self.entry_label
    }

    /// The endpoint label `ℓ_out^f`.
    pub fn exit_label(&self) -> Label {
        self.exit_label
    }

    /// All labels belonging to the function (including the endpoint label).
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Pre-condition atoms contributed by `@pre(...)` annotations, keyed by
    /// the label they attach to.
    pub fn pre_annotations(&self) -> &HashMap<Label, Vec<Atom>> {
        &self.pre_annotations
    }
}

/// A fully resolved program.
#[derive(Debug, Clone)]
pub struct Program {
    functions: Vec<Function>,
    var_table: VarTable,
    label_kinds: Vec<LabelKind>,
    label_function: Vec<usize>,
    main_index: usize,
}

impl Program {
    /// The functions of the program, in source order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// The distinguished `fmain` function (the first function in the
    /// source, following the paper's convention).
    pub fn main(&self) -> &Function {
        &self.functions[self.main_index]
    }

    /// The global variable table.
    pub fn var_table(&self) -> &VarTable {
        &self.var_table
    }

    /// The total number of labels in the program.
    pub fn num_labels(&self) -> usize {
        self.label_kinds.len()
    }

    /// The type of a label.
    pub fn label_kind(&self, label: Label) -> LabelKind {
        self.label_kinds[label.index()]
    }

    /// The function a label belongs to.
    pub fn label_function(&self, label: Label) -> &Function {
        &self.functions[self.label_function[label.index()]]
    }

    /// The 1-based source line of the statement at a label, when the label
    /// belongs to a source statement (endpoint labels and synthesized
    /// statements have no source line).
    pub fn line_of_label(&self, label: Label) -> Option<usize> {
        fn search(body: &[LStmt], label: Label) -> Option<usize> {
            for stmt in body {
                if stmt.label == label {
                    return (stmt.line > 0).then_some(stmt.line);
                }
                let nested = match &stmt.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    }
                    | StmtKind::NondetIf {
                        then_branch,
                        else_branch,
                    } => search(then_branch, label).or_else(|| search(else_branch, label)),
                    StmtKind::While { body, .. } => search(body, label),
                    _ => None,
                };
                if nested.is_some() {
                    return nested;
                }
            }
            None
        }
        self.functions.iter().find_map(|f| search(f.body(), label))
    }

    /// Returns `true` if the program contains no function-call statements
    /// and only one function (a *simple* program in the paper's
    /// terminology).
    pub fn is_simple(&self) -> bool {
        self.functions.len() == 1 && !self.label_kinds.contains(&LabelKind::Call)
    }

    /// Lowers a parsed comparison into `(p, strict)` such that the assertion
    /// is `p > 0` (strict) or `p ≥ 0`, in the variable scope of `func`.
    ///
    /// The return-value variable of `func` can be referred to as `ret`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if `func` does not exist or the comparison
    /// mentions unknown variables.
    pub fn lower_comparison(
        &self,
        func: &str,
        cmp: &AstBExpr,
    ) -> Result<(Polynomial, bool), Error> {
        let function = self
            .function(func)
            .ok_or_else(|| Error::new(format!("unknown function `{func}`")))?;
        match cmp {
            AstBExpr::Cmp(lhs, op, rhs) => {
                let lhs = self.lower_expr_readonly(function, lhs)?;
                let rhs = self.lower_expr_readonly(function, rhs)?;
                Ok(lower_comparison_parts(&lhs, *op, &rhs))
            }
            _ => Err(Error::new("expected a single comparison")),
        }
    }

    /// Lowers an expression using only existing variables of `function`
    /// (unknown variables are an error rather than being created).
    fn lower_expr_readonly(
        &self,
        function: &Function,
        expr: &AstExpr,
    ) -> Result<Polynomial, Error> {
        match expr {
            AstExpr::Var(name) => {
                let id = if name == "ret" {
                    Some(function.ret_var())
                } else {
                    self.var_table.id_of(function.name(), name).or_else(|| {
                        // Shadow parameters can be referred to by their
                        // display name `<param>_in`.
                        name.strip_suffix("_in").and_then(|base| {
                            self.var_table
                                .id_of(function.name(), &format!("{base}#shadow"))
                        })
                    })
                }
                .ok_or_else(|| {
                    Error::new(format!(
                        "unknown variable `{name}` in function `{}`",
                        function.name()
                    ))
                })?;
                Ok(Polynomial::variable(id))
            }
            AstExpr::Const(value) => Ok(Polynomial::constant(*value)),
            AstExpr::Add(a, b) => {
                Ok(self.lower_expr_readonly(function, a)?
                    + self.lower_expr_readonly(function, b)?)
            }
            AstExpr::Sub(a, b) => {
                Ok(self.lower_expr_readonly(function, a)?
                    - self.lower_expr_readonly(function, b)?)
            }
            AstExpr::Mul(a, b) => {
                Ok(&self.lower_expr_readonly(function, a)?
                    * &self.lower_expr_readonly(function, b)?)
            }
            AstExpr::Neg(a) => Ok(-self.lower_expr_readonly(function, a)?),
        }
    }

    /// A human-readable rendering of a polynomial in the scope of the
    /// program's variable names.
    pub fn render_poly(&self, poly: &Polynomial) -> String {
        poly.display_with(|v| self.var_table.display_name(v).to_string())
    }
}

/// Resolves a parsed program.
///
/// # Errors
///
/// Returns an [`Error`] if the program violates the well-formedness rules of
/// Appendix A (duplicate function definitions, duplicate parameters, calls
/// to undefined functions, arity mismatches, a variable appearing on both
/// sides of a call, or an `@pre` annotation with no following statement).
pub fn resolve(ast: &AstProgram) -> Result<Program, Error> {
    let mut names = Vec::new();
    for func in &ast.functions {
        if names.contains(&func.name) {
            return Err(Error::at_line(
                format!("function `{}` is defined more than once", func.name),
                func.line,
            ));
        }
        names.push(func.name.clone());
    }
    let arities: HashMap<String, usize> = ast
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.params.len()))
        .collect();

    let mut resolver = Resolver {
        var_table: VarTable::default(),
        label_kinds: Vec::new(),
        label_function: Vec::new(),
        arities,
    };
    let mut functions = Vec::new();
    for (index, func) in ast.functions.iter().enumerate() {
        functions.push(resolver.resolve_function(func, index)?);
    }
    Ok(Program {
        functions,
        var_table: resolver.var_table,
        label_kinds: resolver.label_kinds,
        label_function: resolver.label_function,
        main_index: 0,
    })
}

struct Resolver {
    var_table: VarTable,
    label_kinds: Vec<LabelKind>,
    label_function: Vec<usize>,
    arities: HashMap<String, usize>,
}

impl Resolver {
    fn fresh_label(&mut self, kind: LabelKind, function_index: usize) -> Label {
        let label = Label::new(self.label_kinds.len());
        self.label_kinds.push(kind);
        self.label_function.push(function_index);
        label
    }

    fn resolve_function(
        &mut self,
        func: &AstFunction,
        function_index: usize,
    ) -> Result<Function, Error> {
        for (i, p) in func.params.iter().enumerate() {
            if func.params[..i].contains(p) {
                return Err(Error::at_line(
                    format!("duplicate parameter `{p}` in function `{}`", func.name),
                    func.line,
                ));
            }
        }
        let params: Vec<VarId> = func
            .params
            .iter()
            .map(|p| self.var_table.intern(&func.name, p, p, VarKind::Param))
            .collect();
        let shadow_params: Vec<VarId> = func
            .params
            .iter()
            .map(|p| {
                self.var_table.intern(
                    &func.name,
                    &format!("{p}#shadow"),
                    &format!("{p}_in"),
                    VarKind::Shadow,
                )
            })
            .collect();
        let ret_var = self.var_table.intern(
            &func.name,
            "#ret",
            &format!("ret_{}", func.name),
            VarKind::Return,
        );

        let mut ctx = FunctionContext {
            resolver: self,
            function_name: func.name.clone(),
            function_index,
            pre_annotations: HashMap::new(),
        };
        let mut body = ctx.resolve_stmt_list(&func.body)?;
        let pre_annotations = ctx.pre_annotations;

        // Return assumption: if the body does not end in a statement that
        // returns on every path, append `return 0`.
        let ends_with_return = body.last().is_some_and(always_returns);
        if !ends_with_return {
            let label = self.fresh_label(LabelKind::Assign, function_index);
            body.push(LStmt {
                label,
                kind: StmtKind::Return {
                    expr: Polynomial::zero(),
                },
                line: 0,
            });
        }
        let exit_label = self.fresh_label(LabelKind::End, function_index);

        let mut labels = Vec::new();
        collect_labels(&body, &mut labels);
        labels.push(exit_label);
        let entry_label = labels[0];

        let mut vars: Vec<VarId> = Vec::new();
        vars.extend_from_slice(&params);
        vars.extend_from_slice(&shadow_params);
        vars.push(ret_var);
        collect_vars(&body, &mut vars);
        for atoms in pre_annotations.values() {
            for atom in atoms {
                vars.extend(atom.poly.variables());
            }
        }
        vars.sort();
        vars.dedup();

        Ok(Function {
            name: func.name.clone(),
            params,
            shadow_params,
            ret_var,
            vars,
            body,
            entry_label,
            exit_label,
            labels,
            pre_annotations,
        })
    }
}

struct FunctionContext<'a> {
    resolver: &'a mut Resolver,
    function_name: String,
    function_index: usize,
    pre_annotations: HashMap<Label, Vec<Atom>>,
}

impl<'a> FunctionContext<'a> {
    fn var(&mut self, name: &str) -> VarId {
        self.resolver
            .var_table
            .intern(&self.function_name, name, name, VarKind::Local)
    }

    fn fresh_label(&mut self, kind: LabelKind) -> Label {
        self.resolver.fresh_label(kind, self.function_index)
    }

    fn lower_expr(&mut self, expr: &AstExpr) -> Polynomial {
        match expr {
            AstExpr::Var(name) => Polynomial::variable(self.var(name)),
            AstExpr::Const(value) => Polynomial::constant(*value),
            AstExpr::Add(a, b) => self.lower_expr(a) + self.lower_expr(b),
            AstExpr::Sub(a, b) => self.lower_expr(a) - self.lower_expr(b),
            AstExpr::Mul(a, b) => &self.lower_expr(a) * &self.lower_expr(b),
            AstExpr::Neg(a) => -self.lower_expr(a),
        }
    }

    fn lower_bexpr(&mut self, bexpr: &AstBExpr) -> BoolFormula {
        match bexpr {
            AstBExpr::Cmp(lhs, op, rhs) => {
                let lhs = self.lower_expr(lhs);
                let rhs = self.lower_expr(rhs);
                let (poly, strict) = lower_comparison_parts(&lhs, *op, &rhs);
                BoolFormula::Atom(if strict {
                    Atom::strict(poly)
                } else {
                    Atom::non_strict(poly)
                })
            }
            AstBExpr::Not(inner) => BoolFormula::Not(Box::new(self.lower_bexpr(inner))),
            AstBExpr::And(a, b) => BoolFormula::And(vec![self.lower_bexpr(a), self.lower_bexpr(b)]),
            AstBExpr::Or(a, b) => BoolFormula::Or(vec![self.lower_bexpr(a), self.lower_bexpr(b)]),
        }
    }

    fn resolve_stmt_list(&mut self, stmts: &[AstStmt]) -> Result<Vec<LStmt>, Error> {
        let mut result = Vec::new();
        let mut pending: Vec<Atom> = Vec::new();
        for stmt in stmts {
            if let AstStmtKind::PreAnnotation { cond } = &stmt.kind {
                let formula = self.lower_bexpr(cond);
                let atoms = flatten_conjunction(&formula).ok_or_else(|| {
                    Error::at_line(
                        "`@pre` annotations must be conjunctions of comparisons",
                        stmt.line,
                    )
                })?;
                pending.extend(atoms);
                continue;
            }
            let resolved = self.resolve_stmt(stmt)?;
            if !pending.is_empty() {
                self.pre_annotations
                    .entry(resolved.label)
                    .or_default()
                    .extend(std::mem::take(&mut pending));
            }
            result.push(resolved);
        }
        if !pending.is_empty() {
            return Err(Error::new(
                "`@pre` annotation must be followed by a statement in the same block",
            ));
        }
        if result.is_empty() {
            return Err(Error::new("statement blocks must not be empty"));
        }
        Ok(result)
    }

    fn resolve_stmt(&mut self, stmt: &AstStmt) -> Result<LStmt, Error> {
        match &stmt.kind {
            AstStmtKind::Skip => {
                let label = self.fresh_label(LabelKind::Assign);
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::Skip,
                })
            }
            AstStmtKind::Assign { var, expr } => {
                let label = self.fresh_label(LabelKind::Assign);
                let var = self.var(var);
                let expr = self.lower_expr(expr);
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::Assign { var, expr },
                })
            }
            AstStmtKind::Havoc { var } => {
                let label = self.fresh_label(LabelKind::Nondet);
                let var = self.var(var);
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::Havoc { var },
                })
            }
            AstStmtKind::Return { expr } => {
                let label = self.fresh_label(LabelKind::Assign);
                let expr = self.lower_expr(expr);
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::Return { expr },
                })
            }
            AstStmtKind::Call { dest, callee, args } => {
                let arity = self.resolver.arities.get(callee).copied().ok_or_else(|| {
                    Error::at_line(format!("call to undefined function `{callee}`"), stmt.line)
                })?;
                if arity != args.len() {
                    return Err(Error::at_line(
                        format!(
                            "function `{callee}` expects {arity} argument(s), got {}",
                            args.len()
                        ),
                        stmt.line,
                    ));
                }
                if args.contains(dest) {
                    return Err(Error::at_line(
                        format!("variable `{dest}` appears on both sides of a call"),
                        stmt.line,
                    ));
                }
                let label = self.fresh_label(LabelKind::Call);
                let dest = self.var(dest);
                let args: Vec<VarId> = args.iter().map(|a| self.var(a)).collect();
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::Call {
                        dest,
                        callee: callee.clone(),
                        args,
                    },
                })
            }
            AstStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let label = self.fresh_label(LabelKind::Branch);
                let cond = self.lower_bexpr(cond);
                let then_branch = self.resolve_stmt_list(then_branch)?;
                let else_branch = self.resolve_stmt_list(else_branch)?;
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    },
                })
            }
            AstStmtKind::NondetIf {
                then_branch,
                else_branch,
            } => {
                let label = self.fresh_label(LabelKind::Nondet);
                let then_branch = self.resolve_stmt_list(then_branch)?;
                let else_branch = self.resolve_stmt_list(else_branch)?;
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::NondetIf {
                        then_branch,
                        else_branch,
                    },
                })
            }
            AstStmtKind::While { cond, body } => {
                let label = self.fresh_label(LabelKind::Branch);
                let cond = self.lower_bexpr(cond);
                let body = self.resolve_stmt_list(body)?;
                Ok(LStmt {
                    label,
                    line: stmt.line,
                    kind: StmtKind::While { cond, body },
                })
            }
            AstStmtKind::PreAnnotation { .. } => {
                unreachable!("annotations are handled by resolve_stmt_list")
            }
        }
    }
}

/// Returns `true` if the statement returns on every execution path.
fn always_returns(stmt: &LStmt) -> bool {
    match &stmt.kind {
        StmtKind::Return { .. } => true,
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        }
        | StmtKind::NondetIf {
            then_branch,
            else_branch,
        } => {
            then_branch.last().is_some_and(always_returns)
                && else_branch.last().is_some_and(always_returns)
        }
        _ => false,
    }
}

fn collect_labels(body: &[LStmt], out: &mut Vec<Label>) {
    for stmt in body {
        out.push(stmt.label);
        match &stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            }
            | StmtKind::NondetIf {
                then_branch,
                else_branch,
            } => {
                collect_labels(then_branch, out);
                collect_labels(else_branch, out);
            }
            StmtKind::While { body, .. } => collect_labels(body, out),
            _ => {}
        }
    }
}

fn collect_vars(body: &[LStmt], out: &mut Vec<VarId>) {
    for stmt in body {
        match &stmt.kind {
            StmtKind::Assign { var, expr } => {
                out.push(*var);
                out.extend(expr.variables());
            }
            StmtKind::Havoc { var } => out.push(*var),
            StmtKind::Return { expr } => out.extend(expr.variables()),
            StmtKind::Call { dest, args, .. } => {
                out.push(*dest);
                out.extend_from_slice(args);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                for atom in cond.atoms() {
                    out.extend(atom.poly.variables());
                }
                collect_vars(then_branch, out);
                collect_vars(else_branch, out);
            }
            StmtKind::NondetIf {
                then_branch,
                else_branch,
            } => {
                collect_vars(then_branch, out);
                collect_vars(else_branch, out);
            }
            StmtKind::While { cond, body } => {
                for atom in cond.atoms() {
                    out.extend(atom.poly.variables());
                }
                collect_vars(body, out);
            }
            StmtKind::Skip => {}
        }
    }
}

/// Converts a conjunction-only formula into its list of atoms; returns
/// `None` if the formula contains disjunctions.
fn flatten_conjunction(formula: &BoolFormula) -> Option<Vec<Atom>> {
    match formula.to_nnf() {
        BoolFormula::Atom(atom) => Some(vec![atom]),
        BoolFormula::And(parts) => {
            let mut atoms = Vec::new();
            for part in parts {
                atoms.extend(flatten_conjunction(&part)?);
            }
            Some(atoms)
        }
        _ => None,
    }
}

/// Lowers `lhs ▷◁ rhs` into `(p, strict)` with meaning `p > 0` (strict) or
/// `p ≥ 0` (non-strict).
fn lower_comparison_parts(lhs: &Polynomial, op: CmpOp, rhs: &Polynomial) -> (Polynomial, bool) {
    match op {
        CmpOp::Lt => (rhs - lhs, true),
        CmpOp::Le => (rhs - lhs, false),
        CmpOp::Ge => (lhs - rhs, false),
        CmpOp::Gt => (lhs - rhs, true),
    }
}

/// The running example of the paper (Figure 2), provided for tests,
/// examples and documentation.
pub const RUNNING_EXAMPLE_SOURCE: &str = r#"
sum(n) {
    @pre(n >= 1);
    i := 1;
    s := 0;
    while i <= n do
        if * then
            s := s + i
        else
            skip
        fi;
        i := i + 1
    od;
    return s
}
"#;

/// The recursive variant of the running example (Figure 4).
pub const RECURSIVE_EXAMPLE_SOURCE: &str = r#"
rsum(n) {
    @pre(n >= 0);
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := rsum(m);
        if * then
            s := s + n
        else
            skip
        fi;
        return s
    fi
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn running_example_has_the_expected_shape() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        assert!(program.is_simple());
        let func = program.main();
        assert_eq!(func.name(), "sum");
        // Labels: i:=1, s:=0, while, if*, s:=s+i, skip, i:=i+1, return, end = 9.
        assert_eq!(func.labels().len(), 9);
        assert_eq!(program.label_kind(func.entry_label()), LabelKind::Assign);
        assert_eq!(program.label_kind(func.exit_label()), LabelKind::End);
        // V^sum = {n, n_in, ret_sum, i, s}.
        assert_eq!(func.vars().len(), 5);
        // The @pre annotation attaches to the entry label.
        assert!(func.pre_annotations().contains_key(&func.entry_label()));
    }

    #[test]
    fn recursive_example_resolves_call() {
        let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
        assert!(!program.is_simple());
        let func = program.main();
        let call_labels: Vec<Label> = func
            .labels()
            .iter()
            .copied()
            .filter(|&l| program.label_kind(l) == LabelKind::Call)
            .collect();
        assert_eq!(call_labels.len(), 1);
        // V^rsum = {n, n_in, ret, m, s}.
        assert_eq!(func.vars().len(), 5);
    }

    #[test]
    fn label_kinds_partition_matches_statement_types() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let func = program.main();
        let mut counts: HashMap<LabelKind, usize> = HashMap::new();
        for &label in func.labels() {
            *counts.entry(program.label_kind(label)).or_insert(0) += 1;
        }
        assert_eq!(counts[&LabelKind::Assign], 6); // i:=1, s:=0, s:=s+i, skip, i:=i+1, return
        assert_eq!(counts[&LabelKind::Branch], 1); // while
        assert_eq!(counts[&LabelKind::Nondet], 1); // if *
        assert_eq!(counts[&LabelKind::End], 1);
    }

    #[test]
    fn functions_get_return_zero_appended() {
        let program = parse_program("f(x) { y := x + 1 }").unwrap();
        let func = program.main();
        assert!(matches!(
            func.body().last().unwrap().kind,
            StmtKind::Return { .. }
        ));
    }

    #[test]
    fn rejects_ill_formed_programs() {
        assert!(parse_program("f(x, x) { return x }").is_err());
        assert!(parse_program("f(x) { return x } f(y) { return y }").is_err());
        assert!(parse_program("f(x) { y := g(x); return y }").is_err());
        assert!(parse_program("main(x) { y := h(x, x); return y } h(a) { return a }").is_err());
        assert!(parse_program("main(x) { x := h(x); return x } h(a) { return a }").is_err());
        assert!(parse_program("f(x) { skip; @pre(x >= 0) }").is_err());
    }

    #[test]
    fn lower_comparison_handles_all_operators() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let cmp =
            crate::parser::parse_comparison(&crate::lexer::tokenize("n > 2").unwrap()).unwrap();
        let (p, strict) = program.lower_comparison("sum", &cmp).unwrap();
        assert!(strict);
        assert_eq!(program.render_poly(&p), "-2 + n");
        let cmp =
            crate::parser::parse_comparison(&crate::lexer::tokenize("i <= n").unwrap()).unwrap();
        let (p2, strict2) = program.lower_comparison("sum", &cmp).unwrap();
        assert!(!strict2);
        assert_eq!(program.render_poly(&p2), "n - i");
        // `ret` resolves to the return variable.
        let cmp =
            crate::parser::parse_comparison(&crate::lexer::tokenize("ret >= 0").unwrap()).unwrap();
        let (p3, _) = program.lower_comparison("sum", &cmp).unwrap();
        assert_eq!(program.render_poly(&p3), "ret_sum");
    }

    #[test]
    fn variables_are_scoped_per_function() {
        let source = r#"
            main(x) { y := helper(x); return y }
            helper(x) { return x * x }
        "#;
        let program = parse_program(source).unwrap();
        let main_x = program.var_table().id_of("main", "x").unwrap();
        let helper_x = program.var_table().id_of("helper", "x").unwrap();
        assert_ne!(main_x, helper_x);
        let info = program.var_table().info(helper_x);
        assert_eq!(info.kind, VarKind::Param);
        assert_eq!(info.function, "helper");
    }

    #[test]
    fn pre_annotations_inside_loops_attach_to_inner_labels() {
        let source = r#"
            f(x) {
                while x >= 1 do
                    @pre(x <= 100);
                    x := x - 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        let func = program.main();
        assert_eq!(func.pre_annotations().len(), 1);
        let (&label, atoms) = func.pre_annotations().iter().next().unwrap();
        assert_eq!(program.label_kind(label), LabelKind::Assign);
        assert_eq!(atoms.len(), 1);
    }
}
