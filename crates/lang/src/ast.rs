//! Raw abstract syntax tree produced by the parser.
//!
//! The AST mirrors the grammar of Figure 5 of the paper, with three
//! pragmatic extensions used by the benchmark suite:
//!
//! * `@pre(φ)` annotation statements attaching a pre-condition to the label
//!   of the *following* statement,
//! * non-deterministic ("havoc") assignments `x := *`,
//! * line comments starting with `//` (handled by the lexer).
//!
//! Names are plain strings at this stage; the resolver in
//! [`crate::program`] lowers them to variable ids and polynomials.

use polyinv_arith::Rational;

/// A parsed program: a non-empty list of function definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct AstProgram {
    /// The function definitions in source order.
    pub functions: Vec<AstFunction>,
}

/// A parsed function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct AstFunction {
    /// The function name.
    pub name: String,
    /// The parameter names (pairwise distinct).
    pub params: Vec<String>,
    /// The function body.
    pub body: Vec<AstStmt>,
    /// Source line of the definition (for error messages).
    pub line: usize,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AstStmt {
    /// The statement payload.
    pub kind: AstStmtKind,
    /// Source line of the statement.
    pub line: usize,
}

/// The different statement forms of the grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum AstStmtKind {
    /// `skip`
    Skip,
    /// `v := e`
    Assign { var: String, expr: AstExpr },
    /// `v := *` — non-deterministic (havoc) assignment. Extension of the
    /// paper's grammar used to model operations such as `⌊·⌋` in the
    /// merge-sort benchmark.
    Havoc { var: String },
    /// `if b then … else … fi`
    If {
        cond: AstBExpr,
        then_branch: Vec<AstStmt>,
        else_branch: Vec<AstStmt>,
    },
    /// `if * then … else … fi`
    NondetIf {
        then_branch: Vec<AstStmt>,
        else_branch: Vec<AstStmt>,
    },
    /// `while b do … od`
    While { cond: AstBExpr, body: Vec<AstStmt> },
    /// `v := f(v₁, …, vₙ)`
    Call {
        dest: String,
        callee: String,
        args: Vec<String>,
    },
    /// `return e`
    Return { expr: AstExpr },
    /// `@pre(b)` — attaches the (conjunctive) condition to the label of the
    /// next statement.
    PreAnnotation { cond: AstBExpr },
}

/// A polynomial arithmetic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// A variable reference.
    Var(String),
    /// A rational constant.
    Const(Rational),
    /// Addition.
    Add(Box<AstExpr>, Box<AstExpr>),
    /// Subtraction.
    Sub(Box<AstExpr>, Box<AstExpr>),
    /// Multiplication.
    Mul(Box<AstExpr>, Box<AstExpr>),
    /// Unary negation.
    Neg(Box<AstExpr>),
}

/// The comparison operators of the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

/// A propositional polynomial predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum AstBExpr {
    /// `e₁ ▷◁ e₂`
    Cmp(AstExpr, CmpOp, AstExpr),
    /// Negation.
    Not(Box<AstBExpr>),
    /// Conjunction.
    And(Box<AstBExpr>, Box<AstBExpr>),
    /// Disjunction.
    Or(Box<AstBExpr>, Box<AstBExpr>),
}

impl AstExpr {
    /// Convenience constructor for a variable expression.
    pub fn var(name: &str) -> Self {
        AstExpr::Var(name.to_string())
    }

    /// Convenience constructor for an integer constant.
    pub fn int(value: i64) -> Self {
        AstExpr::Const(Rational::from_int(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_constructors() {
        let e = AstExpr::Add(Box::new(AstExpr::var("x")), Box::new(AstExpr::int(3)));
        match e {
            AstExpr::Add(lhs, rhs) => {
                assert_eq!(*lhs, AstExpr::Var("x".to_string()));
                assert_eq!(*rhs, AstExpr::Const(Rational::from_int(3)));
            }
            _ => panic!("unexpected shape"),
        }
    }
}
