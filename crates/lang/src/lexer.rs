//! Hand-written lexer for the mini-language.

use polyinv_arith::Rational;

use crate::error::Error;

/// A lexical token together with its 1-based source line and column.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column of the token's first character.
    pub column: usize,
}

/// The token kinds of the mini-language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate.
    Ident(String),
    /// A numeric literal (integer or decimal), stored exactly.
    Number(Rational),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `&&` or the keyword `and`
    And,
    /// `||` or the keyword `or`
    Or,
    /// `@pre`
    AtPre,
}

impl TokenKind {
    /// A short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Number(value) => format!("number `{value}`"),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Semicolon => "`;`".to_string(),
            TokenKind::Assign => "`:=`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::Le => "`<=`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::Ge => "`>=`".to_string(),
            TokenKind::Bang => "`!`".to_string(),
            TokenKind::And => "`&&`".to_string(),
            TokenKind::Or => "`||`".to_string(),
            TokenKind::AtPre => "`@pre`".to_string(),
        }
    }
}

/// Tokenizes a source string.
///
/// Line comments start with `//` and run to the end of the line. Identifiers
/// may contain letters, digits, `_` and a trailing sequence of `'`
/// characters (so `n'` is a valid variable name).
///
/// # Errors
///
/// Returns an [`Error`] carrying the line/column span on unexpected
/// characters or malformed numbers.
pub fn tokenize(source: &str) -> Result<Vec<Token>, Error> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut pos = 0;
    let mut line = 1;
    // Character index right after the most recent newline; `pos -
    // line_start + 1` is the 1-based column of the character at `pos`.
    let mut line_start = 0;
    while pos < chars.len() {
        let c = chars[pos];
        let column = pos - line_start + 1;
        let mut push = |kind: TokenKind| tokens.push(Token { kind, line, column });
        match c {
            '\n' => {
                line += 1;
                pos += 1;
                line_start = pos;
            }
            ' ' | '\t' | '\r' => pos += 1,
            '/' if pos + 1 < chars.len() && chars[pos + 1] == '/' => {
                while pos < chars.len() && chars[pos] != '\n' {
                    pos += 1;
                }
            }
            '(' => {
                push(TokenKind::LParen);
                pos += 1;
            }
            ')' => {
                push(TokenKind::RParen);
                pos += 1;
            }
            '{' => {
                push(TokenKind::LBrace);
                pos += 1;
            }
            '}' => {
                push(TokenKind::RBrace);
                pos += 1;
            }
            ',' => {
                push(TokenKind::Comma);
                pos += 1;
            }
            ';' => {
                push(TokenKind::Semicolon);
                pos += 1;
            }
            '+' => {
                push(TokenKind::Plus);
                pos += 1;
            }
            '-' => {
                push(TokenKind::Minus);
                pos += 1;
            }
            '*' => {
                push(TokenKind::Star);
                pos += 1;
            }
            '!' => {
                push(TokenKind::Bang);
                pos += 1;
            }
            ':' => {
                if pos + 1 < chars.len() && chars[pos + 1] == '=' {
                    push(TokenKind::Assign);
                    pos += 2;
                } else {
                    return Err(Error::at("expected `:=`", line, column));
                }
            }
            '<' => {
                if pos + 1 < chars.len() && chars[pos + 1] == '=' {
                    push(TokenKind::Le);
                    pos += 2;
                } else {
                    push(TokenKind::Lt);
                    pos += 1;
                }
            }
            '>' => {
                if pos + 1 < chars.len() && chars[pos + 1] == '=' {
                    push(TokenKind::Ge);
                    pos += 2;
                } else {
                    push(TokenKind::Gt);
                    pos += 1;
                }
            }
            '&' => {
                if pos + 1 < chars.len() && chars[pos + 1] == '&' {
                    push(TokenKind::And);
                    pos += 2;
                } else {
                    return Err(Error::at("expected `&&`", line, column));
                }
            }
            '|' => {
                if pos + 1 < chars.len() && chars[pos + 1] == '|' {
                    push(TokenKind::Or);
                    pos += 2;
                } else {
                    return Err(Error::at("expected `||`", line, column));
                }
            }
            '@' => {
                // Only `@pre` is recognized.
                let start = pos + 1;
                let mut end = start;
                while end < chars.len() && chars[end].is_ascii_alphanumeric() {
                    end += 1;
                }
                let word: String = chars[start..end].iter().collect();
                if word == "pre" {
                    push(TokenKind::AtPre);
                    pos = end;
                } else {
                    return Err(Error::at(
                        format!("unknown annotation `@{word}` (only `@pre` is supported)"),
                        line,
                        column,
                    ));
                }
            }
            c if c.is_ascii_digit() => {
                let start = pos;
                let mut end = pos;
                let mut seen_dot = false;
                while end < chars.len()
                    && (chars[end].is_ascii_digit() || (chars[end] == '.' && !seen_dot))
                {
                    if chars[end] == '.' {
                        seen_dot = true;
                    }
                    end += 1;
                }
                let text: String = chars[start..end].iter().collect();
                let value: Rational = text
                    .parse()
                    .map_err(|_| Error::at(format!("invalid number `{text}`"), line, column))?;
                push(TokenKind::Number(value));
                pos = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = pos;
                let mut end = pos;
                while end < chars.len()
                    && (chars[end].is_ascii_alphanumeric()
                        || chars[end] == '_'
                        || chars[end] == '\'')
                {
                    end += 1;
                }
                let word: String = chars[start..end].iter().collect();
                let kind = match word.as_str() {
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Bang,
                    _ => TokenKind::Ident(word),
                };
                push(kind);
                pos = end;
            }
            other => {
                return Err(Error::at(
                    format!("unexpected character `{other}`"),
                    line,
                    column,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_assignment() {
        assert_eq!(
            kinds("x := x + 1;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Number(Rational::from_int(1)),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn tokenizes_decimals_and_comparisons() {
        assert_eq!(
            kinds("0.5 * n <= y >= 2"),
            vec![
                TokenKind::Number(Rational::new(1, 2)),
                TokenKind::Star,
                TokenKind::Ident("n".into()),
                TokenKind::Le,
                TokenKind::Ident("y".into()),
                TokenKind::Ge,
                TokenKind::Number(Rational::from_int(2)),
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let tokens = tokenize("x := 1; // set x\ny := 2").unwrap();
        assert_eq!(tokens.last().unwrap().line, 2);
        assert_eq!(tokens.len(), 7);
    }

    #[test]
    fn tracks_columns_within_a_line() {
        let tokens = tokenize("x := 1;\n  y := 22").unwrap();
        let columns: Vec<(usize, usize)> = tokens.iter().map(|t| (t.line, t.column)).collect();
        assert_eq!(
            columns,
            vec![(1, 1), (1, 3), (1, 6), (1, 7), (2, 3), (2, 5), (2, 8)]
        );
    }

    #[test]
    fn recognizes_annotations_and_keyword_operators() {
        assert_eq!(
            kinds("@pre(n >= 0 and x > 1 or not y < 2)")[0],
            TokenKind::AtPre
        );
        assert!(kinds("a and b").contains(&TokenKind::And));
        assert!(kinds("a or b").contains(&TokenKind::Or));
    }

    #[test]
    fn rejects_stray_characters_with_spans() {
        assert!(tokenize("x := #").is_err());
        assert!(tokenize("x : 1").is_err());
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("@post(x)").is_err());
        let error = tokenize("x := #").unwrap_err();
        assert_eq!(error.line(), Some(1));
        assert_eq!(error.column(), Some(6));
        let error = tokenize("x := 1;\n  y & 2").unwrap_err();
        assert_eq!(error.line(), Some(2));
        assert_eq!(error.column(), Some(5));
    }

    #[test]
    fn primed_identifiers_are_allowed() {
        assert_eq!(kinds("n'")[0], TokenKind::Ident("n'".into()));
    }
}
