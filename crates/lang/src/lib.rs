//! Front-end for the paper's mini-language of non-deterministic recursive
//! programs with polynomial assignments and guards (Figures 1 and 5).
//!
//! The crate provides:
//!
//! * [`ast`] — the raw abstract syntax tree produced by the parser;
//! * [`lexer`] / [`parser`] — a hand-written lexer and recursive-descent
//!   parser for the grammar of Figure 5, extended with `@pre(...)`
//!   annotations, non-deterministic assignments `x := *` and line comments;
//! * [`program`] — the *resolved* program: every statement carries a unique
//!   [`Label`](program::Label) with its type (`L_a` … `L_e`), expressions are
//!   lowered to [`polyinv_poly::Polynomial`]s, and each function knows its
//!   variable set `V^f` including the `ret_f` and shadow-parameter variables
//!   required by the paper's semantics;
//! * [`cfg`] — control-flow graphs in the sense of Section 2.2;
//! * [`guard`] — propositional polynomial predicates with negation-normal
//!   form and DNF conversion (used by Step 2 of the algorithm);
//! * [`spec`] — pre-conditions, post-conditions and invariant maps;
//! * [`interp`] — a concrete interpreter of the stack semantics of
//!   Section 2.2, used for testing and for falsifying candidate invariants;
//! * [`printer`] — a pretty-printer rendering resolved programs back to
//!   parseable `.poly` source (`Program` implements `Display`), so
//!   generated programs round-trip through the real parser.
//!
//! # Example
//!
//! ```
//! use polyinv_lang::parse_program;
//!
//! let source = r#"
//!     sum(n) {
//!         @pre(n >= 0);
//!         i := 1;
//!         s := 0;
//!         while i <= n do
//!             if * then s := s + i else skip fi;
//!             i := i + 1
//!         od;
//!         return s
//!     }
//! "#;
//! let program = parse_program(source)?;
//! assert_eq!(program.functions().len(), 1);
//! # Ok::<(), polyinv_lang::Error>(())
//! ```

pub mod ast;
pub mod cfg;
pub mod error;
pub mod guard;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod program;
pub mod spec;

pub use cfg::{Cfg, Transition, TransitionKind};
pub use error::Error;
pub use guard::{Atom, BoolFormula, Conjunction};
pub use program::{Function, Label, LabelKind, Program, VarInfo, VarTable};
pub use spec::{InvariantMap, Postcondition, Precondition};

use polyinv_poly::Polynomial;

/// Parses a full program from source text and resolves it (labels, variable
/// tables, polynomial lowering).
///
/// # Errors
///
/// Returns an [`Error`] if the source is not syntactically valid or violates
/// the well-formedness rules of Appendix A (duplicate functions, arity
/// mismatches, assignments to shadow variables, …).
pub fn parse_program(source: &str) -> Result<Program, Error> {
    let tokens = lexer::tokenize(source)?;
    let ast = parser::parse(&tokens)?;
    program::resolve(&ast)
}

/// Parses a single polynomial assertion such as `"x*x - 2*y >= 1"` in the
/// variable scope of function `func` of `program`.
///
/// Returns the polynomial `p` such that the assertion is `p ≥ 0` (or `p > 0`
/// when the comparison is strict) together with the strictness flag
/// (`true` for a strict comparison).
///
/// # Errors
///
/// Returns an [`Error`] if the text is not a valid comparison of polynomial
/// expressions or mentions unknown variables.
pub fn parse_assertion(
    program: &Program,
    func: &str,
    text: &str,
) -> Result<(Polynomial, bool), Error> {
    let tokens = lexer::tokenize(text)?;
    let ast = parser::parse_comparison(&tokens)?;
    program.lower_comparison(func, &ast)
}
