//! Control-flow graphs (Section 2.2 of the paper).
//!
//! A CFG transition `(ℓ, α, ℓ′)` carries one of:
//!
//! * an *update function* `α : R^f → R^f` given as a list of simultaneous
//!   polynomial assignments (labels in `L_a`);
//! * a propositional polynomial predicate (labels in `L_b`);
//! * `⊥`, i.e. a function call (labels in `L_c`);
//! * `⋆`, i.e. a non-deterministic choice (labels in `L_d`), including the
//!   havoc extension `x := *`.

use std::collections::HashMap;

use polyinv_poly::{Polynomial, VarId};

use crate::guard::BoolFormula;
use crate::program::{Function, LStmt, Label, Program, StmtKind};

/// The annotation of a CFG transition.
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionKind {
    /// An update function given by simultaneous assignments
    /// `var ← polynomial` (variables not listed are unchanged). The empty
    /// list is the identity update (`skip`).
    Update(Vec<(VarId, Polynomial)>),
    /// A guard: the transition may be taken only in states satisfying the
    /// predicate.
    Guard(BoolFormula),
    /// A non-deterministic branch (`⋆`).
    Nondet,
    /// A non-deterministic assignment to a single variable (havoc).
    Havoc(VarId),
    /// A function call `dest := callee(args)`; the transition target is the
    /// label following the call (the `⊥` transitions of the paper).
    Call {
        /// Destination variable of the call.
        dest: VarId,
        /// Name of the called function.
        callee: String,
        /// Argument variables.
        args: Vec<VarId>,
    },
}

/// A CFG transition `(from, kind, to)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source label.
    pub from: Label,
    /// Target label.
    pub to: Label,
    /// The annotation.
    pub kind: TransitionKind,
}

/// The control-flow graph of a resolved program.
#[derive(Debug, Clone)]
pub struct Cfg {
    transitions: Vec<Transition>,
    outgoing: HashMap<Label, Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of a resolved program.
    pub fn build(program: &Program) -> Cfg {
        let mut builder = CfgBuilder {
            transitions: Vec::new(),
        };
        for function in program.functions() {
            builder.function(function);
        }
        let mut outgoing: HashMap<Label, Vec<usize>> = HashMap::new();
        for (index, transition) in builder.transitions.iter().enumerate() {
            outgoing.entry(transition.from).or_default().push(index);
        }
        Cfg {
            transitions: builder.transitions,
            outgoing,
        }
    }

    /// All transitions of the CFG.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The transitions leaving a label.
    pub fn outgoing(&self, label: Label) -> Vec<&Transition> {
        self.outgoing
            .get(&label)
            .map(|indices| indices.iter().map(|&i| &self.transitions[i]).collect())
            .unwrap_or_default()
    }

    /// The number of transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if the CFG has no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }
}

struct CfgBuilder {
    transitions: Vec<Transition>,
}

impl CfgBuilder {
    fn function(&mut self, function: &Function) {
        let exit = function.exit_label();
        self.stmt_list(function, function.body(), exit);
    }

    /// Emits the transitions of a statement list whose fall-through target
    /// is `after`.
    fn stmt_list(&mut self, function: &Function, stmts: &[LStmt], after: Label) {
        for (index, stmt) in stmts.iter().enumerate() {
            let next = stmts.get(index + 1).map(|s| s.label).unwrap_or(after);
            self.stmt(function, stmt, next);
        }
    }

    fn stmt(&mut self, function: &Function, stmt: &LStmt, next: Label) {
        let from = stmt.label;
        match &stmt.kind {
            StmtKind::Skip => self.transitions.push(Transition {
                from,
                to: next,
                kind: TransitionKind::Update(Vec::new()),
            }),
            StmtKind::Assign { var, expr } => self.transitions.push(Transition {
                from,
                to: next,
                kind: TransitionKind::Update(vec![(*var, expr.clone())]),
            }),
            StmtKind::Havoc { var } => self.transitions.push(Transition {
                from,
                to: next,
                kind: TransitionKind::Havoc(*var),
            }),
            StmtKind::Return { expr } => self.transitions.push(Transition {
                from,
                to: function.exit_label(),
                kind: TransitionKind::Update(vec![(function.ret_var(), expr.clone())]),
            }),
            StmtKind::Call { dest, callee, args } => self.transitions.push(Transition {
                from,
                to: next,
                kind: TransitionKind::Call {
                    dest: *dest,
                    callee: callee.clone(),
                    args: args.clone(),
                },
            }),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.transitions.push(Transition {
                    from,
                    to: then_branch[0].label,
                    kind: TransitionKind::Guard(cond.clone()),
                });
                self.transitions.push(Transition {
                    from,
                    to: else_branch[0].label,
                    kind: TransitionKind::Guard(cond.negate()),
                });
                self.stmt_list(function, then_branch, next);
                self.stmt_list(function, else_branch, next);
            }
            StmtKind::NondetIf {
                then_branch,
                else_branch,
            } => {
                self.transitions.push(Transition {
                    from,
                    to: then_branch[0].label,
                    kind: TransitionKind::Nondet,
                });
                self.transitions.push(Transition {
                    from,
                    to: else_branch[0].label,
                    kind: TransitionKind::Nondet,
                });
                self.stmt_list(function, then_branch, next);
                self.stmt_list(function, else_branch, next);
            }
            StmtKind::While { cond, body } => {
                self.transitions.push(Transition {
                    from,
                    to: body[0].label,
                    kind: TransitionKind::Guard(cond.clone()),
                });
                self.transitions.push(Transition {
                    from,
                    to: next,
                    kind: TransitionKind::Guard(cond.negate()),
                });
                // The loop body falls through back to the loop head.
                self.stmt_list(function, body, from);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use crate::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    #[test]
    fn running_example_cfg_matches_figure_3() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let cfg = Cfg::build(&program);
        // Figure 3: transitions 1→2, 2→3, 3→4 (guard), 3→8 (negated guard),
        // 4→5, 4→6 (both ⋆), 5→7, 6→7, 7→3, 8→9.  Total 10.
        assert_eq!(cfg.len(), 10);
        let func = program.main();
        let while_label = func
            .labels()
            .iter()
            .copied()
            .find(|&l| {
                cfg.outgoing(l)
                    .iter()
                    .any(|t| matches!(t.kind, TransitionKind::Guard(_)))
            })
            .expect("loop head exists");
        let outgoing = cfg.outgoing(while_label);
        assert_eq!(outgoing.len(), 2);
        // Exactly one of the two guard transitions leaves the loop.
        let to_loop_exit = outgoing.iter().filter(|t| t.to > while_label).count();
        assert!(to_loop_exit >= 1);
    }

    #[test]
    fn return_transitions_target_the_exit_label() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let cfg = Cfg::build(&program);
        let func = program.main();
        let returns: Vec<&Transition> = cfg
            .transitions()
            .iter()
            .filter(|t| t.to == func.exit_label())
            .collect();
        assert_eq!(returns.len(), 1);
        match &returns[0].kind {
            TransitionKind::Update(updates) => {
                assert_eq!(updates.len(), 1);
                assert_eq!(updates[0].0, func.ret_var());
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn recursive_example_cfg_has_call_transition() {
        let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
        let cfg = Cfg::build(&program);
        let calls: Vec<&Transition> = cfg
            .transitions()
            .iter()
            .filter(|t| matches!(t.kind, TransitionKind::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 1);
        match &calls[0].kind {
            TransitionKind::Call { callee, args, .. } => {
                assert_eq!(callee, "rsum");
                assert_eq!(args.len(), 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn every_non_end_label_has_an_outgoing_transition() {
        for source in [RUNNING_EXAMPLE_SOURCE, RECURSIVE_EXAMPLE_SOURCE] {
            let program = parse_program(source).unwrap();
            let cfg = Cfg::build(&program);
            for function in program.functions() {
                for &label in function.labels() {
                    if label == function.exit_label() {
                        assert!(cfg.outgoing(label).is_empty());
                    } else {
                        assert!(
                            !cfg.outgoing(label).is_empty(),
                            "label {label} has no outgoing transition"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn while_body_loops_back_to_the_head() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let cfg = Cfg::build(&program);
        // There must be a back edge: a transition whose target label is
        // strictly smaller than its source label.
        assert!(cfg
            .transitions()
            .iter()
            .any(|t| t.to.index() < t.from.index()));
    }
}
