//! Propositional polynomial predicates.
//!
//! Guards of conditionals and while loops are propositional formulas over
//! atomic assertions `p ≥ 0` / `p > 0`. Step 2 of the paper's algorithm
//! requires the guard (and its negation) in disjunctive normal form, each
//! disjunct being a conjunction of atomic assertions that can be placed in
//! the left-hand side `Γ` of a constraint pair.

use polyinv_arith::Rational;
use polyinv_poly::{Polynomial, VarId};

/// An atomic polynomial assertion `poly ≥ 0` (non-strict) or `poly > 0`
/// (strict).
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// The polynomial compared against zero.
    pub poly: Polynomial,
    /// `true` for `poly > 0`, `false` for `poly ≥ 0`.
    pub strict: bool,
}

impl Atom {
    /// Creates a non-strict atom `poly ≥ 0`.
    pub fn non_strict(poly: Polynomial) -> Self {
        Atom {
            poly,
            strict: false,
        }
    }

    /// Creates a strict atom `poly > 0`.
    pub fn strict(poly: Polynomial) -> Self {
        Atom { poly, strict: true }
    }

    /// The logical negation of the atom.
    pub fn negate(&self) -> Atom {
        Atom {
            poly: -&self.poly,
            strict: !self.strict,
        }
    }

    /// Evaluates the atom at a rational valuation.
    pub fn eval<F>(&self, valuation: F) -> bool
    where
        F: FnMut(VarId) -> Rational,
    {
        let value = self.poly.eval(valuation);
        if self.strict {
            value.is_positive()
        } else {
            !value.is_negative()
        }
    }

    /// Evaluates the atom at a rational valuation, returning `None` on
    /// `i128` rational overflow (overflow-safe interpretation).
    pub fn checked_eval<F>(&self, valuation: F) -> Option<bool>
    where
        F: FnMut(VarId) -> Rational,
    {
        let value = self.poly.checked_eval(valuation)?;
        Some(if self.strict {
            value.is_positive()
        } else {
            !value.is_negative()
        })
    }

    /// Evaluates the atom at an `f64` valuation with a small tolerance.
    pub fn eval_f64<F>(&self, valuation: F, tolerance: f64) -> bool
    where
        F: FnMut(VarId) -> f64,
    {
        let value = self.poly.eval_f64(valuation);
        if self.strict {
            value > -tolerance
        } else {
            value >= -tolerance
        }
    }

    /// Relaxes a strict atom to its non-strict counterpart (identity for
    /// non-strict atoms). Used when placing guard atoms into the `gᵢ ≥ 0`
    /// side of a constraint pair.
    pub fn relaxed(&self) -> Atom {
        Atom {
            poly: self.poly.clone(),
            strict: false,
        }
    }
}

/// A conjunction of atomic assertions.
pub type Conjunction = Vec<Atom>;

/// A propositional polynomial predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolFormula {
    /// An atomic assertion.
    Atom(Atom),
    /// Conjunction of sub-formulas (empty conjunction is `true`).
    And(Vec<BoolFormula>),
    /// Disjunction of sub-formulas (empty disjunction is `false`).
    Or(Vec<BoolFormula>),
    /// Negation of a sub-formula.
    Not(Box<BoolFormula>),
}

impl BoolFormula {
    /// The formula `true`.
    pub fn top() -> Self {
        BoolFormula::And(Vec::new())
    }

    /// The formula `false`.
    pub fn bottom() -> Self {
        BoolFormula::Or(Vec::new())
    }

    /// Creates a conjunction of atoms.
    pub fn conjunction(atoms: Vec<Atom>) -> Self {
        BoolFormula::And(atoms.into_iter().map(BoolFormula::Atom).collect())
    }

    /// The logical negation, with negation pushed to the atoms (so the
    /// result contains no [`BoolFormula::Not`] nodes).
    pub fn negate(&self) -> BoolFormula {
        match self {
            BoolFormula::Atom(atom) => BoolFormula::Atom(atom.negate()),
            BoolFormula::And(parts) => {
                BoolFormula::Or(parts.iter().map(BoolFormula::negate).collect())
            }
            BoolFormula::Or(parts) => {
                BoolFormula::And(parts.iter().map(BoolFormula::negate).collect())
            }
            BoolFormula::Not(inner) => inner.to_nnf(),
        }
    }

    /// Negation normal form: negations are pushed down to the atoms.
    pub fn to_nnf(&self) -> BoolFormula {
        match self {
            BoolFormula::Atom(atom) => BoolFormula::Atom(atom.clone()),
            BoolFormula::And(parts) => {
                BoolFormula::And(parts.iter().map(BoolFormula::to_nnf).collect())
            }
            BoolFormula::Or(parts) => {
                BoolFormula::Or(parts.iter().map(BoolFormula::to_nnf).collect())
            }
            BoolFormula::Not(inner) => inner.negate(),
        }
    }

    /// Disjunctive normal form: a list of conjunctions of atoms whose
    /// disjunction is equivalent to the formula.
    pub fn to_dnf(&self) -> Vec<Conjunction> {
        match self.to_nnf() {
            BoolFormula::Atom(atom) => vec![vec![atom]],
            BoolFormula::And(parts) => {
                let mut result: Vec<Conjunction> = vec![Vec::new()];
                for part in parts {
                    let part_dnf = part.to_dnf();
                    let mut next = Vec::with_capacity(result.len() * part_dnf.len());
                    for existing in &result {
                        for disjunct in &part_dnf {
                            let mut combined = existing.clone();
                            combined.extend(disjunct.iter().cloned());
                            next.push(combined);
                        }
                    }
                    result = next;
                }
                result
            }
            BoolFormula::Or(parts) => parts.iter().flat_map(|p| p.to_dnf()).collect(),
            BoolFormula::Not(_) => unreachable!("to_nnf removes negations"),
        }
    }

    /// Evaluates the formula at a rational valuation.
    pub fn eval<F>(&self, valuation: &mut F) -> bool
    where
        F: FnMut(VarId) -> Rational,
    {
        match self {
            BoolFormula::Atom(atom) => atom.eval(&mut *valuation),
            BoolFormula::And(parts) => parts.iter().all(|p| p.eval(valuation)),
            BoolFormula::Or(parts) => parts.iter().any(|p| p.eval(valuation)),
            BoolFormula::Not(inner) => !inner.eval(valuation),
        }
    }

    /// Evaluates the formula at a rational valuation, returning `None` on
    /// `i128` rational overflow in any atom that had to be evaluated.
    pub fn checked_eval<F>(&self, valuation: &mut F) -> Option<bool>
    where
        F: FnMut(VarId) -> Rational,
    {
        match self {
            BoolFormula::Atom(atom) => atom.checked_eval(&mut *valuation),
            BoolFormula::And(parts) => {
                for part in parts {
                    if !part.checked_eval(valuation)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            BoolFormula::Or(parts) => {
                for part in parts {
                    if part.checked_eval(valuation)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
            BoolFormula::Not(inner) => Some(!inner.checked_eval(valuation)?),
        }
    }

    /// All atoms occurring in the formula.
    pub fn atoms(&self) -> Vec<&Atom> {
        match self {
            BoolFormula::Atom(atom) => vec![atom],
            BoolFormula::And(parts) | BoolFormula::Or(parts) => {
                parts.iter().flat_map(|p| p.atoms()).collect()
            }
            BoolFormula::Not(inner) => inner.atoms(),
        }
    }

    /// The maximum degree of any atom's polynomial.
    pub fn degree(&self) -> u32 {
        self.atoms()
            .iter()
            .map(|a| a.poly.degree())
            .max()
            .unwrap_or(0)
    }

    /// Renders the formula with a variable-name resolver.
    pub fn display_with<F>(&self, name: &mut F) -> String
    where
        F: FnMut(VarId) -> String,
    {
        match self {
            BoolFormula::Atom(atom) => format!(
                "{} {} 0",
                atom.poly.display_with(&mut *name),
                if atom.strict { ">" } else { ">=" }
            ),
            BoolFormula::And(parts) if parts.is_empty() => "true".to_string(),
            BoolFormula::And(parts) => parts
                .iter()
                .map(|p| format!("({})", p.display_with(name)))
                .collect::<Vec<_>>()
                .join(" && "),
            BoolFormula::Or(parts) if parts.is_empty() => "false".to_string(),
            BoolFormula::Or(parts) => parts
                .iter()
                .map(|p| format!("({})", p.display_with(name)))
                .collect::<Vec<_>>()
                .join(" || "),
            BoolFormula::Not(inner) => format!("!({})", inner.display_with(name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_poly::Polynomial;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    fn atom_x_ge_0() -> Atom {
        Atom::non_strict(Polynomial::variable(x()))
    }

    fn atom_y_gt_0() -> Atom {
        Atom::strict(Polynomial::variable(y()))
    }

    #[test]
    fn atom_negation_flips_strictness_and_sign() {
        let a = atom_x_ge_0();
        let n = a.negate();
        assert!(n.strict);
        assert_eq!(n.poly, -Polynomial::variable(x()));
        assert_eq!(n.negate(), a);
    }

    #[test]
    fn atom_evaluation_respects_strictness() {
        let zero = |_: VarId| Rational::zero();
        assert!(atom_x_ge_0().eval(zero));
        assert!(!atom_y_gt_0().eval(zero));
    }

    #[test]
    fn dnf_of_conjunction_of_disjunctions() {
        // (x ≥ 0 || y > 0) && (y > 0 || x ≥ 0) -> 4 disjuncts.
        let formula = BoolFormula::And(vec![
            BoolFormula::Or(vec![
                BoolFormula::Atom(atom_x_ge_0()),
                BoolFormula::Atom(atom_y_gt_0()),
            ]),
            BoolFormula::Or(vec![
                BoolFormula::Atom(atom_y_gt_0()),
                BoolFormula::Atom(atom_x_ge_0()),
            ]),
        ]);
        let dnf = formula.to_dnf();
        assert_eq!(dnf.len(), 4);
        assert!(dnf.iter().all(|conj| conj.len() == 2));
    }

    #[test]
    fn dnf_preserves_semantics_on_sample_points() {
        // !(x >= 0 && y > 0) || (x >= 0)
        let formula = BoolFormula::Or(vec![
            BoolFormula::Not(Box::new(BoolFormula::And(vec![
                BoolFormula::Atom(atom_x_ge_0()),
                BoolFormula::Atom(atom_y_gt_0()),
            ]))),
            BoolFormula::Atom(atom_x_ge_0()),
        ]);
        let dnf = formula.to_dnf();
        for xv in -2..3 {
            for yv in -2..3 {
                let mut valuation = |v: VarId| {
                    if v == x() {
                        Rational::from_int(xv)
                    } else {
                        Rational::from_int(yv)
                    }
                };
                let direct = formula.eval(&mut valuation);
                let via_dnf = dnf.iter().any(|conj| {
                    conj.iter().all(|atom| {
                        atom.eval(|v: VarId| {
                            if v == x() {
                                Rational::from_int(xv)
                            } else {
                                Rational::from_int(yv)
                            }
                        })
                    })
                });
                assert_eq!(direct, via_dnf, "mismatch at ({xv},{yv})");
            }
        }
    }

    #[test]
    fn negation_of_negation_is_identity_on_atoms() {
        let formula = BoolFormula::Not(Box::new(BoolFormula::Not(Box::new(BoolFormula::Atom(
            atom_y_gt_0(),
        )))));
        assert_eq!(formula.to_nnf(), BoolFormula::Atom(atom_y_gt_0()));
    }

    #[test]
    fn top_and_bottom() {
        let mut valuation = |_: VarId| Rational::zero();
        assert!(BoolFormula::top().eval(&mut valuation));
        assert!(!BoolFormula::bottom().eval(&mut valuation));
        assert_eq!(BoolFormula::top().to_dnf(), vec![Vec::<Atom>::new()]);
        assert!(BoolFormula::bottom().to_dnf().is_empty());
    }

    #[test]
    fn display_is_readable() {
        let formula = BoolFormula::And(vec![
            BoolFormula::Atom(atom_x_ge_0()),
            BoolFormula::Atom(atom_y_gt_0()),
        ]);
        let text = formula.display_with(&mut |v: VarId| {
            if v == x() {
                "x".to_string()
            } else {
                "y".to_string()
            }
        });
        assert_eq!(text, "(x >= 0) && (y > 0)");
    }
}
