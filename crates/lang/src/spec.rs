//! Pre-conditions, post-conditions and invariant maps (Section 2.3).

use std::collections::HashMap;

use polyinv_arith::Rational;
use polyinv_poly::{Polynomial, VarId};

use crate::guard::Atom;
use crate::program::{Label, Program, StmtKind, VarKind};

/// A pre-condition: a conjunction of non-strict polynomial inequalities
/// `eᵢ ≥ 0` at every label.
///
/// Following the paper, pre-conditions at the entry label of a function `f`
/// implicitly contain `v = 0` for every non-parameter variable and
/// `v = v̄` for every parameter (footnote to Section 2.3); these are added by
/// [`Precondition::from_program`]. The *bounded-reals* augmentation of
/// Remark 5 is available through [`Precondition::add_bounded_reals`].
#[derive(Debug, Clone, Default)]
pub struct Precondition {
    atoms: HashMap<Label, Vec<Atom>>,
}

impl Precondition {
    /// An empty pre-condition (`true` everywhere).
    pub fn new() -> Self {
        Precondition::default()
    }

    /// Builds the pre-condition of a program from its `@pre(...)`
    /// annotations plus the implicit entry-label assertions required by the
    /// paper's semantics:
    ///
    /// * `v ≥ 0 ∧ −v ≥ 0` for every local variable `v` at `ℓ_in^f`;
    /// * `v − v̄ ≥ 0 ∧ v̄ − v ≥ 0` for every parameter `v` at `ℓ_in^f`.
    ///
    /// Pre-conditions constrain *every* visit to a label (run validity,
    /// Section 2.3), so the implicit entry facts are only sound when the
    /// entry label cannot be revisited. When a function body *starts* with
    /// a `while` loop, the entry label is the loop head and is re-entered
    /// with updated variables on every iteration — the implicit facts are
    /// therefore omitted for such functions (only the explicit `@pre`
    /// annotations remain). The paper's benchmarks all begin with
    /// assignments, where the facts are sound and kept. This corner was
    /// found by the trace-falsification harness of `polyinv-validate`.
    pub fn from_program(program: &Program) -> Self {
        let mut pre = Precondition::new();
        for function in program.functions() {
            // User annotations anywhere in the function.
            for (&label, atoms) in function.pre_annotations() {
                for atom in atoms {
                    // Pre-conditions are non-strict by definition; strict
                    // annotation atoms are relaxed.
                    pre.add_atom(label, atom.relaxed());
                }
            }
            // A while statement revisits its own label on every iteration;
            // entry-only facts would be assumed (and enforced) at every
            // visit, which is unsound for the synthesis direction and
            // declares every multi-iteration run invalid for the
            // falsification direction.
            let entry_revisited = matches!(
                function.body().first().map(|stmt| &stmt.kind),
                Some(StmtKind::While { .. })
            );
            if entry_revisited {
                continue;
            }
            let entry = function.entry_label();
            // Parameters equal their shadow copies on entry.
            for (&param, &shadow) in function.params().iter().zip(function.shadow_params()) {
                let diff = Polynomial::variable(param) - Polynomial::variable(shadow);
                pre.add_atom(entry, Atom::non_strict(diff.clone()));
                pre.add_atom(entry, Atom::non_strict(-diff));
            }
            // Locals and the return variable are zero on entry.
            for &var in function.vars() {
                let kind = program.var_table().info(var).kind;
                if kind == VarKind::Local || kind == VarKind::Return {
                    let poly = Polynomial::variable(var);
                    pre.add_atom(entry, Atom::non_strict(poly.clone()));
                    pre.add_atom(entry, Atom::non_strict(-poly));
                }
            }
        }
        pre
    }

    /// Adds a non-strict atom `poly ≥ 0` at `label`.
    pub fn add(&mut self, label: Label, poly: Polynomial) {
        self.add_atom(label, Atom::non_strict(poly));
    }

    /// Adds an atom at `label` (strict atoms are stored as given; they are
    /// relaxed when used in constraint generation).
    pub fn add_atom(&mut self, label: Label, atom: Atom) {
        self.atoms.entry(label).or_default().push(atom);
    }

    /// The atoms attached to a label (empty slice if none).
    pub fn get(&self, label: Label) -> &[Atom] {
        self.atoms.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all `(label, atoms)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &Vec<Atom>)> {
        self.atoms.iter()
    }

    /// Adds the bounded-reals model of computation (Remark 5): at every
    /// label of every function, for every variable `v ∈ V^f`,
    /// `c − v ≥ 0` and `v + c ≥ 0`, together with the compactness witness
    /// `c²·|V^f| − Σ v² ≥ 0`.
    ///
    /// The compactness witness is what makes Putinar's positivstellensatz
    /// (and hence the semi-completeness result, Lemma 3.7) applicable.
    pub fn add_bounded_reals(&mut self, program: &Program, bound: Rational) {
        for function in program.functions() {
            let vars = function.vars().to_vec();
            let count = Rational::from_int(vars.len() as i64);
            for &label in function.labels() {
                for &var in &vars {
                    let v = Polynomial::variable(var);
                    self.add(label, Polynomial::constant(bound) - v.clone());
                    self.add(label, v + Polynomial::constant(bound));
                }
                // c²·|V^f| − Σ v² ≥ 0.
                let mut norm = Polynomial::constant(bound * bound * count);
                for &var in &vars {
                    norm = norm - Polynomial::variable(var).pow(2);
                }
                self.add(label, norm);
            }
        }
    }

    /// The total number of atoms across all labels.
    pub fn num_atoms(&self) -> usize {
        self.atoms.values().map(Vec::len).sum()
    }
}

/// A post-condition: for every function `f`, a conjunction of strict
/// polynomial inequalities over `{ret_f, v̄₁ … v̄ₙ}` characterizing the return
/// value.
#[derive(Debug, Clone, Default)]
pub struct Postcondition {
    atoms: HashMap<String, Vec<Atom>>,
}

impl Postcondition {
    /// An empty post-condition (`true` for every function).
    pub fn new() -> Self {
        Postcondition::default()
    }

    /// Adds a strict atom `poly > 0` to the post-condition of `function`.
    pub fn add(&mut self, function: &str, poly: Polynomial) {
        self.atoms
            .entry(function.to_string())
            .or_default()
            .push(Atom::strict(poly));
    }

    /// The atoms of a function's post-condition.
    pub fn get(&self, function: &str) -> &[Atom] {
        self.atoms.get(function).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all `(function, atoms)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Vec<Atom>)> {
        self.atoms.iter()
    }
}

/// An invariant map: for every label, a conjunction of strict polynomial
/// inequalities. This is both the output format of the synthesis algorithms
/// and the input format of the invariant checker.
#[derive(Debug, Clone, Default)]
pub struct InvariantMap {
    atoms: HashMap<Label, Vec<Atom>>,
}

impl InvariantMap {
    /// An empty invariant map (`true` at every label).
    pub fn new() -> Self {
        InvariantMap::default()
    }

    /// Adds a strict atom `poly > 0` at `label`.
    pub fn add(&mut self, label: Label, poly: Polynomial) {
        self.add_atom(label, Atom::strict(poly));
    }

    /// Adds an atom at `label`.
    pub fn add_atom(&mut self, label: Label, atom: Atom) {
        self.atoms.entry(label).or_default().push(atom);
    }

    /// The atoms at a label.
    pub fn get(&self, label: Label) -> &[Atom] {
        self.atoms.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all `(label, atoms)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &Vec<Atom>)> {
        self.atoms.iter()
    }

    /// Evaluates the invariant at a label under a valuation.
    pub fn holds_at<F>(&self, label: Label, mut valuation: F) -> bool
    where
        F: FnMut(VarId) -> Rational,
    {
        self.get(label).iter().all(|atom| atom.eval(&mut valuation))
    }

    /// Evaluates the invariant at a label under an `f64` valuation with the
    /// given tolerance.
    pub fn holds_at_f64<F>(&self, label: Label, mut valuation: F, tolerance: f64) -> bool
    where
        F: FnMut(VarId) -> f64,
    {
        self.get(label)
            .iter()
            .all(|atom| atom.eval_f64(&mut valuation, tolerance))
    }

    /// Renders the invariant map with the program's variable names, in
    /// label order.
    pub fn render(&self, program: &Program) -> String {
        let mut labels: Vec<Label> = self.atoms.keys().copied().collect();
        labels.sort();
        let mut out = String::new();
        for label in labels {
            let atoms = &self.atoms[&label];
            let rendered: Vec<String> = atoms
                .iter()
                .map(|a| {
                    format!(
                        "{} {} 0",
                        program.render_poly(&a.poly),
                        if a.strict { ">" } else { ">=" }
                    )
                })
                .collect();
            out.push_str(&format!("{label}: {}\n", rendered.join("  &&  ")));
        }
        out
    }

    /// The total number of atoms across all labels.
    pub fn num_atoms(&self) -> usize {
        self.atoms.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use crate::program::RUNNING_EXAMPLE_SOURCE;

    #[test]
    fn from_program_adds_entry_assertions() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let entry = program.main().entry_label();
        // n >= 1 (annotation), n = n_in (2 atoms), i = s = ret = 0 (6 atoms).
        assert_eq!(pre.get(entry).len(), 9);
        // No atoms elsewhere.
        let other = program.main().labels()[3];
        assert!(pre.get(other).is_empty());
    }

    #[test]
    fn while_at_entry_functions_get_no_implicit_entry_facts() {
        // The entry label of this function is the loop head, revisited with
        // updated variables on every iteration: the implicit `x = x_in` /
        // `ret = 0` facts would be wrong there.
        let source = r#"
            inc(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x + 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        let pre = Precondition::from_program(&program);
        let entry = program.main().entry_label();
        // Only the user annotation survives.
        assert_eq!(pre.get(entry).len(), 1);
    }

    #[test]
    fn bounded_reals_adds_norm_constraint_at_every_label() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let mut pre = Precondition::from_program(&program);
        let before = pre.num_atoms();
        pre.add_bounded_reals(&program, Rational::from_int(1000));
        let func = program.main();
        let per_label = 2 * func.vars().len() + 1;
        assert_eq!(pre.num_atoms(), before + per_label * func.labels().len());
    }

    #[test]
    fn invariant_map_evaluation() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let func = program.main();
        let n = program.var_table().id_of("sum", "n").unwrap();
        let mut inv = InvariantMap::new();
        // n + 1 > 0 at the entry label.
        inv.add(
            func.entry_label(),
            Polynomial::variable(n) + Polynomial::constant(Rational::one()),
        );
        assert!(inv.holds_at(func.entry_label(), |_| Rational::zero()));
        assert!(!inv.holds_at(func.entry_label(), |_| Rational::from_int(-5)));
        // Labels with no atoms hold trivially.
        assert!(inv.holds_at(func.exit_label(), |_| Rational::from_int(-5)));
        let text = inv.render(&program);
        assert!(text.contains("1 + n > 0"));
    }

    #[test]
    fn postcondition_round_trip() {
        let mut post = Postcondition::new();
        post.add("sum", Polynomial::constant(Rational::one()));
        assert_eq!(post.get("sum").len(), 1);
        assert!(post.get("other").is_empty());
        assert!(post.get("sum")[0].strict);
    }
}
