//! Error type shared by the lexer, parser and resolver.

use std::fmt;

/// A position in the source text: 1-based line and column.
///
/// Columns count characters (not bytes), matching what an editor shows for
/// the ASCII-only mini-language sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column, when known.
    pub column: Option<usize>,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.column {
            Some(column) => write!(f, "line {}, column {}", self.line, column),
            None => write!(f, "line {}", self.line),
        }
    }
}

/// An error produced while lexing, parsing or resolving a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    span: Option<Span>,
}

impl Error {
    /// Creates an error without position information.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            span: None,
        }
    }

    /// Creates an error attached to a 1-based source line.
    pub fn at_line(message: impl Into<String>, line: usize) -> Self {
        Error {
            message: message.into(),
            span: Some(Span { line, column: None }),
        }
    }

    /// Creates an error attached to a 1-based line and column.
    pub fn at(message: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            message: message.into(),
            span: Some(Span {
                line,
                column: Some(column),
            }),
        }
    }

    /// The human-readable message (without the position prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source span, if known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// The 1-based source line, if known.
    pub fn line(&self) -> Option<usize> {
        self.span.map(|s| s.line)
    }

    /// The 1-based source column, if known.
    pub fn column(&self) -> Option<usize> {
        self.span.and_then(|s| s.column)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{}: {}", span, self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_known_parts_of_the_span() {
        assert_eq!(Error::new("boom").to_string(), "boom");
        assert_eq!(Error::at_line("boom", 3).to_string(), "line 3: boom");
        assert_eq!(
            Error::at("boom", 3, 14).to_string(),
            "line 3, column 14: boom"
        );
    }

    #[test]
    fn span_accessors_expose_line_and_column() {
        let error = Error::at("boom", 2, 7);
        assert_eq!(error.line(), Some(2));
        assert_eq!(error.column(), Some(7));
        assert_eq!(error.message(), "boom");
        assert_eq!(Error::at_line("boom", 2).column(), None);
        assert_eq!(Error::new("boom").span(), None);
    }
}
