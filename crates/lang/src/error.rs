//! Error type shared by the lexer, parser and resolver.

use std::fmt;

/// An error produced while lexing, parsing or resolving a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    line: Option<usize>,
}

impl Error {
    /// Creates an error without position information.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
            line: None,
        }
    }

    /// Creates an error attached to a 1-based source line.
    pub fn at_line(message: impl Into<String>, line: usize) -> Self {
        Error {
            message: message.into(),
            line: Some(line),
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 1-based source line, if known.
    pub fn line(&self) -> Option<usize> {
        self.line
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {}: {}", line, self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for Error {}
