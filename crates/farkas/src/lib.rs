//! The linear-invariant baseline of Colón, Sankaranarayanan and Sipma
//! (CAV 2003), reconstructed on top of the same pipeline.
//!
//! The CAV 2003 method generates *linear* templates and discharges every
//! initiation/consecution implication with **Farkas' lemma**: an implication
//! `⋀ gᵢ ≥ 0 ⇒ g > 0` between affine forms holds (over a satisfiable
//! antecedent) iff `g = λ₀ + Σ λᵢ·gᵢ` for non-negative multipliers `λᵢ` and a
//! positive `λ₀`. This is exactly the degenerate case of the paper's Putinar
//! translation in which the multiplier polynomials are constants (ϒ = 0) and
//! the templates have degree 1 — so the baseline reuses the constraint
//! generation of `polyinv-constraints` with that configuration, which also
//! mirrors the paper's observation (Table 1) that Colón et al. produce the
//! same kind of quadratic system but for a strictly smaller program class.
//!
//! The baseline deliberately *rejects* programs with non-linear assignments
//! or guards: that inapplicability to the polynomial benchmarks is precisely
//! the comparison the paper draws (Remark 11).

use polyinv_arith::Rational;
use polyinv_constraints::{generate, GeneratedSystem, SosEncoding, SynthesisOptions};
use polyinv_lang::cfg::TransitionKind;
use polyinv_lang::{Cfg, Precondition, Program};

/// Why the baseline refuses to handle a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inapplicability {
    /// An assignment right-hand side has degree greater than one.
    NonLinearAssignment {
        /// Rendered polynomial of the offending assignment.
        expression: String,
    },
    /// A guard atom has degree greater than one.
    NonLinearGuard {
        /// Rendered polynomial of the offending guard atom.
        expression: String,
    },
    /// The program is recursive; CAV 2003 does not handle recursion
    /// (Table 1 of the paper).
    Recursive,
    /// The shared constraint generator rejected the program (defensive:
    /// unreachable after `check_applicable` passes, which already rules out
    /// the recursive programs the generator can reject).
    Constraint {
        /// The generator's message.
        message: String,
    },
}

impl std::fmt::Display for Inapplicability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inapplicability::NonLinearAssignment { expression } => {
                write!(f, "non-linear assignment `{expression}`")
            }
            Inapplicability::NonLinearGuard { expression } => {
                write!(f, "non-linear guard `{expression}`")
            }
            Inapplicability::Recursive => write!(f, "recursive program"),
            Inapplicability::Constraint { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for Inapplicability {}

/// Configuration of the baseline.
#[derive(Debug, Clone)]
pub struct FarkasBaseline {
    /// Number of linear conjuncts per label.
    pub size: usize,
    /// Lower bound on the strict-implication witness λ₀.
    pub epsilon_lower: Rational,
}

impl Default for FarkasBaseline {
    fn default() -> Self {
        FarkasBaseline {
            size: 1,
            epsilon_lower: Rational::new(1, 100),
        }
    }
}

impl FarkasBaseline {
    /// Creates a baseline instance with `size` linear conjuncts per label.
    pub fn new(size: usize) -> Self {
        FarkasBaseline {
            size,
            ..FarkasBaseline::default()
        }
    }

    /// Checks whether the baseline applies to `program` at all.
    ///
    /// # Errors
    ///
    /// Returns the first [`Inapplicability`] reason found (non-linear
    /// assignment or guard, or recursion).
    pub fn check_applicable(&self, program: &Program) -> Result<(), Inapplicability> {
        if !program.is_simple() {
            return Err(Inapplicability::Recursive);
        }
        let cfg = Cfg::build(program);
        for transition in cfg.transitions() {
            match &transition.kind {
                TransitionKind::Update(updates) => {
                    for (_, poly) in updates {
                        if poly.degree() > 1 {
                            return Err(Inapplicability::NonLinearAssignment {
                                expression: program.render_poly(poly),
                            });
                        }
                    }
                }
                TransitionKind::Guard(formula) => {
                    for atom in formula.atoms() {
                        if atom.poly.degree() > 1 {
                            return Err(Inapplicability::NonLinearGuard {
                                expression: program.render_poly(&atom.poly),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Runs the Farkas-lemma reduction: linear templates, constant
    /// multipliers. The result is a system of (bilinear) quadratic
    /// constraints over the template coefficients and the Farkas
    /// multipliers, exactly as in CAV 2003.
    ///
    /// # Errors
    ///
    /// Returns an [`Inapplicability`] error if the program is not linear or
    /// is recursive.
    pub fn generate(
        &self,
        program: &Program,
        pre: &Precondition,
    ) -> Result<GeneratedSystem, Inapplicability> {
        self.check_applicable(program)?;
        let options = SynthesisOptions {
            degree: 1,
            size: self.size,
            upsilon: 0,
            encoding: SosEncoding::Cholesky,
            bounded_reals: None,
            epsilon_lower: self.epsilon_lower,
            force_recursive: false,
            presolve: true,
        };
        generate(program, pre, &options).map_err(|error| Inapplicability::Constraint {
            message: error.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyinv_lang::parse_program;
    use polyinv_lang::program::{RECURSIVE_EXAMPLE_SOURCE, RUNNING_EXAMPLE_SOURCE};

    #[test]
    fn applies_to_linear_programs_and_produces_a_bilinear_system() {
        let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
        let pre = Precondition::from_program(&program);
        let baseline = FarkasBaseline::default();
        let generated = baseline.generate(&program, &pre).unwrap();
        // Linear templates over 5 variables: 6 coefficients per label.
        assert_eq!(
            generated
                .templates
                .invariant(program.main().entry_label())
                .basis
                .len(),
            6
        );
        assert!(generated.size() > 0);
        // The Farkas system is much smaller than the Putinar system of the
        // same program at degree 2.
        let full = generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        assert!(generated.size() < full.size());
    }

    #[test]
    fn rejects_nonlinear_assignments() {
        let source = r#"
            f(x) {
                @pre(x >= 0);
                while x <= 10 do
                    x := x * x + 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        let baseline = FarkasBaseline::default();
        assert!(matches!(
            baseline.check_applicable(&program),
            Err(Inapplicability::NonLinearAssignment { .. })
        ));
    }

    #[test]
    fn rejects_nonlinear_guards_and_recursion() {
        let source = r#"
            f(x) {
                while x * x <= 100 do
                    x := x + 1
                od;
                return x
            }
        "#;
        let program = parse_program(source).unwrap();
        assert!(matches!(
            FarkasBaseline::default().check_applicable(&program),
            Err(Inapplicability::NonLinearGuard { .. })
        ));
        let recursive = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
        assert_eq!(
            FarkasBaseline::default().check_applicable(&recursive),
            Err(Inapplicability::Recursive)
        );
    }

    #[test]
    fn inapplicability_reasons_render_for_the_comparison_table() {
        let reason = Inapplicability::NonLinearAssignment {
            expression: "x^2 + 1".to_string(),
        };
        assert!(reason.to_string().contains("non-linear assignment"));
    }
}
