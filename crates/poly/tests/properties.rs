//! Property-based tests for polynomial and template algebra, including the
//! agreement of the interned (`MonomialTable`-backed) representation with
//! the reference `BTreeMap`-keyed arithmetic.

use polyinv_arith::Rational;
use polyinv_poly::{
    IntPoly, IntTemplate, LinExpr, Monomial, MonomialTable, Polynomial, TemplatePoly, UnknownId,
    VarId,
};
use proptest::prelude::*;

const NUM_VARS: usize = 3;

fn arb_poly() -> impl Strategy<Value = Polynomial> {
    // Up to 6 terms, degree <= 3, small integer coefficients.
    prop::collection::vec((-5i64..6, prop::collection::vec(0u32..3, NUM_VARS)), 0..6).prop_map(
        |terms| {
            let mut poly = Polynomial::zero();
            for (coeff, exps) in terms {
                let powers: Vec<(VarId, u32)> = exps
                    .iter()
                    .enumerate()
                    .map(|(i, &e)| (VarId::new(i), e))
                    .collect();
                poly.add_term(Rational::from_int(coeff), Monomial::from_powers(&powers));
            }
            poly
        },
    )
}

fn arb_valuation() -> impl Strategy<Value = Vec<Rational>> {
    prop::collection::vec((-4i64..5).prop_map(Rational::from_int), NUM_VARS)
}

fn eval(poly: &Polynomial, valuation: &[Rational]) -> Rational {
    poly.eval(|v| valuation[v.index()])
}

proptest! {
    #[test]
    fn addition_is_homomorphic_under_evaluation(
        p in arb_poly(), q in arb_poly(), val in arb_valuation()
    ) {
        let sum = &p + &q;
        prop_assert_eq!(eval(&sum, &val), eval(&p, &val) + eval(&q, &val));
    }

    #[test]
    fn multiplication_is_homomorphic_under_evaluation(
        p in arb_poly(), q in arb_poly(), val in arb_valuation()
    ) {
        let product = &p * &q;
        prop_assert_eq!(eval(&product, &val), eval(&p, &val) * eval(&q, &val));
    }

    #[test]
    fn multiplication_is_commutative(p in arb_poly(), q in arb_poly()) {
        prop_assert_eq!(&p * &q, &q * &p);
    }

    #[test]
    fn multiplication_distributes(p in arb_poly(), q in arb_poly(), r in arb_poly()) {
        let lhs = &p * &(&q + &r);
        let rhs = &(&p * &q) + &(&p * &r);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn subtraction_is_inverse_of_addition(p in arb_poly(), q in arb_poly()) {
        let restored = &(&p + &q) - &q;
        prop_assert_eq!(restored, p);
    }

    #[test]
    fn substitution_commutes_with_evaluation(
        p in arb_poly(), q in arb_poly(), val in arb_valuation()
    ) {
        // Substitute x0 := q, then evaluate; must equal evaluating p at
        // (q(val), val[1], val[2]).
        let substituted = p.substitute(|v| if v.index() == 0 { Some(q.clone()) } else { None });
        let q_value = eval(&q, &val);
        let mut shifted = val.clone();
        shifted[0] = q_value;
        prop_assert_eq!(eval(&substituted, &val), eval(&p, &shifted));
    }

    #[test]
    fn degree_of_product_is_sum_of_degrees(p in arb_poly(), q in arb_poly()) {
        prop_assume!(!p.is_zero() && !q.is_zero());
        let product = &p * &q;
        // Over an integral domain the degree is exactly additive.
        prop_assert_eq!(product.degree(), p.degree() + q.degree());
    }

    #[test]
    fn monomial_basis_is_complete(degree in 0u32..4) {
        let vars: Vec<VarId> = (0..NUM_VARS).map(VarId::new).collect();
        let basis = Monomial::all_up_to_degree(&vars, degree);
        // Every monomial in the basis respects the bound and all are distinct.
        for m in &basis {
            prop_assert!(m.degree() <= degree);
        }
        let mut sorted = basis.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), basis.len());
        // Binomial-coefficient count: C(NUM_VARS + degree, degree).
        let expected = {
            let mut num = 1usize;
            let mut den = 1usize;
            for i in 0..degree as usize {
                num *= NUM_VARS + degree as usize - i;
                den *= i + 1;
            }
            num / den
        };
        prop_assert_eq!(basis.len(), expected);
    }
}

fn arb_template() -> impl Strategy<Value = TemplatePoly> {
    prop::collection::vec((0usize..4, prop::collection::vec(0u32..3, NUM_VARS)), 1..5).prop_map(
        |terms| {
            let mut template = TemplatePoly::zero();
            for (unknown, exps) in terms {
                let powers: Vec<(VarId, u32)> = exps
                    .iter()
                    .enumerate()
                    .map(|(i, &e)| (VarId::new(i), e))
                    .collect();
                template.add_term(
                    LinExpr::unknown(UnknownId::new(unknown)),
                    Monomial::from_powers(&powers),
                );
            }
            template
        },
    )
}

proptest! {
    #[test]
    fn template_product_agrees_with_instantiated_product(
        a in arb_template(), b in arb_template(),
        assignment in prop::collection::vec(-3i64..4, 4),
        val in arb_valuation()
    ) {
        let assign = |u: UnknownId| Rational::from_int(assignment[u.index()]);
        let symbolic = a.mul_template(&b);
        let concrete = &a.instantiate(assign) * &b.instantiate(assign);
        // Evaluate both at `val`; coefficient-wise equality implies this.
        let mut symbolic_value = Rational::zero();
        for (monomial, coeff) in symbolic.iter() {
            symbolic_value += coeff.eval_rational(assign) * monomial.eval(|v| val[v.index()]);
        }
        prop_assert_eq!(symbolic_value, concrete.eval(|v| val[v.index()]));
    }

    #[test]
    fn template_substitution_agrees_with_instantiated_substitution(
        a in arb_template(), q in arb_poly(),
        assignment in prop::collection::vec(-3i64..4, 4)
    ) {
        let assign = |u: UnknownId| Rational::from_int(assignment[u.index()]);
        let substituted_then_instantiated = a
            .substitute(|v| if v.index() == 0 { Some(q.clone()) } else { None })
            .instantiate(assign);
        let instantiated_then_substituted = a
            .instantiate(assign)
            .substitute(|v| if v.index() == 0 { Some(q.clone()) } else { None });
        prop_assert_eq!(substituted_then_instantiated, instantiated_then_substituted);
    }
}

// ---------------------------------------------------------------------------
// Interned representation vs the reference BTreeMap arithmetic.
//
// The hot path of constraint generation runs on `MonomialTable`-interned
// term lists; these properties pin the ring laws (addition, multiplication,
// substitution) and the canonical display order to the reference
// implementation on random inputs.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn interned_addition_matches_reference(p in arb_poly(), q in arb_poly()) {
        let mut table = MonomialTable::new();
        let mut ip = IntPoly::from_polynomial(&p, &mut table);
        let iq = IntPoly::from_polynomial(&q, &mut table);
        for &(m, c) in iq.terms() {
            ip.add_term(m, c);
        }
        prop_assert_eq!(ip.to_polynomial(&table), &p + &q);
    }

    #[test]
    fn interned_multiplication_matches_reference(p in arb_poly(), q in arb_poly()) {
        let mut table = MonomialTable::new();
        let ip = IntPoly::from_polynomial(&p, &mut table);
        let iq = IntPoly::from_polynomial(&q, &mut table);
        prop_assert_eq!(ip.mul(&iq, &mut table).to_polynomial(&table), &p * &q);
    }

    #[test]
    fn interned_multiplication_is_commutative_and_distributive(
        p in arb_poly(), q in arb_poly(), r in arb_poly()
    ) {
        let mut table = MonomialTable::new();
        let ip = IntPoly::from_polynomial(&p, &mut table);
        let iq = IntPoly::from_polynomial(&q, &mut table);
        let ir = IntPoly::from_polynomial(&r, &mut table);
        prop_assert_eq!(ip.mul(&iq, &mut table), iq.mul(&ip, &mut table));
        // p·(q + r) = p·q + p·r, computed entirely in the interned domain.
        let mut q_plus_r = iq.clone();
        for &(m, c) in ir.terms() {
            q_plus_r.add_term(m, c);
        }
        let lhs = ip.mul(&q_plus_r, &mut table);
        let mut rhs = ip.mul(&iq, &mut table);
        for &(m, c) in ip.mul(&ir, &mut table).terms() {
            rhs.add_term(m, c);
        }
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn interned_substitution_matches_reference(p in arb_poly(), q in arb_poly()) {
        let mut table = MonomialTable::new();
        let template = TemplatePoly::from_polynomial(&p);
        let expected = template.substitute(
            |v| if v.index() == 0 { Some(q.clone()) } else { None },
        );
        let it = IntTemplate::from_polynomial(&p, &mut table);
        let iq = IntPoly::from_polynomial(&q, &mut table);
        let substituted = it.substitute(
            |v| if v.index() == 0 { Some(&iq) } else { None },
            &mut table,
        );
        prop_assert_eq!(substituted.to_template(&table), expected);
    }

    #[test]
    fn interned_template_product_matches_reference(
        a in arb_template(), b in arb_template()
    ) {
        let mut table = MonomialTable::new();
        let ia = IntTemplate::from_template(&a, &mut table);
        let ib = IntTemplate::from_template(&b, &mut table);
        let product = ia.mul_template(&ib, &mut table);
        prop_assert_eq!(product.to_quadratic_poly(&table), a.mul_template(&b));
    }

    #[test]
    fn interned_round_trip_preserves_canonical_display_order(p in arb_poly()) {
        let mut table = MonomialTable::new();
        // Intern some unrelated monomials first so raw-id order and
        // graded-lexicographic order genuinely disagree.
        table.basis_up_to_degree(&[VarId::new(2), VarId::new(1)], 3);
        let ip = IntPoly::from_polynomial(&p, &mut table);
        let round_tripped = ip.to_polynomial(&table);
        prop_assert_eq!(&round_tripped, &p);
        // Identical canonical rendering, term order included.
        prop_assert_eq!(round_tripped.to_string(), p.to_string());
        // And sort_terms reproduces the reference iteration order.
        let mut terms: Vec<_> = ip.terms().to_vec();
        table.sort_terms(&mut terms);
        let reference: Vec<Monomial> = p.iter().map(|(m, _)| m.clone()).collect();
        let sorted: Vec<Monomial> = terms
            .iter()
            .map(|&(m, _)| table.monomial(m).clone())
            .collect();
        prop_assert_eq!(sorted, reference);
    }
}
