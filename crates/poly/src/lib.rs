//! Multivariate polynomial and symbolic-template algebra.
//!
//! This crate implements the polynomial machinery needed by the invariant
//! generator:
//!
//! * [`Monomial`] and [`Polynomial`] — sparse multivariate polynomials over
//!   exact [`polyinv_arith::Rational`] coefficients (program expressions,
//!   guards, update functions), with substitution/composition, evaluation and
//!   monomial-basis enumeration.
//! * [`LinExpr`] and [`QuadExpr`] — affine and quadratic expressions over
//!   *unknowns* (the template coefficients called s-, t-, l- and ε-variables
//!   in the paper). A polynomial whose coefficients are [`LinExpr`]s is a
//!   *template polynomial*; multiplying two template polynomials (as done in
//!   the Putinar identity `g = ε + h₀ + Σ hᵢ·gᵢ`) produces a polynomial with
//!   [`QuadExpr`] coefficients, whose coefficient-matching yields exactly the
//!   quadratic constraints the paper hands to a QCLP solver.
//! * [`MonomialTable`] and the interned representations ([`IntPoly`],
//!   [`IntTemplate`], [`IntQuad`]) — the hash-consed hot-path core used by
//!   constraint generation: monomials become dense [`MonoId`]s, products are
//!   memoized, and accumulation merges coefficients in place instead of
//!   rebuilding `BTreeMap`s.
//!
//! # Example
//!
//! ```
//! use polyinv_poly::{Monomial, Polynomial, VarId};
//! use polyinv_arith::Rational;
//!
//! let x = VarId::new(0);
//! let y = VarId::new(1);
//! // p = (x + y)^2
//! let p = (Polynomial::variable(x) + Polynomial::variable(y)).pow(2);
//! assert_eq!(p.degree(), 2);
//! assert_eq!(
//!     p.coefficient(&Monomial::from_powers(&[(x, 1), (y, 1)])),
//!     Rational::from_int(2)
//! );
//! ```

pub mod interned;
pub mod monomial;
pub mod polynomial;
pub mod symbolic;
pub mod table;

pub use interned::{IntPoly, IntQuad, IntTemplate};
pub use monomial::{Monomial, VarId};
pub use polynomial::{Polynomial, RationalPoly};
pub use symbolic::{LinExpr, QuadExpr, QuadraticPoly, TemplatePoly, UnknownId};
pub use table::{MonoId, MonomialTable};
